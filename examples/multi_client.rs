//! Multi-client demo: several clients share one server cache under ULC.
//! Shows the gLRU dynamic allocation shifting with client demand, and the
//! scheme comparison of §4.4.
//!
//! ```text
//! cargo run --release --example multi_client
//! ```

use ulc::core::{UlcMulti, UlcMultiConfig};
use ulc::hierarchy::{
    simulate, CostModel, IndLru, LruMqServer, MultiLevelPolicy, UniLru, UniLruVariant,
};
use ulc::trace::synthetic;

fn main() {
    let refs = 300_000;
    let trace = synthetic::db2_multi(refs, 80_000);
    let clients = 8usize;
    let client_blocks = 2_048;
    let server_blocks = 24_576;
    let costs = CostModel::paper_two_level();
    let caps = vec![client_blocks; clients];

    println!(
        "db2-like workload: {clients} clients x {client_blocks} blocks over a \
         {server_blocks}-block server\n"
    );

    let mut schemes: Vec<Box<dyn MultiLevelPolicy>> = vec![
        Box::new(IndLru::multi_client(caps.clone(), vec![server_blocks])),
        Box::new(UniLru::multi_client(
            caps.clone(),
            vec![server_blocks],
            UniLruVariant::MruInsert,
        )),
        Box::new(LruMqServer::new(caps.clone(), server_blocks)),
        Box::new(UlcMulti::new(UlcMultiConfig {
            client_capacities: caps,
            server_capacity: server_blocks,
            claim_rule: Default::default(),
        })),
    ];
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>12} {:>10}",
        "scheme", "h(client)", "h(server)", "miss", "demote rate", "T_ave"
    );
    for scheme in schemes.iter_mut() {
        let stats = simulate(scheme.as_mut(), &trace, trace.warmup_len());
        println!(
            "{:<8} {:>8.1}% {:>8.1}% {:>8.1}% {:>11.3} {:>8.2}ms",
            scheme.name(),
            100.0 * stats.hit_rates()[0],
            100.0 * stats.hit_rates()[1],
            100.0 * stats.miss_rate(),
            stats.demotion_rates()[0],
            stats.average_access_time(&costs)
        );
    }

    // Show the dynamic server allocation under ULC.
    let mut ulc = UlcMulti::new(UlcMultiConfig::uniform(clients, client_blocks, server_blocks));
    let _ = simulate(&mut ulc, &trace, 0);
    println!("\nULC server allocation (blocks owned per client):");
    for (c, owned) in ulc.server_allocation().iter().enumerate() {
        println!("  client {c}: {owned}");
    }
}
