//! Quickstart: run the ULC protocol on a synthetic workload and compare
//! it with the two classic alternatives.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ulc::core::{UlcConfig, UlcSingle};
use ulc::hierarchy::{simulate, CostModel, IndLru, MultiLevelPolicy, UniLru};
use ulc::trace::{synthetic, TraceStats};

fn main() {
    // A TPC-C-like workload: a dominant loop over ~94 MB of a 256 MB data
    // set, on a client → server → disk-array hierarchy with 50 MB of
    // cache at each level.
    let trace = synthetic::tpcc1(400_000);
    println!("workload tpcc1: {}", TraceStats::compute(&trace));

    let caps = vec![6_400usize, 6_400, 6_400]; // 50 MB per level
    let costs = CostModel::paper_three_level();

    let mut schemes: Vec<Box<dyn MultiLevelPolicy>> = vec![
        Box::new(IndLru::single_client(caps.clone())),
        Box::new(UniLru::single_client(caps.clone())),
        Box::new(UlcSingle::new(UlcConfig::new(caps))),
    ];

    println!(
        "\n{:<8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "scheme", "h(L1)", "h(L2)", "h(L3)", "miss", "demote/ref", "T_ave"
    );
    for scheme in schemes.iter_mut() {
        let stats = simulate(scheme.as_mut(), &trace, trace.warmup_len());
        let h = stats.hit_rates();
        let d: f64 = stats.demotion_rates().iter().sum();
        println!(
            "{:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>10.3} {:>8.2}ms",
            scheme.name(),
            100.0 * h[0],
            100.0 * h[1],
            100.0 * h[2],
            100.0 * stats.miss_rate(),
            d,
            stats.average_access_time(&costs)
        );
    }
    println!(
        "\nULC places the loop across L1+L2 by its re-reference distance and\n\
         keeps it there: the same aggregate hit rate as unified LRU, with the\n\
         demotion traffic gone."
    );
}
