//! Locality explorer: reproduce the §2 measure study on a workload of
//! your choice and see why LLD-R is the right basis for multi-level
//! caching.
//!
//! ```text
//! cargo run --release --example locality_explorer [cs|glimpse|zipf|random|sprite|multi]
//! ```

use ulc::measures::{analyze, MeasureKind, Table1};
use ulc::trace::{synthetic, Trace};

fn pick(name: &str, refs: usize) -> Trace {
    match name {
        "cs" => synthetic::cs(refs),
        "glimpse" => synthetic::glimpse(refs),
        "zipf" => synthetic::zipf_small(refs),
        "random" => synthetic::random_small(refs),
        "sprite" => synthetic::sprite(refs),
        "multi" => synthetic::multi_small(refs),
        other => panic!("unknown workload {other:?}"),
    }
}

fn bar(x: f64, scale: f64) -> String {
    let n = ((x / scale) * 40.0).round() as usize;
    "#".repeat(n.min(60))
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "glimpse".into());
    let refs = 60_000;
    let trace = pick(&name, refs);
    println!("workload: {name} ({refs} references)\n");

    for kind in MeasureKind::ALL {
        let report = analyze(&trace, kind, 10);
        println!(
            "{} — hits per segment (head → tail), mean movement ratio {:.3}",
            kind.name(),
            report.mean_movement_ratio()
        );
        for (i, r) in report.reference_ratios().iter().enumerate() {
            println!("  seg {:>2} {:>6.1}% {}", i + 1, 100.0 * r, bar(*r, 1.0));
        }
        println!();
    }

    println!("Derived Table 1 over the full small suite:");
    let table = Table1::derive(&synthetic::small_suite(30_000), 10);
    println!("{table}");
    println!(
        "\nLLD-R combines a strong locality distinction with stable\n\
         distinctions while staying online — the basis of the ULC protocol."
    );
}
