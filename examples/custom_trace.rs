//! Bring your own trace: compose a custom workload (or load one from a
//! file), run ULC on it, and put the result in context with the offline
//! OPT and aggregate-LRU bounds.
//!
//! ```text
//! cargo run --release --example custom_trace [path/to/trace.txt]
//! ```
//!
//! The optional file uses the `ulc::trace::io` text format (`client block`
//! per line). Without a file, a composed workload is generated.

use ulc::core::{UlcConfig, UlcSingle};
use ulc::hierarchy::{bound, simulate, CostModel};
use ulc::trace::patterns::{LoopingPattern, MixedPattern, Phase, TemporalPattern, ZipfPattern};
use ulc::trace::{io, Trace, TraceStats};

fn composed_workload() -> Trace {
    use ulc::trace::patterns::Pattern;
    // A database-flavoured mix: hot index (zipf), nightly scan (loop),
    // buffer-pool churn (temporal).
    MixedPattern::new(vec![
        Phase::new(Box::new(ZipfPattern::new(2_000, 1.0, 7)), 4_000),
        Phase::new(
            Box::new(LoopingPattern::new(3_000).with_base(10_000)),
            3_000,
        ),
        Phase::new(
            Box::new(TemporalPattern::new(1_500, 0.99, 8).with_base(20_000)),
            3_000,
        ),
    ])
    .generate(200_000)
}

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("trace file should open");
            io::read_text(file).expect("trace file should parse")
        }
        None => composed_workload(),
    };
    println!("trace: {}", TraceStats::compute(&trace));

    let caps = vec![800usize, 800, 800];
    let aggregate: usize = caps.iter().sum();
    let warmup = trace.warmup_len();

    let mut ulc = UlcSingle::new(UlcConfig::new(caps));
    let stats = simulate(&mut ulc, &trace, warmup);
    let costs = CostModel::paper_three_level();

    println!("\nULC:       total hit rate {:>6.1}%", 100.0 * stats.total_hit_rate());
    println!(
        "bounds:    aggregate LRU  {:>6.1}%   offline OPT {:>6.1}%",
        100.0 * bound::aggregate_lru_hit_rate(&trace, aggregate, warmup),
        100.0 * bound::opt_hit_rate(&trace, aggregate, warmup),
    );
    let h = stats.hit_rates();
    println!(
        "placement: L1 {:>5.1}%  L2 {:>5.1}%  L3 {:>5.1}%  (T_ave {:.2} ms)",
        100.0 * h[0],
        100.0 * h[1],
        100.0 * h[2],
        stats.average_access_time(&costs)
    );
    let m = ulc.messages();
    println!(
        "messages:  {} retrieves, {} demotes over {} references",
        m.retrieves_by_source.iter().sum::<u64>(),
        m.demotes_by_boundary.iter().sum::<u64>(),
        trace.len()
    );
}
