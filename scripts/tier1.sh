#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, and the lint
# wall must be clean. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo run -q -p ulc-lint -- --json=results/lint.json
cargo test --features debug_invariants -q

echo "tier1: ok"
