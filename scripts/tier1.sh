#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, and the lint
# wall must be clean. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo test --features debug_invariants -q

# Lint gates (ISSUES 5 and 7). The linter's own suite first (parser,
# call graph, fixtures, CLI), then the workspace pass as a *diff gate*:
# it fails only on findings whose fingerprint is not in the committed
# baseline (scripts/lint_baseline.txt), so a finding three modules away
# from an unrelated edit never blocks that edit without triage. The
# JSON report is still written for CI consumption (untracked).
cargo test -q -p ulc-lint
cargo run -q -p ulc-lint -- --json=results/lint.json \
  --baseline=scripts/lint_baseline.txt

# The allowlist must carry zero dead weight: every lint:allow in the
# workspace must still be suppressing something. Dead allows are
# ordinary findings, so a clean baseline-gated run above already proves
# this; the explicit grep keeps the contract visible if the baseline
# ever grows entries.
lint_out="$(cargo run -q -p ulc-lint -- 2>/dev/null || true)"
if grep -F '[dead-allow]' <<<"$lint_out"; then
  echo "tier1: dead lint:allow comments in the workspace" >&2
  exit 1
fi

# Message-plane gates (ISSUE 3): the zero-fault differential suite proves
# the FaultyPlane refactor is bit-identical to the reliable plane on every
# protocol-comparison workload, and the seeded chaos scenario proves the
# recovery path (settle + reconcile) restores the full invariants under
# drops, duplicates, delays and a server crash.
cargo test -q -p ulc-core --test protocol_comparison
cargo test -q -p ulc-core --test chaos --features debug_invariants seeded_chaos_scenario_recovers

# Sharded replay gate (ISSUE 9, DESIGN.md §5i): the seeded differential
# smoke suite proves the bulk-synchronous executor bit-identical to the
# serial driver — every multi-client workload at 1/2/8 shards, both
# claim rules, a zero-fault FaultyPlane on the parallel path, the crashy
# scenario on the serial fallback, arbitrary epoch lengths and
# replay_range splits, plus a 24-case shard-count-invariance property.
cargo test -q -p ulc-core --test parallel_replay

# Throughput + allocation gates (ISSUES 4 and 6): the differential suites
# above prove the interned flat tables and the pooled scratch paths
# bit-identical; this proves they stay fast and allocation-free. The
# smoke-scale harness rewrites BENCH_sim.json and fails if any interned
# accesses/sec rate drops more than 25% below the conservative checked-in
# baseline (BENCH_baseline.json, recorded well under a healthy machine's
# measurement so scheduler noise cannot trip the gate), or if a wide
# (>= 8-thread) sharded ULC-multi row falls under 2x its cell's serial
# baseline rate (the E11 shard-scaling floor). Building with
# --features alloc_stats installs the counting global allocator, so the
# same run also fails if ULC, uniLRU, evict-reload or ULC-multi (serial
# and sharded alike) report a nonzero steady-state allocations/access
# rate (DESIGN.md §5f).
cargo run -q --release -p ulc-bench --features alloc_stats --bin sweep -- \
  --bench-only --scale=smoke \
  --bench-json=BENCH_sim.json --bench-baseline=BENCH_baseline.json

# The unit-level form of the same contract, with the counting allocator on:
cargo test -q -p ulc-bench --features alloc_stats --test alloc_gate

# Observability gates (ISSUE 8, DESIGN.md §5h): the obs crate's own suite
# (ring, registry, proptested merge laws), the per-protocol conservation
# suite (event ledger reconciles exactly with SimStats; the exclusive
# UlcSingle event log replays to single residency on its own), and the
# golden bench-JSON schema snapshot that pins the `obs` section's shape.
cargo test -q -p ulc-obs --features enabled
cargo test -q -p ulc-core --features obs --test obs_conservation
cargo test -q -p ulc-bench --features obs --test bench_json_schema

# The §5f contract with a live recorder attached: the same alloc-gate
# suite plus a seeded smoke sweep built with recording enabled, which
# must report 0.0000 steady allocations/access AND reconcile every
# protocol's conservation cell (the run exits non-zero otherwise). No
# baseline: an instrumented build's rates are not comparable.
cargo test -q -p ulc-bench --features "alloc_stats obs" --test alloc_gate
mkdir -p results
cargo run -q --release -p ulc-bench --features "alloc_stats obs" --bin sweep -- \
  --bench-only --scale=smoke --bench-json=results/BENCH_obs.json

# The flight-recorder export round trip (DESIGN.md §5j, EXPERIMENTS.md
# E12): the golden schema snapshot pins the export's shape, then
# obs-tool writes a seeded smoke export (+ Chrome trace) whose window
# sums must reconcile exactly with the final registries, and `verify`
# re-parses the written file and recomputes the derived report
# bit-identically — both commands exit non-zero on any drift.
cargo test -q -p ulc-bench --features obs --test obs_export_schema
cargo run -q --release -p ulc-bench --features obs --bin obs-tool -- \
  export --scale=smoke --out=results/FLIGHT_obs.json --chrome=results/FLIGHT_trace.json
cargo run -q --release -p ulc-bench --features obs --bin obs-tool -- \
  verify --in=results/FLIGHT_obs.json

echo "tier1: ok"
