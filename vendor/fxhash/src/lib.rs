//! Offline stand-in for the `rustc-hash`/`fxhash` crates.
//!
//! [`FxHasher`] is the multiply-rotate hash used by rustc's interners: one
//! rotate, one xor and one multiplication per word. It is not
//! collision-resistant against adversaries, which is irrelevant here —
//! every key in this workspace comes from a trace file or a deterministic
//! generator, never from an attacker — and it is several times faster than
//! the SipHash used by `std::collections::HashMap`'s default
//! `RandomState`.
//!
//! Unlike `RandomState`, [`FxBuildHasher`] carries no per-process random
//! seed: two runs hash identically. Iteration order over an
//! [`FxHashMap`] is still insertion-history dependent, so the workspace
//! determinism rule (no behavioural iteration over hash maps) applies
//! unchanged.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx multiply-rotate hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx multiply-rotate hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Builds [`FxHasher`]s; deterministic (no per-process seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The odd constant from rustc's Fx hash: truncation of
/// `2^64 / golden ratio`, which diffuses bits well under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
///
/// Each input word is folded in as
/// `hash = (hash.rotate_left(5) ^ word) * SEED`. All integer writes take
/// the one-word fast path; byte slices are consumed in 8-byte chunks.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the high bits into the low bits. A bare multiply leaves
        // the low 32 bits of the product independent of the key's high
        // 32 bits, and `hashbrown` takes the bucket index from the low
        // bits — keys that differ only in their high half (block ids
        // pack a file index at bit 32) would collide whole-file-wide.
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add_to_hash(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add_to_hash(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_to_hash(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add_to_hash(i as usize as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        let c = hash_of(&3u64);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn byte_slices_hash_by_content_and_length() {
        let h = |b: &[u8]| {
            let mut s = FxHasher::default();
            s.write(b);
            s.finish()
        };
        assert_eq!(h(b"abcdefgh_tail"), h(b"abcdefgh_tail"));
        assert_ne!(h(b"abc"), h(b"abcd"));
        // A short slice and its zero-padded extension must differ (the
        // length tag in the remainder word).
        assert_ne!(h(b"ab"), h(b"ab\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        m.insert(9, 2);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }

    #[test]
    fn high_half_keys_spread_across_low_bits() {
        // Keys differing only at bit 32 and above (file-set block ids)
        // must still spread over the low hash bits that hashbrown uses
        // for bucket selection.
        let mut low_halves = std::collections::HashSet::new();
        for file in 0..1_000u64 {
            low_halves.insert(hash_of(&((file << 32) | 5)) & 0xffff_ffff);
        }
        assert!(
            low_halves.len() >= 990,
            "low 32 bits must depend on the high key half, got {} distinct",
            low_halves.len()
        );
    }

    #[test]
    fn no_trivial_collisions_over_dense_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 100_000, "dense u64 range must not collide");
    }
}
