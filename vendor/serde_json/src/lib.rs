//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde [`Value`] tree as JSON text and parses JSON
//! text back, covering the API subset this workspace uses: `to_string`,
//! `to_string_pretty`, `to_writer`, `to_writer_pretty`, `from_str`,
//! `from_reader`, and the [`Result`]/[`Error`] pair.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;

/// A serialization or deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// The result type of every fallible function in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails for tree-representable values; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as human-readable JSON with two-space indentation.
///
/// # Errors
///
/// Never fails for tree-representable values.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON to `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Writes pretty-printed JSON to `writer`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Reads all of `reader` and parses a value from it.
///
/// # Errors
///
/// Returns I/O, syntax or shape errors.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; integral floats keep
                // a ".0" so they parse back as floats.
                let s = format!("{x:?}");
                out.push_str(&s);
            } else {
                out.push_str("null"); // upstream behaviour for NaN/inf
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), items.len(), '[', ']', indent, depth, |out, item, indent, depth| {
            write_value(out, item, indent, depth);
        }),
        Value::Object(fields) => write_seq(out, fields.iter(), fields.len(), '{', '}', indent, depth, |out, (k, v), indent, depth| {
            write_json_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth);
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns a syntax error with byte position on malformed input.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected {")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.checked_sub(0xDC00)
                                        .ok_or_else(|| self.err("bad low surrogate"))?);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the original bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text, "round-tripping {text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&ValueWrap(v.clone())).unwrap(), text);
        let reparsed = parse(&to_string_pretty(&ValueWrap(v.clone())).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    /// Serialize wrapper so tests can feed a raw Value through the API.
    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_round_trip() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
        // Integral floats keep a decimal point so they stay floats.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn typed_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
