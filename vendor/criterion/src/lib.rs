//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Throughput::Elements`,
//! `criterion_group!` / `criterion_main!` and [`black_box`] — on a simple
//! wall-clock harness: per benchmark it auto-tunes an iteration count,
//! takes `sample_size` samples and reports the median time per iteration
//! (plus throughput when declared).
//!
//! Machine-readable output: when the `CRITERION_JSON` environment variable
//! names a file, one JSON object per benchmark is appended to it:
//! `{"bench": "...", "ns_per_iter": ..., "samples": ...}`.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of samples taken per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units-of-work declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            result: None,
            sample_size: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut bencher);
        self.report(&id, bencher.result);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            result: None,
            sample_size: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.result);
        self
    }

    /// Ends the group (upstream parity; all reporting is immediate here).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, result: Option<Sample>) {
        let Some(sample) = result else {
            eprintln!("warning: benchmark {}/{} never called iter()", self.name, id);
            return;
        };
        let full = format!("{}/{}", self.name, id);
        let per_iter_ns = sample.median_ns_per_iter;
        let human = if per_iter_ns >= 1e9 {
            format!("{:.3} s", per_iter_ns / 1e9)
        } else if per_iter_ns >= 1e6 {
            format!("{:.3} ms", per_iter_ns / 1e6)
        } else if per_iter_ns >= 1e3 {
            format!("{:.3} µs", per_iter_ns / 1e3)
        } else {
            format!("{per_iter_ns:.1} ns")
        };
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (per_iter_ns / 1e9);
                format!("  thrpt: {:.3} Melem/s", rate / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (per_iter_ns / 1e9);
                format!("  thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{full:<48} time: {human:>12}/iter ({} samples × {} iters){throughput}",
            sample.samples, sample.iters_per_sample
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(
                        file,
                        "{{\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"samples\":{}}}",
                        full.replace('"', "'"),
                        per_iter_ns,
                        sample.samples
                    );
                }
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    median_ns_per_iter: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    result: Option<Sample>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures `routine`: auto-tunes an iteration count, takes
    /// `sample_size` samples and records the median time per iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: how many iterations fit one sample's time budget?
        let per_sample_budget =
            self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((per_sample_budget / first).floor() as u64).clamp(1, 1_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        let median = samples_ns[samples_ns.len() / 2];
        self.result = Some(Sample {
            median_ns_per_iter: median,
            samples: self.sample_size,
            iters_per_sample: iters,
        });
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
