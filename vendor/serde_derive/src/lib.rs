//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, by walking the raw
//! [`proc_macro::TokenStream`] (no `syn`/`quote` available offline):
//!
//! * structs with named fields  → JSON objects;
//! * one-field tuple structs    → transparent newtypes;
//! * multi-field tuple structs  → JSON arrays;
//! * enums of unit variants     → strings holding the variant name.
//!
//! Generic types, data-carrying enums and `#[serde(...)]` attributes are
//! not supported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Shape {
    /// `struct S { a: A, b: B }` with the field names.
    Named(Vec<String>),
    /// `struct S(A, B);` with the field count.
    Tuple(usize),
    /// `enum E { X, Y }` with the variant names.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]` / `#![...]`) and visibility (`pub`,
/// `pub(...)`) from the front of `tokens`, returning the next real token.
fn next_significant(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> Option<TokenTree> {
    loop {
        match tokens.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: optional `!`, then a bracket group.
                match tokens.peek() {
                    Some(TokenTree::Punct(bang)) if bang.as_char() == '!' => {
                        tokens.next();
                    }
                    _ => {}
                }
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            other => return Some(other),
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let kw = match next_significant(&mut tokens) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: unexpected token {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type `{name}`)");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde_derive stub: malformed enum {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

/// Extracts the field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let Some(tok) = next_significant(&mut tokens) else {
            break;
        };
        let field = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    fields
}

/// Counts the fields of a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut pending = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    count + usize::from(pending)
}

/// Extracts the variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let Some(tok) = next_significant(&mut tokens) else {
            break;
        };
        match tok {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("serde_derive stub: expected variant in `{enum_name}`, got {other:?}"),
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive stub: data-carrying variants in `{enum_name}` are not supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "serde_derive stub: explicit discriminants in `{enum_name}` are not supported"
            ),
            other => panic!("serde_derive stub: unexpected token {other:?} in `{enum_name}`"),
        }
    }
    variants
}

/// `#[derive(Serialize)]`: tree-model serialization (see the vendored
/// `serde` crate for the data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`: tree-model deserialization.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(__fields, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __fields = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{ \
                     return Err(::serde::DeError::custom(\"wrong tuple length for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "let __s = __v.as_str().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected string for {name}\"))?;\n\
                 match __s {{ {} _ => Err(::serde::DeError::custom(\
                     \"unknown variant for {name}\")) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated invalid Deserialize impl")
}
