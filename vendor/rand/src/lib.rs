//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, dependency-free implementation of
//! the exact API subset it uses: [`rngs::StdRng`] (a deterministic
//! xoshiro256++ generator), the [`Rng`] and [`SeedableRng`] traits with
//! `gen`, `gen_range` and `seed_from_u64`, and [`seq::SliceRandom`] with
//! Fisher–Yates `shuffle`.
//!
//! The generator is *not* the upstream `StdRng` (ChaCha12): streams differ
//! from upstream for the same seed, but every workspace property that
//! matters — determinism under a fixed seed, uniformity, independence of
//! low/high bits — holds. Nothing here is cryptographic.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `0..span` (`span > 0`) by widening multiply, which
/// avoids modulo bias without rejection loops in the common case.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's multiply-shift; a single retry zone small enough to ignore
    // for simulation purposes (bias < 2^-64 per draw).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// The random-number-generator trait: the subset of `rand::Rng` this
/// workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream `StdRng`; streams differ from upstream).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
