//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of serde the workspace uses: [`Serialize`] /
//! [`Deserialize`] traits and (behind the `derive` feature) derive macros
//! for plain structs, tuple structs and unit-variant enums.
//!
//! Unlike real serde, the data model is a concrete JSON-like tree
//! ([`Value`]): serializing builds a tree, deserializing reads one. The
//! only consumer in this workspace is the vendored `serde_json`, for which
//! a tree model is fully general. Formats are rendered/parsed there.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree value: the data model of this vendored serde.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) => i64::try_from(v).ok(),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// A deserialization error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field of a decoded object by name (derive-macro helper).
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Serialization into the [`Value`] tree model.
pub trait Serialize {
    /// Converts `self` into a tree value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a tree value.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()), Ok(None));
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert!(get_field(&obj, "a").is_ok());
        assert!(get_field(&obj, "b").is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
