//! Offline stand-in for the `smallvec` crate, implementing the API subset
//! the ULC workspace uses.
//!
//! [`SmallVec<T, N>`] stores up to `N` elements inline (no heap traffic at
//! all) and spills to an internal `Vec` only when the `N+1`-th element is
//! pushed. Crucially for the zero-allocation steady-state contract
//! (DESIGN.md §5f), [`SmallVec::clear`] keeps the spill buffer's capacity,
//! so a scratch vector that spilled once never allocates again until it
//! outgrows its high-water mark.
//!
//! To stay safe-code-only (the real crate uses raw buffers), the element
//! type is bounded by `Copy + Default` — every scratch payload in this
//! workspace (block ids, level indices, node handles) is a small plain
//! value, so the bound costs nothing.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector with `N` elements of inline storage and a heap spill buffer.
///
/// # Examples
///
/// ```
/// use smallvec::SmallVec;
///
/// let mut v: SmallVec<u32, 4> = SmallVec::new();
/// v.push(1);
/// v.push(2);
/// assert_eq!(v.as_slice(), &[1, 2]);
/// assert!(!v.spilled());
/// v.extend_from_slice(&[3, 4, 5]);
/// assert!(v.spilled());
/// assert_eq!(v.len(), 5);
/// v.clear();
/// assert!(v.is_empty());
/// ```
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    /// Inline storage; holds the live elements while `!spilled`.
    inline: [T; N],
    /// Live element count while `!spilled`; unused after spilling.
    inline_len: usize,
    /// Heap storage once the inline buffer overflows. Retains its
    /// capacity across `clear` so steady-state reuse never reallocates.
    spill: Vec<T>,
    /// Whether the live elements currently live in `spill`.
    spilled: bool,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector. Never allocates.
    pub fn new() -> Self {
        SmallVec {
            inline: [T::default(); N],
            inline_len: 0,
            spill: Vec::new(),
            spilled: false,
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.inline_len
        }
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The inline capacity `N`.
    pub const fn inline_capacity() -> usize {
        N
    }

    /// `true` once the elements have moved to the heap spill buffer.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Removes every element. Keeps the spill buffer's capacity, so a
    /// vector that spilled once can refill to its high-water mark without
    /// allocating.
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
        self.spilled = false;
    }

    /// Appends an element, spilling to the heap when the inline buffer is
    /// full. After the first spill, pushes within the retained capacity
    /// are allocation-free.
    pub fn push(&mut self, value: T) {
        if !self.spilled {
            if self.inline_len < N {
                self.inline[self.inline_len] = value;
                self.inline_len += 1;
                return;
            }
            self.spill.extend_from_slice(&self.inline[..N]);
            self.spilled = true;
        }
        self.spill.push(value);
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            self.spill.pop()
        } else if self.inline_len > 0 {
            self.inline_len -= 1;
            Some(self.inline[self.inline_len])
        } else {
            None
        }
    }

    /// Shortens the vector to `len` elements (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if self.spilled {
            self.spill.truncate(len);
        } else {
            self.inline_len = self.inline_len.min(len);
        }
    }

    /// Resizes to exactly `len` elements, filling with `value` when
    /// growing.
    pub fn resize(&mut self, len: usize, value: T) {
        while self.len() > len {
            self.pop();
        }
        while self.len() < len {
            self.push(value);
        }
    }

    /// Appends every element of `other`.
    pub fn extend_from_slice(&mut self, other: &[T]) {
        for &v in other {
            self.push(v);
        }
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.spill
        } else {
            &self.inline[..self.inline_len]
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.spill
        } else {
            &mut self.inline[..self.inline_len]
        }
    }

    /// Copies the live elements into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_and_preserves_order() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_unspills_but_keeps_capacity() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        v.extend_from_slice(&[1, 2, 3, 4]);
        assert!(v.spilled());
        let cap = v.spill.capacity();
        v.clear();
        assert!(!v.spilled());
        assert!(v.is_empty());
        assert_eq!(v.spill.capacity(), cap);
        // Refilling to the high-water mark reuses the retained buffer.
        v.extend_from_slice(&[5, 6, 7, 8]);
        assert_eq!(v.as_slice(), &[5, 6, 7, 8]);
        assert_eq!(v.spill.capacity(), cap);
    }

    #[test]
    fn pop_crosses_the_spill_boundary() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        v.extend_from_slice(&[1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        v.resize(3, 7);
        assert_eq!(v.as_slice(), &[7, 7, 7]);
        v.resize(1, 0);
        assert_eq!(v.as_slice(), &[7]);
        v.resize(6, 9);
        assert_eq!(v.len(), 6);
        assert!(v.spilled());
    }

    #[test]
    fn mutable_slice_access() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        v.extend_from_slice(&[1, 2, 3]);
        v[1] += 10;
        assert_eq!(v.as_slice(), &[1, 12, 3]);
    }

    #[test]
    fn equality_ignores_representation() {
        let mut a: SmallVec<u32, 2> = SmallVec::new();
        let mut b: SmallVec<u32, 2> = SmallVec::new();
        a.extend_from_slice(&[1, 2, 3]);
        b.push(1);
        b.push(2);
        b.push(3);
        assert_eq!(a, b);
        assert!(a == *[1, 2, 3].as_slice());
    }
}
