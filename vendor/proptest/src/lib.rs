//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * range and `any::<T>()` strategies, [`collection::vec`],
//!   [`Strategy::prop_map`] and [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Test-case generation is deterministic: the RNG is seeded from the test
//! function's name, so failures reproduce exactly across runs. There is no
//! shrinking — on failure the offending case index and a `Debug` dump of
//! the generated inputs are printed instead.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Deterministic xoshiro256++ generator used for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw from `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value generated.
    type Value: Debug;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Type-erased strategy used by [`prop_oneof!`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe strategy facade.
pub trait DynStrategy<T> {
    /// Draws one value.
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// Boxes a strategy for use in [`prop_oneof!`].
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// The strategy produced by [`prop_oneof!`]: picks an arm uniformly.
pub struct OneOf<T> {
    /// The candidate strategies.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_dyn(rng)
    }
}

/// Uniformly chooses among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf { arms: vec![$($crate::boxed($arm)),+] }
    };
}

/// Asserts a condition inside a property (plain `assert!` here: no
/// shrinking, failures abort the case).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Prints context when a property panics (best-effort failure report in
/// lieu of shrinking).
pub struct FailureReporter {
    /// Test name.
    pub test: &'static str,
    /// Case index.
    pub case: u32,
    /// Rendered inputs for the current case.
    pub inputs: String,
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stub: property `{}` failed on case {} with inputs:\n{}",
                self.test, self.case, self.inputs
            );
        }
    }
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                let __reporter = $crate::FailureReporter {
                    test: stringify!($name),
                    case: __case,
                    inputs: format!(
                        concat!($(concat!("  ", stringify!($arg), " = {:?}\n")),+),
                        $(&$arg),+
                    ),
                };
                { $body }
                ::std::mem::forget(__reporter);
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::collection::vec;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::gen_value(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = crate::Strategy::gen_value(&(0.0f64..2.0), &mut rng);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_by_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, config is honoured, asserts work.
        #[test]
        fn macro_smoke(x in 1u32..100, v in vec(any::<u8>(), 0..5)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_map(tag in prop_oneof![
            (0u8..1).prop_map(|_| "low"),
            (0u8..1).prop_map(|_| "high"),
        ]) {
            prop_assert!(tag == "low" || tag == "high");
        }
    }
}
