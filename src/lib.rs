//! Umbrella crate for the ULC reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`trace`] — block/trace model and synthetic workloads (`ulc-trace`);
//! * [`cache`] — single-level cache substrate (`ulc-cache`);
//! * [`measures`] — §2 locality-measure analysis (`ulc-measures`);
//! * [`hierarchy`] — multi-level simulator and baselines
//!   (`ulc-hierarchy`);
//! * [`core`] — the ULC protocol itself (`ulc-core`).
//!
//! See the repository README for the quickstart and DESIGN.md for the
//! full system inventory.
//!
//! # Examples
//!
//! ```
//! use ulc::core::{UlcConfig, UlcSingle};
//! use ulc::hierarchy::{simulate, CostModel};
//! use ulc::trace::synthetic;
//!
//! let trace = synthetic::sprite(20_000);
//! let mut protocol = UlcSingle::new(UlcConfig::new(vec![200, 200, 200]));
//! let stats = simulate(&mut protocol, &trace, trace.warmup_len());
//! let t_ave = stats.average_access_time(&CostModel::paper_three_level());
//! assert!(t_ave < CostModel::paper_three_level().miss_time_ms);
//! ```

#![warn(missing_docs)]

pub use ulc_cache as cache;
pub use ulc_core as core;
pub use ulc_hierarchy as hierarchy;
pub use ulc_measures as measures;
pub use ulc_obs as obs;
pub use ulc_trace as trace;
