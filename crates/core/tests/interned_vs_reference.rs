//! Differential oracle suite for the dense block-table rework.
//!
//! Every protocol that keeps per-block state in a
//! [`BlockMap`](ulc_trace::BlockMap) is run twice over every workload:
//! once in the default `TableMode::Dense` (interned flat tables, dense
//! queue array) and once in `TableMode::Hashed` over the retained
//! map-backed reference path
//! ([`MapReliablePlane`](ulc_hierarchy::reference::MapReliablePlane)).
//! The two runs must produce **bit-identical** full
//! [`SimStats`](ulc_hierarchy::SimStats) — hit counts per level, demotion
//! counts per boundary, misses, and every fault-summary counter including
//! the representation-independent `delivery_batches` tally. This is the
//! proof that the throughput rework perturbed no figure.

use ulc_core::{UlcConfig, UlcMulti, UlcMultiConfig, UlcSingle};
use ulc_hierarchy::plane::FaultyPlane;
use ulc_hierarchy::reference::MapReliablePlane;
use ulc_hierarchy::{
    simulate, DemotionBuffer, EvictionBased, IndLru, MultiLevelPolicy, SimStats, UniLru,
    UniLruVariant,
};
use ulc_trace::{synthetic, TableMode, Trace};

mod common;
use common::{multi_client_workloads, single_client_workloads};

/// Runs the interned protocol and its map-backed reference twin over
/// `trace` and asserts the full `SimStats` structs are bit-identical.
fn assert_identical<D, H>(name: &str, trace: &Trace, mut dense: D, mut hashed: H)
where
    D: MultiLevelPolicy,
    H: MultiLevelPolicy,
{
    let warmup = trace.warmup_len();
    let sd: SimStats = simulate(&mut dense, trace, warmup);
    let sh: SimStats = simulate(&mut hashed, trace, warmup);
    common::assert_stats_bit_identical(name, &sd, &sh);
}

#[test]
fn uni_lru_variants_match_reference_on_every_workload() {
    for (name, trace) in single_client_workloads() {
        for variant in [
            UniLruVariant::MruInsert,
            UniLruVariant::LruInsert,
            UniLruVariant::Adaptive,
        ] {
            let caps = vec![400usize, 400, 400];
            let dense = UniLru::multi_client(vec![caps[0]], caps[1..].to_vec(), variant);
            let hashed = UniLru::multi_client_with_mode(
                vec![caps[0]],
                caps[1..].to_vec(),
                variant,
                TableMode::Hashed,
            )
            .with_plane(MapReliablePlane::new());
            assert_identical(&format!("uniLRU/{variant:?}/{name}"), &trace, dense, hashed);
        }
    }
}

#[test]
fn ind_lru_matches_map_backed_plane_on_every_workload() {
    // IndLru keeps no per-block table, so this leg isolates the dense
    // queue array of the live ReliablePlane against the retained
    // map-backed plane.
    for (name, trace) in single_client_workloads() {
        let dense = IndLru::single_client(vec![400, 400, 400]);
        let hashed =
            IndLru::single_client(vec![400, 400, 400]).with_plane(MapReliablePlane::new());
        assert_identical(&format!("indLRU/{name}"), &trace, dense, hashed);
    }
}

#[test]
fn eviction_based_matches_reference_on_every_workload() {
    for (name, trace) in single_client_workloads() {
        for latency in [0u64, 7] {
            let dense = EvictionBased::new(vec![400], 800, latency);
            let hashed =
                EvictionBased::new_with_mode(vec![400], 800, latency, TableMode::Hashed)
                    .with_plane(MapReliablePlane::new());
            assert_identical(
                &format!("evict-reload/{latency}/{name}"),
                &trace,
                dense,
                hashed,
            );
        }
    }
}

#[test]
fn demotion_buffered_uni_lru_matches_reference() {
    for (name, trace) in single_client_workloads() {
        let dense = DemotionBuffer::new(UniLru::single_client(vec![400, 400]), 16, 0.2);
        let hashed = DemotionBuffer::new(
            UniLru::multi_client_with_mode(
                vec![400],
                vec![400],
                UniLruVariant::MruInsert,
                TableMode::Hashed,
            )
            .with_plane(MapReliablePlane::new()),
            16,
            0.2,
        );
        assert_identical(&format!("buffered/{name}"), &trace, dense, hashed);
    }
}

#[test]
fn ulc_single_matches_reference_on_every_workload() {
    for (name, trace) in single_client_workloads() {
        let dense = UlcSingle::new(UlcConfig::new(vec![400, 400, 400]));
        let hashed =
            UlcSingle::new_with_mode(UlcConfig::new(vec![400, 400, 400]), TableMode::Hashed);
        assert_identical(&format!("ULC-single/{name}"), &trace, dense, hashed);
    }
}

#[test]
fn ulc_multi_matches_reference_on_every_workload() {
    for (name, trace, clients) in multi_client_workloads() {
        let config = UlcMultiConfig::uniform(clients, 256, 2048);
        let dense = UlcMulti::new(config.clone());
        let hashed = UlcMulti::new_with_mode(config, TableMode::Hashed)
            .with_plane(MapReliablePlane::new());
        assert_identical(&format!("ULC/{name}"), &trace, dense, hashed);
    }
}

#[test]
fn faulty_plane_runs_match_reference_tables_exactly() {
    // Under an actively faulty plane the RNG stream (drops, duplicates,
    // delays, a crash) is a pure function of the scenario, independent of
    // the table representation — so Dense and Hashed tables must still
    // produce bit-identical stats, recovery counters included.
    let scenario = common::crashy_mild_scenario();

    let tm = synthetic::httpd_multi(30_000);
    let dense = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
        .with_plane(FaultyPlane::new(scenario.clone()));
    let hashed =
        UlcMulti::new_with_mode(UlcMultiConfig::uniform(7, 256, 2048), TableMode::Hashed)
            .with_plane(FaultyPlane::new(scenario.clone()));
    assert_identical("ULC/faulty/httpd", &tm, dense, hashed);

    let t = synthetic::cs(30_000);
    let dense = UniLru::single_client(vec![500, 500, 500])
        .with_plane(FaultyPlane::new(scenario.clone()));
    let hashed = UniLru::multi_client_with_mode(
        vec![500],
        vec![500, 500],
        UniLruVariant::MruInsert,
        TableMode::Hashed,
    )
    .with_plane(FaultyPlane::new(scenario));
    assert_identical("uniLRU/faulty/cs", &t, dense, hashed);
}
