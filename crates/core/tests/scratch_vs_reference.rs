//! Differential oracle suite for the zero-allocation scratch rework.
//!
//! Every protocol with a pooled `access_into` path is run twice over
//! every workload: once through the by-value [`MultiLevelPolicy::access`]
//! wrapper (the reference semantics, fresh buffers per call) and once
//! through `access_into` with a **single reused outcome that starts
//! dirty** — stale hit level, junk demotion counters sized for a
//! different hierarchy. The two runs must produce bit-identical full
//! [`SimStats`] — hit counts per level, per-boundary demotion counts,
//! misses, and every fault-summary counter. This is the proof that the
//! scratch/pool rework (DESIGN.md §5f) changed where buffers live, not
//! what any access computes.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_core::{AccessScratch, UlcConfig, UlcMulti, UlcMultiConfig, UlcSingle, UniLruStack};
use ulc_hierarchy::plane::FaultyPlane;
use ulc_hierarchy::{
    EvictionBased, IndLru, LruMqServer, MultiLevelPolicy, UniLru,
    UniLruVariant,
};
use ulc_trace::{synthetic, BlockId, Trace};

mod common;
use common::{simulate_by_value, simulate_pooled_dirty, single_client_workloads};

/// Runs two fresh instances of the same configuration, one per driver,
/// and asserts the full `SimStats` structs are bit-identical.
fn assert_identical<P: MultiLevelPolicy>(name: &str, trace: &Trace, mut by_value: P, mut pooled: P) {
    let warmup = trace.warmup_len();
    let sv = simulate_by_value(&mut by_value, trace, warmup);
    let sp = simulate_pooled_dirty(&mut pooled, trace, warmup);
    common::assert_stats_bit_identical(name, &sv, &sp);
}

#[test]
fn ulc_single_pooled_path_matches_by_value() {
    for (name, trace) in single_client_workloads() {
        assert_identical(
            &format!("ULC-single/{name}"),
            &trace,
            UlcSingle::new(UlcConfig::new(vec![400, 400, 400])),
            UlcSingle::new(UlcConfig::new(vec![400, 400, 400])),
        );
    }
}

#[test]
fn uni_lru_variants_pooled_path_matches_by_value() {
    for (name, trace) in single_client_workloads() {
        for variant in [
            UniLruVariant::MruInsert,
            UniLruVariant::LruInsert,
            UniLruVariant::Adaptive,
        ] {
            assert_identical(
                &format!("uniLRU/{variant:?}/{name}"),
                &trace,
                UniLru::multi_client(vec![400], vec![400, 400], variant),
                UniLru::multi_client(vec![400], vec![400, 400], variant),
            );
        }
    }
}

#[test]
fn ind_lru_pooled_path_matches_by_value() {
    for (name, trace) in single_client_workloads() {
        assert_identical(
            &format!("indLRU/{name}"),
            &trace,
            IndLru::single_client(vec![400, 400, 400]),
            IndLru::single_client(vec![400, 400, 400]),
        );
    }
}

#[test]
fn eviction_based_pooled_path_matches_by_value() {
    for (name, trace) in single_client_workloads() {
        for latency in [0u64, 7] {
            assert_identical(
                &format!("evict-reload/{latency}/{name}"),
                &trace,
                EvictionBased::new(vec![400], 800, latency),
                EvictionBased::new(vec![400], 800, latency),
            );
        }
    }
}

#[test]
fn mq_server_pooled_path_matches_by_value() {
    for (name, trace) in single_client_workloads() {
        assert_identical(
            &format!("LRU+MQ/{name}"),
            &trace,
            LruMqServer::new(vec![400], 800),
            LruMqServer::new(vec![400], 800),
        );
    }
}

#[test]
fn ulc_multi_pooled_path_matches_by_value() {
    for (name, trace, clients) in common::multi_client_workloads() {
        let config = UlcMultiConfig::uniform(clients, 256, 2048);
        assert_identical(
            &format!("ULC/{name}"),
            &trace,
            UlcMulti::new(config.clone()),
            UlcMulti::new(config),
        );
    }
}

#[test]
fn faulty_plane_pooled_path_matches_by_value() {
    // Under an actively faulty plane the RNG stream (drops, duplicates,
    // delays, a crash) is a pure function of the scenario, independent
    // of which buffer the caller hands in — so the pooled `deliver_into`
    // and `take_crashes_into` paths must replay the exact fate sequence
    // of the by-value wrappers, recovery counters included.
    let scenario = common::crashy_mild_scenario();

    let tm = synthetic::httpd_multi(30_000);
    assert_identical(
        "ULC/faulty/httpd",
        &tm,
        UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
            .with_plane(FaultyPlane::new(scenario.clone())),
        UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
            .with_plane(FaultyPlane::new(scenario.clone())),
    );

    let t = synthetic::cs(30_000);
    assert_identical(
        "uniLRU/faulty/cs",
        &t,
        UniLru::single_client(vec![500, 500, 500]).with_plane(FaultyPlane::new(scenario.clone())),
        UniLru::single_client(vec![500, 500, 500]).with_plane(FaultyPlane::new(scenario)),
    );
}

#[test]
fn dirty_scratch_on_the_raw_stack_is_equivalent_to_fresh() {
    // Drive one uniLRUstack with `access()` (fresh buffers) and a twin
    // with `access_into` over a scratch that was first dirtied on a
    // *different* stack shape, then reused without clearing. Every
    // side-effect list must match reference for reference.
    let caps = vec![40usize, 40, 40];
    let mut fresh = UniLruStack::new(caps.clone());
    let mut pooled = UniLruStack::new(caps);

    let mut scratch = AccessScratch::new();
    let mut other = UniLruStack::new(vec![3, 2, 4, 2]);
    for i in 0..200u64 {
        let _ = other.access_into(BlockId::new(i % 9), &mut scratch);
    }

    for i in 0..5_000u64 {
        let blk = BlockId::new((i * 37) % 150);
        let f = fresh.access(blk);
        let p = pooled.access_into(blk, &mut scratch);
        assert_eq!(f.found, p.found, "step {i}: found diverged");
        assert_eq!(f.was_in_stack, p.was_in_stack, "step {i}");
        assert_eq!(f.placed, p.placed, "step {i}: placement diverged");
        assert_eq!(
            f.demotions.as_slice(),
            scratch.demotions.as_slice(),
            "step {i}: demotion counters diverged"
        );
        assert_eq!(
            f.demoted.as_slice(),
            scratch.demoted.as_slice(),
            "step {i}: demoted blocks diverged"
        );
        assert_eq!(
            f.evicted.as_slice(),
            scratch.evicted.as_slice(),
            "step {i}: evictions diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random hierarchy shapes × random reference streams: the pooled
    /// path over a continuously-reused dirty scratch makes exactly the
    /// decisions of the by-value path.
    #[test]
    fn pooled_stack_equals_by_value_on_random_traces(
        caps in vec(1usize..6, 1..5),
        blocks in vec(0u64..24, 1..250),
    ) {
        let mut fresh = UniLruStack::new(caps.clone());
        let mut pooled = UniLruStack::new(caps);
        let mut scratch = AccessScratch::new();
        for (step, &blk) in blocks.iter().enumerate() {
            let f = fresh.access(BlockId::new(blk));
            let p = pooled.access_into(BlockId::new(blk), &mut scratch);
            prop_assert_eq!(f.found, p.found, "step {}", step);
            prop_assert_eq!(f.placed, p.placed, "step {}", step);
            prop_assert_eq!(f.demotions.as_slice(), scratch.demotions.as_slice(), "step {}", step);
            prop_assert_eq!(f.demoted.as_slice(), scratch.demoted.as_slice(), "step {}", step);
            prop_assert_eq!(f.evicted.as_slice(), scratch.evicted.as_slice(), "step {}", step);
        }
    }
}
