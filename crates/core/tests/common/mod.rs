//! Helpers shared by the integration suites (differential oracles,
//! chaos, observability conservation). Each suite pulls in the subset it
//! needs via `mod common;`.
#![allow(dead_code)]

use ulc_hierarchy::plane::FaultScenario;
use ulc_hierarchy::{AccessOutcome, MultiLevelPolicy, SimStats};
use ulc_trace::{synthetic, Trace};

/// The single-client workloads of the §2.2/§4.3 studies, at smoke scale.
pub fn single_client_workloads() -> Vec<(&'static str, Trace)> {
    synthetic::small_suite(20_000)
}

/// The multi-client workloads of the §4.4 study, at smoke scale:
/// `(name, trace, clients)`.
pub fn multi_client_workloads() -> Vec<(&'static str, Trace, usize)> {
    vec![
        ("httpd", synthetic::httpd_multi(30_000), 7),
        ("openmail", synthetic::openmail(30_000, 24_000), 6),
        ("db2", synthetic::db2_multi(30_000, 16_000), 8),
    ]
}

/// The pinned actively-faulty scenario of the differential suites: mild
/// mixed faults plus a mid-run server crash. The RNG stream is a pure
/// function of the scenario, so runs over it are still deterministic.
pub fn crashy_mild_scenario() -> FaultScenario {
    FaultScenario::mild(97).with_crash(15_000, 1)
}

/// Drives `policy` through the by-value [`MultiLevelPolicy::access`]
/// wrapper — the reference semantics with fresh buffers per reference.
pub fn simulate_by_value<P: MultiLevelPolicy>(
    policy: &mut P,
    trace: &Trace,
    warmup: usize,
) -> SimStats {
    let mut stats = SimStats::new(policy.num_levels());
    for (i, r) in trace.iter().enumerate() {
        let out = policy.access(r.client, r.block);
        if i >= warmup {
            stats.record(&out);
        }
    }
    stats.faults = policy.fault_summary();
    stats
}

/// Drives `policy` through `access_into` with one pooled outcome that is
/// deliberately dirty at the start (stale hit level, garbage counters
/// sized for a nine-boundary hierarchy) and reused across every
/// reference — the steady-state hot path. The per-access reset contract
/// must make the dirt invisible.
pub fn simulate_pooled_dirty<P: MultiLevelPolicy>(
    policy: &mut P,
    trace: &Trace,
    warmup: usize,
) -> SimStats {
    let mut stats = SimStats::new(policy.num_levels());
    let mut out = AccessOutcome::hit(3, 9);
    for d in out.demotions.iter_mut() {
        *d = 0xDEAD;
    }
    for (i, r) in trace.iter().enumerate() {
        policy.access_into(r.client, r.block, &mut out);
        if i >= warmup {
            stats.record(&out);
        }
    }
    stats.faults = policy.fault_summary();
    stats
}

/// Asserts two full [`SimStats`] are bit-identical, including the derived
/// hit rate down to the last mantissa bit.
pub fn assert_stats_bit_identical(name: &str, a: &SimStats, b: &SimStats) {
    assert_eq!(a, b, "{name}: stats diverged");
    assert_eq!(
        a.total_hit_rate().to_bits(),
        b.total_hit_rate().to_bits(),
        "{name}: hit rate diverged"
    );
}

/// Protocols with the full DESIGN.md §5d recovery surface. `settle`,
/// `reconcile` and `check_invariants` are inherent methods, so this
/// suite-local trait gives [`assert_fully_recovered`] one name for them.
pub trait Recoverable: MultiLevelPolicy {
    fn settle(&mut self);
    fn reconcile(&mut self);
    fn check_invariants(&self);
}

impl<P: ulc_hierarchy::MessagePlane> Recoverable for ulc_hierarchy::UniLru<P> {
    fn settle(&mut self) {
        ulc_hierarchy::UniLru::settle(self);
    }
    fn reconcile(&mut self) {
        ulc_hierarchy::UniLru::reconcile(self);
    }
    fn check_invariants(&self) {
        ulc_hierarchy::UniLru::check_invariants(self);
    }
}

impl<P: ulc_hierarchy::MessagePlane> Recoverable for ulc_core::UlcMulti<P> {
    fn settle(&mut self) {
        ulc_core::UlcMulti::settle(self);
    }
    fn reconcile(&mut self) {
        ulc_core::UlcMulti::reconcile(self);
    }
    fn check_invariants(&self) {
        ulc_core::UlcMulti::check_invariants(self);
    }
}

/// The recovery contract of DESIGN.md §5d, as one call: settle in-flight
/// traffic, run one reconciliation round, check the full invariant set,
/// and require every detected residency violation to have been repaired.
/// Panics on violation (proptest shrinks panics like `prop_assert!`).
pub fn assert_fully_recovered<P: Recoverable>(policy: &mut P) {
    policy.settle();
    policy.reconcile();
    policy.check_invariants();
    let s = policy.fault_summary();
    assert_eq!(
        s.residency_violations_detected, s.residency_violations_repaired,
        "unrepaired residency violations"
    );
}
