//! Differential oracle for the sharded replay executor (DESIGN.md §5i).
//!
//! The contract under test: [`ulc_core::parallel::simulate_sharded`] is
//! **bit-identical** to the serial driver [`ulc_hierarchy::simulate`] —
//! same [`SimStats`] down to the last mantissa bit of the derived rates,
//! same folded metrics registry when observability is on — at every
//! shard count, every epoch length, both claim rules, and on a
//! zero-fault `FaultyPlane` (whose delivery machinery differs from the
//! reliable plane's). Actively faulty planes must take the serial
//! fallback and stay exact by construction.

mod common;

use common::{assert_stats_bit_identical, crashy_mild_scenario, multi_client_workloads};
use proptest::prelude::*;
use ulc_core::parallel::{simulate_sharded, ShardedReplayer};
use ulc_core::{ClaimRule, UlcMulti, UlcMultiConfig};
use ulc_hierarchy::plane::{FaultScenario, FaultyPlane};
use ulc_hierarchy::{simulate, MessagePlane, MultiLevelPolicy, SimStats};
use ulc_trace::multi::interleave;
use ulc_trace::patterns::{LoopingPattern, Pattern};
use ulc_trace::Trace;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn config_for(clients: usize) -> UlcMultiConfig {
    UlcMultiConfig::uniform(clients, 256, 2048)
}

/// Serial reference stats for `trace` under `config`.
fn serial_stats(config: &UlcMultiConfig, trace: &Trace) -> SimStats {
    let mut policy = UlcMulti::new(config.clone());
    simulate(&mut policy, trace, trace.warmup_len())
}

#[test]
fn sharded_matches_serial_on_every_multi_client_workload() {
    for (name, trace, clients) in multi_client_workloads() {
        let config = config_for(clients);
        let expect = serial_stats(&config, &trace);
        for shards in SHARD_COUNTS {
            let mut policy = UlcMulti::new(config.clone());
            let got = simulate_sharded(&mut policy, &trace, trace.warmup_len(), shards);
            assert_stats_bit_identical(&format!("{name}@{shards}"), &expect, &got);
        }
    }
}

#[test]
fn sharded_matches_serial_under_paper_strict_claims() {
    // PaperStrict is the delicate leg: every delivered access writes the
    // server-fullness hint into the client stack, and the executor's
    // consumed accesses skip that write. The write is dead for a private
    // hit (a resident block never consults it), which this leg proves.
    let (name, trace, clients) = &multi_client_workloads()[0];
    let mut config = config_for(*clients);
    config.claim_rule = ClaimRule::PaperStrict;
    let expect = serial_stats(&config, trace);
    for shards in SHARD_COUNTS {
        let mut policy = UlcMulti::new(config.clone());
        let got = simulate_sharded(&mut policy, trace, trace.warmup_len(), shards);
        assert_stats_bit_identical(&format!("{name}/strict@{shards}"), &expect, &got);
    }
}

#[test]
fn sharded_matches_serial_on_zero_fault_faulty_plane() {
    // A zero-fault FaultyPlane is not lossy, so the executor takes the
    // parallel path over the plane's due-time delivery machinery.
    let (name, trace, clients) = &multi_client_workloads()[0];
    let config = config_for(*clients);
    let mut serial = UlcMulti::new(config.clone())
        .with_plane(FaultyPlane::new(FaultScenario::zero(41)));
    assert!(!serial.plane().lossy(), "zero-fault plane must not be lossy");
    let expect = simulate(&mut serial, trace, trace.warmup_len());
    for shards in [2, 8] {
        let mut policy = UlcMulti::new(config.clone())
            .with_plane(FaultyPlane::new(FaultScenario::zero(41)));
        let got = simulate_sharded(&mut policy, trace, trace.warmup_len(), shards);
        assert_stats_bit_identical(&format!("{name}/faulty-zero@{shards}"), &expect, &got);
    }
}

#[test]
fn crashy_plane_takes_the_serial_fallback_and_stays_exact() {
    let (name, trace, clients) = &multi_client_workloads()[0];
    let config = config_for(*clients);
    let scenario = crashy_mild_scenario();
    let mut serial =
        UlcMulti::new(config.clone()).with_plane(FaultyPlane::new(scenario.clone()));
    assert!(
        serial.plane().lossy(),
        "the crashy scenario must trip the fallback predicate"
    );
    let expect = simulate(&mut serial, trace, trace.warmup_len());
    for shards in [2, 8] {
        let mut policy =
            UlcMulti::new(config.clone()).with_plane(FaultyPlane::new(scenario.clone()));
        let got = simulate_sharded(&mut policy, trace, trace.warmup_len(), shards);
        assert_stats_bit_identical(&format!("{name}/crashy@{shards}"), &expect, &got);
    }
}

#[test]
fn epoch_boundaries_are_semantics_free() {
    let (name, trace, clients) = &multi_client_workloads()[0];
    let mut trace = trace.clone();
    trace.truncate(6_000);
    let config = config_for(*clients);
    let expect = serial_stats(&config, &trace);
    for epoch_len in [1, 37, 257, 100_000] {
        let mut policy = UlcMulti::new(config.clone());
        let mut replayer = ShardedReplayer::new(&trace, 2).with_epoch_len(epoch_len);
        let got = replayer.replay(&mut policy, &trace, trace.warmup_len());
        assert_stats_bit_identical(&format!("{name}/epoch={epoch_len}"), &expect, &got);
    }
}

#[test]
fn replay_ranges_compose_to_one_full_replay() {
    // The throughput harness splits a run into a warm phase and an
    // allocation-gated steady phase via replay_range; the split point
    // must be invisible.
    let (name, trace, clients) = &multi_client_workloads()[0];
    let config = config_for(*clients);
    let expect = serial_stats(&config, trace);
    let warmup = trace.warmup_len();
    for split in [1, warmup, trace.len() / 2, trace.len() - 1] {
        let mut policy = UlcMulti::new(config.clone());
        let mut replayer = ShardedReplayer::new(trace, 2);
        let mut stats = SimStats::new(2);
        replayer.replay_range(&mut policy, trace, 0, split, warmup, &mut stats);
        replayer.replay_range(&mut policy, trace, split, trace.len(), warmup, &mut stats);
        replayer.fold_obs(&mut policy);
        stats.faults = policy.fault_summary();
        assert_stats_bit_identical(&format!("{name}/split={split}"), &expect, &stats);
    }
}

#[cfg(feature = "obs")]
#[test]
fn folded_metrics_are_bit_identical_to_serial() {
    use ulc_obs::Observe;

    let (name, trace, clients) = &multi_client_workloads()[0];
    let config = config_for(*clients);
    let ring = 1 << 16;

    let mut serial = UlcMulti::new(config.clone());
    serial.obs_mut().enable(2, ring);
    let expect = simulate(&mut serial, trace, trace.warmup_len());
    serial.obs_mut().finish();
    let expect_metrics = serial.obs().recorder().expect("recorder").metrics().clone();

    for shards in [2, 8] {
        let mut policy = UlcMulti::new(config.clone());
        policy.obs_mut().enable(2, ring);
        let got = simulate_sharded(&mut policy, trace, trace.warmup_len(), shards);
        policy.obs_mut().finish();
        let got_metrics = policy.obs().recorder().expect("recorder").metrics().clone();
        assert_stats_bit_identical(&format!("{name}/obs@{shards}"), &expect, &got);
        assert_eq!(
            expect_metrics, got_metrics,
            "{name}@{shards}: folded metrics diverged"
        );
    }
}

/// Builds a multi-client trace whose clients' block ranges partially
/// overlap, so the plan sees a mix of exclusive and shared references.
fn overlapping_trace(clients: usize, loop_size: u64, len: usize, seed: u64) -> Trace {
    let patterns: Vec<Box<dyn Pattern>> = (0..clients)
        .map(|c| {
            // Adjacent clients share half their range.
            let base = c as u64 * (loop_size / 2);
            Box::new(LoopingPattern::new(loop_size).with_base(base)) as Box<dyn Pattern>
        })
        .collect();
    interleave(patterns, None, len, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shard-count invariance: any shard count produces the serial stats
    /// on randomly interleaved, partially-overlapping workloads.
    #[test]
    fn prop_shard_count_invariance(
        clients in 2usize..6,
        loop_size in 64u64..512,
        seed in 0u64..1_000,
        shards in 2usize..9,
    ) {
        let trace = overlapping_trace(clients, loop_size, 6_000, seed);
        let config = UlcMultiConfig::uniform(clients, 64, 512);
        let expect = serial_stats(&config, &trace);
        let mut policy = UlcMulti::new(config);
        let got = simulate_sharded(&mut policy, &trace, trace.warmup_len(), shards);
        prop_assert_eq!(&expect, &got);
        prop_assert_eq!(
            expect.total_hit_rate().to_bits(),
            got.total_hit_rate().to_bits()
        );
    }
}
