//! Conservation suite for the observability plane (DESIGN.md §5h).
//!
//! Every protocol is run with a live recorder attached from the very
//! first reference (warm-up 0) and its event/metric ledger reconciled
//! exactly against the run's [`SimStats`]: accesses == references,
//! hits + misses == accesses per level, demotions recorded == demotions
//! surfaced ± buffered. For the default-config exclusive `UlcSingle`
//! the event log alone must additionally replay to a consistent
//! single-residency placement ([`ulc_obs::check::replay_residency`]).
//!
//! Every run also carries a windowed [`ulc_obs::TimelineSampler`]
//! (DESIGN.md §5j) and gates the per-window conservation law: the sum
//! of all timeline windows must reproduce the final registry *exactly*
//! ([`ulc_obs::check::windows_reconcile`]) — per protocol, including
//! the crashy `FaultyPlane` leg and a sharded (shards=4) leg whose
//! folded timeline must equal the serial driver's bit for bit.
#![cfg(feature = "obs")]

use ulc_core::parallel::simulate_sharded;
use ulc_core::{UlcConfig, UlcMulti, UlcMultiConfig, UlcSingle};
use ulc_hierarchy::plane::{FaultScenario, FaultyPlane};
use ulc_hierarchy::{
    simulate, DemotionBuffer, EvictionBased, IndLru, LruMqServer, MessagePlane, MultiLevelPolicy,
    SimStats, UniLru, UniLruVariant,
};
use ulc_obs::{check, Observe};
use ulc_trace::patterns::{LoopingPattern, Pattern};
use ulc_trace::Trace;

mod common;

/// Ring big enough that the smoke-scale streams never wrap, so the
/// event-tally and residency-replay legs of the kit always engage.
const BIG_RING: usize = 1 << 20;

/// Timeline window length (ticks per window) for the per-window gate.
/// Deliberately not a divisor of the trace lengths, so the last window
/// is partial and the sum check covers ragged tails.
const WINDOW: u64 = 509;

/// Enables a truncation-free timeline sized for `trace` on an
/// already-enabled handle.
fn attach_timeline<P: MultiLevelPolicy + Observe>(policy: &mut P, trace: &Trace) {
    let capacity = (trace.len() as u64 / WINDOW + 1) as usize;
    policy.obs_mut().enable_timeline(WINDOW, capacity);
}

fn view(stats: &SimStats) -> check::StatsView<'_> {
    check::StatsView {
        references: stats.references,
        hits_by_level: &stats.hits_by_level,
        misses: stats.misses,
        demotions_by_boundary: &stats.demotions_by_boundary,
    }
}

/// Runs `policy` over `trace` with recording on from the first reference
/// and reconciles the ledger, returning the policy and stats for any
/// extra per-protocol checks.
fn reconciled<P: MultiLevelPolicy + Observe>(name: &str, mut policy: P, trace: &Trace) -> (P, SimStats) {
    let levels = policy.num_levels();
    policy.obs_mut().enable(levels, BIG_RING);
    attach_timeline(&mut policy, trace);
    let stats = simulate(&mut policy, trace, 0);
    let f = &stats.faults;
    policy.obs_mut().add_plane_faults(
        f.messages_dropped
            + f.messages_duplicated
            + f.messages_reordered
            + f.overflow_drops
            + f.rpc_failures
            + f.crashes,
    );
    policy.obs_mut().finish();
    let rec = policy.obs().recorder().expect("obs feature attaches a recorder");
    if let Err(e) = check::reconcile(rec, &view(&stats)) {
        panic!("{name}: conservation failed: {e}");
    }
    if let Err(e) = check::windows_reconcile(rec) {
        panic!("{name}: per-window conservation failed: {e}");
    }
    let timeline = rec.timeline().expect("timeline attached");
    assert!(!timeline.truncated(), "{name}: timeline sized for the whole run");
    (policy, stats)
}

#[test]
fn ulc_single_reconciles_and_replays_single_residency() {
    // The headline loop-100k cell of the acceptance criteria, plus the
    // event-log-only residency replay the exclusive protocol permits.
    let trace = LoopingPattern::new(100_000).generate(150_000);
    let (policy, stats) = reconciled(
        "ULC/loop-100k",
        UlcSingle::new(UlcConfig::new(vec![40_000, 80_000])),
        &trace,
    );
    assert_eq!(stats.references, 150_000);
    let rec = policy.obs().recorder().expect("recorder");
    assert_eq!(rec.log().dropped(), 0, "stream must be complete for replay");
    let replay = check::replay_residency(rec.log(), policy.num_levels())
        .unwrap_or_else(|e| panic!("ULC/loop-100k: residency replay failed: {e}"));
    assert_eq!(replay, check::ResidencyReplay::Verified, "complete stream must verify");
}

#[test]
fn truncated_ring_reports_replay_skipped_not_failed() {
    // Same cell, but with a ring two orders of magnitude too small: the
    // stream wraps and the replay must report the truncation distinctly
    // instead of flagging the surviving suffix as contradictory.
    let trace = LoopingPattern::new(100_000).generate(150_000);
    let mut policy = UlcSingle::new(UlcConfig::new(vec![40_000, 80_000]));
    let levels = policy.num_levels();
    policy.obs_mut().enable(levels, 1 << 10);
    let _ = simulate(&mut policy, &trace, 0);
    policy.obs_mut().finish();
    let rec = policy.obs().recorder().expect("recorder");
    let dropped = rec.log().dropped();
    assert!(dropped > 0, "the small ring must wrap on this stream");
    assert_eq!(
        check::replay_residency(rec.log(), levels),
        Ok(check::ResidencyReplay::SkippedTruncated { dropped }),
    );
}

#[test]
fn ulc_single_reconciles_on_every_workload() {
    for (name, trace) in common::single_client_workloads() {
        reconciled(
            &format!("ULC-single/{name}"),
            UlcSingle::new(UlcConfig::new(vec![400, 400, 400])),
            &trace,
        );
    }
}

#[test]
fn uni_lru_variants_reconcile_on_every_workload() {
    for (name, trace) in common::single_client_workloads() {
        for variant in [
            UniLruVariant::MruInsert,
            UniLruVariant::LruInsert,
            UniLruVariant::Adaptive,
        ] {
            reconciled(
                &format!("uniLRU/{variant:?}/{name}"),
                UniLru::multi_client(vec![400], vec![400, 400], variant),
                &trace,
            );
        }
    }
}

#[test]
fn ind_lru_reconciles_on_every_workload() {
    for (name, trace) in common::single_client_workloads() {
        reconciled(
            &format!("indLRU/{name}"),
            IndLru::single_client(vec![400, 400, 400]),
            &trace,
        );
    }
}

#[test]
fn eviction_based_reconciles_on_every_workload() {
    for (name, trace) in common::single_client_workloads() {
        for latency in [0u64, 7] {
            reconciled(
                &format!("evict-reload/{latency}/{name}"),
                EvictionBased::new(vec![400], 800, latency),
                &trace,
            );
        }
    }
}

#[test]
fn mq_server_reconciles_on_every_workload() {
    for (name, trace) in common::single_client_workloads() {
        reconciled(
            &format!("LRU+MQ/{name}"),
            LruMqServer::new(vec![400], 800),
            &trace,
        );
    }
}

#[test]
fn demotion_buffer_ledger_balances_events_against_surfaced_stats() {
    for (name, trace) in common::single_client_workloads() {
        let (policy, stats) = reconciled(
            &format!("buffered/{name}"),
            DemotionBuffer::new(UniLru::single_client(vec![400, 400]), 16, 0.2),
            &trace,
        );
        // The ledger must actually have been exercised: events recorded
        // at the boundary exceed the surfaced stats by the buffered count.
        let m = policy.obs().recorder().expect("recorder").metrics();
        let row = m.level(0);
        assert_eq!(
            row.demotions,
            stats.demotions_by_boundary[0] + row.buffered,
            "buffered/{name}: ledger out of balance"
        );
    }
}

#[test]
fn ulc_multi_reconciles_on_every_workload() {
    for (name, trace, clients) in common::multi_client_workloads() {
        reconciled(
            &format!("ULC/{name}"),
            UlcMulti::new(UlcMultiConfig::uniform(clients, 256, 2048)),
            &trace,
        );
    }
}

#[test]
fn faulty_plane_run_reconciles_and_reports_transport_faults() {
    // Under an actively faulty plane the counters must still balance,
    // and the plane's own accounting feeds the plane_faults counter via
    // `PlaneAccounting::observe_into`.
    let trace = ulc_trace::synthetic::httpd_multi(30_000);
    let mut policy = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
        .with_plane(FaultyPlane::new(common::crashy_mild_scenario()));
    let levels = policy.num_levels();
    policy.obs_mut().enable(levels, BIG_RING);
    attach_timeline(&mut policy, &trace);
    let stats = simulate(&mut policy, &trace, 0);
    let accounting = policy.plane().accounting();
    {
        let obs = policy.obs_mut();
        accounting.observe_into(obs);
        obs.finish();
    }
    let rec = policy.obs().recorder().expect("recorder");
    check::reconcile(rec, &view(&stats))
        .unwrap_or_else(|e| panic!("ULC/faulty/httpd: conservation failed: {e}"));
    check::windows_reconcile(rec)
        .unwrap_or_else(|e| panic!("ULC/faulty/httpd: per-window conservation failed: {e}"));
    assert!(
        rec.metrics().counter(ulc_obs::CounterId::PlaneFaults) > 0,
        "the mild+crash scenario must surface transport faults"
    );
    assert!(
        rec.metrics().counter(ulc_obs::CounterId::Faults) > 0,
        "the protocol must observe faults under the crashy scenario"
    );
    // The protocol-observed Fault events are kept apart from the
    // transport tally: zero-fault runs record PlaneFaults == 0.
    let zero = FaultScenario::zero(11);
    let mut clean = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
        .with_plane(FaultyPlane::new(zero));
    let levels = clean.num_levels();
    clean.obs_mut().enable(levels, BIG_RING);
    let _ = simulate(&mut clean, &trace, 0);
    let accounting = clean.plane().accounting();
    let obs = clean.obs_mut();
    accounting.observe_into(obs);
    obs.finish();
    let rec = clean.obs().recorder().expect("recorder");
    assert_eq!(rec.metrics().counter(ulc_obs::CounterId::PlaneFaults), 0);
}

#[test]
fn sharded_replay_timeline_folds_bit_identical_to_serial() {
    // The shards=4 leg of the per-window gate: the sharded executor
    // stamps every consumed access with its global trace position, so
    // folding the per-shard timelines must reproduce the serial
    // driver's timeline *bit for bit* — same windows, same counters,
    // same histograms — and both must satisfy window conservation.
    let trace = ulc_trace::synthetic::httpd_multi(30_000);
    let mut serial = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048));
    let mut sharded = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048));
    for p in [&mut serial, &mut sharded] {
        let levels = p.num_levels();
        p.obs_mut().enable(levels, BIG_RING);
        attach_timeline(p, &trace);
    }
    let want = simulate(&mut serial, &trace, 0);
    let got = simulate_sharded(&mut sharded, &trace, 0, 4);
    assert_eq!(want, got, "sharded SimStats must match the serial driver");
    serial.obs_mut().finish();
    sharded.obs_mut().finish();
    let s = serial.obs().recorder().expect("recorder");
    let p = sharded.obs().recorder().expect("recorder");
    assert_eq!(s.metrics(), p.metrics(), "folded registry must equal serial");
    assert_eq!(
        s.timeline().expect("timeline"),
        p.timeline().expect("timeline"),
        "folded timeline must equal serial window for window"
    );
    check::windows_reconcile(s).expect("serial window conservation");
    check::windows_reconcile(p).expect("sharded window conservation");
}
