//! Differential oracle suite for the message-plane refactor.
//!
//! Every protocol that routes its traffic through a
//! [`MessagePlane`](ulc_hierarchy::MessagePlane) is run twice over every
//! workload: once on the default [`ReliablePlane`] and once on a
//! [`FaultyPlane`] with every fault rate set to zero. The two runs must
//! produce **bit-identical** full [`SimStats`] — hit counts per level,
//! demotion counts per boundary, misses, and the fault summary. This is
//! the proof that the plane refactor did not perturb any figure: the
//! zero-fault `FaultyPlane` path exercises the queueing/delivery code yet
//! reproduces the historical in-line behaviour exactly.

use ulc_core::{UlcMulti, UlcMultiConfig};
use ulc_hierarchy::plane::{FaultScenario, FaultyPlane};
use ulc_hierarchy::{
    simulate, DemotionBuffer, EvictionBased, IndLru, MultiLevelPolicy, SimStats, UniLru,
    UniLruVariant,
};
use ulc_trace::{synthetic, Trace};

mod common;
use common::{multi_client_workloads, single_client_workloads};

/// Runs `build(faulty?)` over `trace` on both planes and asserts the full
/// `SimStats` match bit for bit. The zero-fault run must also report a
/// clean fault summary apart from its transport tallies.
fn assert_differential<R, F>(name: &str, trace: &Trace, mut reliable: R, mut faulty: F)
where
    R: MultiLevelPolicy,
    F: MultiLevelPolicy,
{
    let warmup = trace.warmup_len();
    let sr: SimStats = simulate(&mut reliable, trace, warmup);
    let sf: SimStats = simulate(&mut faulty, trace, warmup);
    // Transport tallies (sent/delivered) legitimately differ between the
    // planes' accounting; everything observable must not.
    assert_eq!(
        sr.hits_by_level, sf.hits_by_level,
        "{name}: per-level hits diverged"
    );
    assert_eq!(sr.misses, sf.misses, "{name}: misses diverged");
    assert_eq!(
        sr.demotions_by_boundary, sf.demotions_by_boundary,
        "{name}: demotions diverged"
    );
    assert_eq!(sr.references, sf.references, "{name}: references diverged");
    assert_eq!(
        sr.faults, sf.faults,
        "{name}: fault summaries diverged"
    );
    // No *transport* fault may be reported on the zero-fault plane
    // (bounded-buffer overflow drops are model behaviour, identical on
    // both planes, and already covered by the equality above).
    let f = &sf.faults;
    assert_eq!(
        (
            f.messages_dropped,
            f.messages_duplicated,
            f.messages_reordered,
            f.rpc_failures,
            f.crashes,
            f.reconciliation_rounds,
            f.stale_status_hits,
            f.residency_violations_detected,
        ),
        (0, 0, 0, 0, 0, 0, 0, 0),
        "{name}: zero-fault run reported transport faults: {f:?}"
    );
    // And the end-to-end derived metrics are bit-identical too.
    assert_eq!(
        sr.total_hit_rate().to_bits(),
        sf.total_hit_rate().to_bits(),
        "{name}: hit rate diverged"
    );
}

#[test]
fn uni_lru_variants_are_bit_identical_on_every_workload() {
    for (name, trace) in single_client_workloads() {
        for variant in [
            UniLruVariant::MruInsert,
            UniLruVariant::LruInsert,
            UniLruVariant::Adaptive,
        ] {
            let caps = vec![400usize, 400, 400];
            let reliable = UniLru::multi_client(vec![caps[0]], caps[1..].to_vec(), variant);
            let faulty = UniLru::multi_client(vec![caps[0]], caps[1..].to_vec(), variant)
                .with_plane(FaultyPlane::new(FaultScenario::zero(11)));
            assert_differential(&format!("uniLRU/{variant:?}/{name}"), &trace, reliable, faulty);
        }
    }
}

#[test]
fn ind_lru_is_bit_identical_on_every_workload() {
    for (name, trace) in single_client_workloads() {
        let reliable = IndLru::single_client(vec![400, 400, 400]);
        let faulty = IndLru::single_client(vec![400, 400, 400])
            .with_plane(FaultyPlane::new(FaultScenario::zero(22)));
        assert_differential(&format!("indLRU/{name}"), &trace, reliable, faulty);
    }
}

#[test]
fn eviction_based_is_bit_identical_on_every_workload() {
    for (name, trace) in single_client_workloads() {
        for latency in [0u64, 7] {
            let reliable = EvictionBased::new(vec![400], 800, latency);
            let faulty = EvictionBased::new(vec![400], 800, latency)
                .with_plane(FaultyPlane::new(FaultScenario::zero(33)));
            assert_differential(
                &format!("evict-reload/{latency}/{name}"),
                &trace,
                reliable,
                faulty,
            );
        }
    }
}

#[test]
fn demotion_buffered_uni_lru_is_bit_identical() {
    for (name, trace) in single_client_workloads() {
        let reliable = DemotionBuffer::new(UniLru::single_client(vec![400, 400]), 16, 0.2);
        let faulty = DemotionBuffer::new(
            UniLru::single_client(vec![400, 400])
                .with_plane(FaultyPlane::new(FaultScenario::zero(44))),
            16,
            0.2,
        );
        assert_differential(&format!("buffered/{name}"), &trace, reliable, faulty);
    }
}

#[test]
fn ulc_multi_is_bit_identical_on_every_workload() {
    for (name, trace, clients) in multi_client_workloads() {
        let config = UlcMultiConfig::uniform(clients, 256, 2048);
        let reliable = UlcMulti::new(config.clone());
        let faulty =
            UlcMulti::new(config).with_plane(FaultyPlane::new(FaultScenario::zero(55)));
        assert_differential(&format!("ULC/{name}"), &trace, reliable, faulty);
    }
}

#[test]
fn full_sim_stats_struct_equality_holds_end_to_end() {
    // The per-field asserts above localise a divergence; this is the
    // satellite's literal claim — whole-struct equality, including the
    // fault summary, on a representative workload per protocol family.
    let t = synthetic::cs(30_000);
    let mut r = UniLru::single_client(vec![500, 500, 500]);
    let mut f = UniLru::single_client(vec![500, 500, 500])
        .with_plane(FaultyPlane::new(FaultScenario::zero(7)));
    assert_eq!(
        simulate(&mut r, &t, t.warmup_len()),
        simulate(&mut f, &t, t.warmup_len())
    );

    let tm = synthetic::httpd_multi(30_000);
    let mut r = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048));
    let mut f = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
        .with_plane(FaultyPlane::new(FaultScenario::zero(7)));
    assert_eq!(
        simulate(&mut r, &tm, tm.warmup_len()),
        simulate(&mut f, &tm, tm.warmup_len())
    );
}
