//! Property-based tests for the ULC protocol: the O(1) engine is
//! equivalent to the executable specification, and every structural
//! invariant holds under arbitrary reference streams.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_core::reference::NaiveUlc;
use ulc_core::{Placement, UlcMulti, UlcMultiConfig, UniLruStack};
use ulc_hierarchy::MultiLevelPolicy;
use ulc_trace::{BlockId, ClientId};

fn capacities() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        vec(1usize..6, 1..2),
        vec(1usize..6, 2..3),
        vec(1usize..6, 3..4),
        vec(1usize..5, 4..5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast stamped-yardstick engine makes exactly the decisions of
    /// the naive positional specification, for any hierarchy shape and any
    /// reference stream.
    #[test]
    fn fast_engine_equals_naive_specification(
        caps in capacities(),
        blocks in vec(0u64..24, 1..250),
    ) {
        let mut fast = UniLruStack::new(caps.clone());
        let mut naive = NaiveUlc::new(caps.clone());
        for (step, &blk) in blocks.iter().enumerate() {
            let f = fast.access(BlockId::new(blk));
            let n = naive.access(BlockId::new(blk));
            prop_assert_eq!(f.found, n.found, "step {}", step);
            prop_assert_eq!(f.placed, n.placed, "step {}", step);
            prop_assert_eq!(&f.demotions, &n.demotions, "step {}", step);
            for l in 0..caps.len() {
                prop_assert_eq!(
                    fast.level_blocks(l),
                    naive.level_blocks(l),
                    "step {} level {}",
                    step,
                    l
                );
            }
            fast.check_invariants();
        }
    }

    /// Levels never exceed capacity and a block is cached at one level at
    /// most, for any stream.
    #[test]
    fn single_client_structural_invariants(
        caps in capacities(),
        blocks in vec(0u64..64, 1..400),
    ) {
        let mut stack = UniLruStack::new(caps.clone());
        for &blk in &blocks {
            stack.access(BlockId::new(blk));
        }
        stack.check_invariants();
        let mut seen = std::collections::HashSet::new();
        for l in 0..caps.len() {
            let level_blocks = stack.level_blocks(l);
            prop_assert!(level_blocks.len() <= caps[l]);
            for b in level_blocks {
                prop_assert!(seen.insert(b), "block cached at two levels");
            }
        }
    }

    /// A hit is only ever reported for a block that the protocol placed
    /// earlier and has not displaced since (replay consistency): we track
    /// the cached set from outcomes alone and require agreement.
    #[test]
    fn outcome_stream_is_self_consistent(
        caps in capacities(),
        blocks in vec(0u64..32, 1..300),
    ) {
        let mut stack = UniLruStack::new(caps.clone());
        let mut resident: std::collections::HashMap<u64, usize> = Default::default();
        for &blk in &blocks {
            let out = stack.access(BlockId::new(blk));
            match out.found {
                Placement::Level(l) => {
                    prop_assert_eq!(resident.get(&blk).copied(), Some(l));
                }
                Placement::Uncached => {
                    prop_assert_eq!(resident.get(&blk), None);
                }
            }
            // Replay the placement bookkeeping.
            match out.placed {
                Placement::Level(l) => {
                    resident.insert(blk, l);
                }
                Placement::Uncached => {
                    resident.remove(&blk);
                }
            }
            for (b, _, to) in &out.demoted {
                resident.insert(b.raw(), *to);
            }
            for b in &out.evicted {
                resident.remove(&b.raw());
            }
        }
    }

    /// Demotion counts reported per boundary are consistent with the
    /// demoted block list.
    #[test]
    fn demotion_counts_match_demoted_blocks(
        caps in capacities(),
        blocks in vec(0u64..24, 1..250),
    ) {
        let mut stack = UniLruStack::new(caps.clone());
        for &blk in &blocks {
            let out = stack.access(BlockId::new(blk));
            let mut expect = vec![0u32; caps.len().saturating_sub(1)];
            for &(_, from, to) in &out.demoted {
                prop_assert!(from < to, "demotions go downward");
                for m in from..to {
                    expect[m] += 1;
                }
            }
            prop_assert_eq!(&out.demotions, &expect);
        }
    }

    /// Multi-client: per-client stacks validate, the server never exceeds
    /// capacity, and every reported hit corresponds to a real copy.
    #[test]
    fn multi_client_invariants(
        clients in 1usize..4,
        client_cap in 1usize..5,
        server_cap in 1usize..8,
        refs in vec((0u32..4, 0u64..24), 1..300),
    ) {
        let mut ulc = UlcMulti::new(UlcMultiConfig::uniform(clients, client_cap, server_cap));
        for &(c, b) in &refs {
            let client = ClientId::new(c % clients as u32);
            let out = ulc.access(client, BlockId::new(b));
            prop_assert!(out.hit_level.map_or(true, |l| l < 2));
            prop_assert_eq!(out.demotions.len(), 1);
        }
        ulc.check_invariants();
        prop_assert!(ulc.server_len() <= server_cap);
        let total_owned: usize = ulc.server_allocation().iter().sum();
        prop_assert_eq!(total_owned, ulc.server_len());
    }

    /// With one client and a footprint that fits the aggregate (so the
    /// server never replaces anything), the multi-client protocol is
    /// *exactly* the two-level single-client protocol. Once replacements
    /// start, the two diverge by design: gLRU orders blocks by
    /// cache-request time while the client's LRU₂ orders by reference
    /// recency — the approximation §3.2.2 accepts for shared servers
    /// ("equivalent to shrinking the cache size … so a yardstick
    /// adjustment can occur").
    #[test]
    fn multi_with_one_client_tracks_single_until_replacement(
        client_cap in 1usize..5,
        server_cap in 1usize..6,
        seed in vec(0u64..64, 1..200),
    ) {
        use ulc_core::{UlcConfig, UlcSingle};
        // Restrict the universe so nothing ever falls out of the server.
        let universe = (client_cap + server_cap) as u64;
        let blocks: Vec<u64> = seed.into_iter().map(|b| b % universe).collect();
        let mut single = UlcSingle::new(UlcConfig::new(vec![client_cap, server_cap]));
        let mut multi = UlcMulti::new(UlcMultiConfig::uniform(1, client_cap, server_cap));
        for &b in &blocks {
            let s = single.access(ClientId::SINGLE, BlockId::new(b));
            let m = multi.access(ClientId::SINGLE, BlockId::new(b));
            prop_assert_eq!(s.hit_level, m.hit_level, "block {}", b);
            prop_assert_eq!(s.demotions, m.demotions, "block {}", b);
        }
        multi.check_invariants();
    }
}
