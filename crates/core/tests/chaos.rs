//! Chaos suite: randomized fault scenarios against the DEMOTE hierarchy
//! and the multi-client ULC protocol.
//!
//! Every scenario is generated from proptest's own deterministic stream
//! and handed to a [`FaultyPlane`] seeded from it, so failures shrink and
//! replay exactly. The properties are the *recoverable* invariants of
//! DESIGN.md §5d:
//!
//! 1. capacity bounds hold at every instant, no matter what the plane
//!    does (checked by `check_recoverable_invariants`, and continuously
//!    under `--features debug_invariants`);
//! 2. once traffic settles, a **single** reconciliation round restores
//!    the full invariant set — exclusive caching, single residency,
//!    status-table agreement;
//! 3. every detected residency violation is repaired;
//! 4. the simulation and the settle loop always terminate.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_core::{UlcMulti, UlcMultiConfig};
use ulc_hierarchy::plane::{FaultScenario, FaultyPlane};
use ulc_hierarchy::{simulate, MultiLevelPolicy, UniLru};
use ulc_trace::{synthetic, BlockId, ClientId, Trace};

mod common;
use common::assert_fully_recovered;

/// A randomized fault scenario: rates are kept below 40% so runs retain
/// enough successful traffic to exercise the recovery paths (a 100%-drop
/// plane trivially satisfies the invariants by doing nothing).
fn scenario() -> impl Strategy<Value = FaultScenario> {
    (
        (any::<u64>(), 0u32..400, 0u32..200),
        (0u32..300, 1u64..8, (0u64..2, 100u64..2_000, 0usize..2)),
    )
        .prop_map(
            |((seed, drop_m, dup_m), (delay_m, max_delay, (crashed, at, level)))| {
                let mut s = FaultScenario::zero(seed)
                    .with_drop(drop_m as f64 / 1000.0)
                    .with_duplicate(dup_m as f64 / 1000.0)
                    .with_delay(delay_m as f64 / 1000.0, max_delay);
                if crashed == 1 {
                    s = s.with_crash(at, level);
                }
                s
            },
        )
}

fn small_trace() -> impl Strategy<Value = Trace> {
    vec(0u64..600, 200..1_200).prop_map(|b| Trace::from_blocks(b.into_iter().map(BlockId::new)))
}

fn multi_refs() -> impl Strategy<Value = Vec<(u32, u64)>> {
    vec((0u32..3, 0u64..400), 200..1_200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DEMOTE under chaos: bounds always hold; settle + one reconcile
    /// round restores exclusivity.
    #[test]
    fn uni_lru_recovers_from_any_scenario(
        sc in scenario(),
        trace in small_trace(),
    ) {
        let mut p = UniLru::single_client(vec![40, 60, 80])
            .with_plane(FaultyPlane::new(sc));
        let stats = simulate(&mut p, &trace, 0);
        prop_assert_eq!(stats.references as usize, trace.len());
        p.check_recoverable_invariants();
        assert_fully_recovered(&mut p);
    }

    /// Multi-client ULC under chaos: the same recovery contract, plus the
    /// server/owner bookkeeping staying exact throughout.
    #[test]
    fn ulc_multi_recovers_from_any_scenario(
        sc in scenario(),
        refs in multi_refs(),
    ) {
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(3, 20, 60))
            .with_plane(FaultyPlane::new(sc));
        for &(c, b) in &refs {
            let _ = p.access(ClientId::new(c), BlockId::new(b));
        }
        p.check_recoverable_invariants();
        assert_fully_recovered(&mut p);
    }

    /// The scenario DSL round-trips: parsing the rendered parameters of a
    /// generated scenario yields the same fault behaviour knobs.
    #[test]
    fn scenario_dsl_round_trips(sc in scenario()) {
        let base = sc.faults_for(0);
        let mut dsl = format!(
            "seed={},drop={},dup={},delay={},max_delay={}",
            sc.seed, base.drop, base.duplicate, base.delay, base.max_delay
        );
        for c in &sc.crashes {
            dsl.push_str(&format!(",crash={}@{}", c.at, c.level));
        }
        let parsed: FaultScenario = dsl.parse().expect("rendered DSL parses");
        prop_assert_eq!(parsed.seed, sc.seed);
        prop_assert_eq!(parsed.faults_for(0).drop, base.drop);
        prop_assert_eq!(parsed.faults_for(0).max_delay, base.max_delay);
        prop_assert_eq!(parsed.crashes.len(), sc.crashes.len());
    }
}

/// The seeded chaos scenario tier-1 runs explicitly (`scripts/tier1.sh`):
/// a fixed mixed-fault scenario — written in the DSL so the parser is on
/// the gate too — with a mid-run server crash, against both protocol
/// families, with pinned recovery behaviour.
#[test]
fn seeded_chaos_scenario_recovers() {
    let sc: FaultScenario = "seed=1789,drop=0.05,dup=0.02,delay=0.05,max_delay=6,crash=15000@1"
        .parse()
        .expect("tier-1 scenario parses");

    let t = synthetic::zipf_small(30_000);
    let mut uni =
        UniLru::single_client(vec![300, 300, 300]).with_plane(FaultyPlane::new(sc.clone()));
    let stats = simulate(&mut uni, &t, 0);
    assert_eq!(stats.faults.crashes, 1);
    assert!(stats.faults.messages_dropped > 0);
    assert!(stats.total_hit_rate() > 0.0, "the hierarchy keeps serving");
    assert_fully_recovered(&mut uni);

    let tm = synthetic::httpd_multi(30_000);
    let mut ulc =
        UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048)).with_plane(FaultyPlane::new(sc));
    let stats = simulate(&mut ulc, &tm, 0);
    assert_eq!(stats.faults.crashes, 1);
    assert!(
        stats.faults.reconciliation_rounds >= 7,
        "every client rebuilds its status table after the server crash"
    );
    assert_fully_recovered(&mut ulc);
}
