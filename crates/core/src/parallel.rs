//! Deterministic sharded multi-client replay for [`UlcMulti`]
//! (DESIGN.md §5i).
//!
//! The serial driver [`ulc_hierarchy::simulate`] replays the global
//! reference stream one access at a time, even though most accesses in a
//! multi-client workload are **private L1 hits**: the block is statically
//! exclusive to one client (no other client ever references it) and
//! currently resident in that client's private cache, so the access never
//! touches the shared server, the message plane's queues, or any other
//! client's state. Those accesses commute with everything between them
//! and the surrounding shared-L2 interaction points, which is exactly the
//! parallelism this module exploits:
//!
//! 1. A [`ReplayPlan`] classifies every reference as statically exclusive
//!    or shared (one linear pass over the trace, done once per trace).
//! 2. The replay proceeds in fixed-length **epochs**. For each epoch the
//!    plan extracts one *run* per client: the client's longest prefix of
//!    statically-exclusive references in the epoch.
//! 3. **Parallel phase** — worker threads (clients are dealt to shards
//!    round-robin) advance each client's `uniLRUstack` through the
//!    longest prefix of its run that hits the private cache
//!    ([`advance_client_run`]), stopping at the first reference that
//!    would need the server. Only client-local state moves.
//! 4. **Commit phase** — the main thread walks the epoch's global trace
//!    order once ([`commit_epoch`]). Positions the workers consumed are
//!    committed as private hits (delivering any eviction notices queued
//!    for that client at exactly that position, preserving the message
//!    plane's accounting); every other position runs the full serial
//!    protocol step. Server-side work therefore happens in the exact
//!    global-trace order the serial driver would use.
//!
//! ## Why this is bit-identical
//!
//! A consumed access touches a block that is (a) statically exclusive to
//! its client and (b) resident in the client's private cache. By the
//! exclusive-caching invariant the block is not cached at the server, so
//! the serial protocol step for it is *server-silent*: no directive is
//! sent, no `gLRU` state changes, and the stack access is a pure L1
//! touch. The only reordering the scheme introduces is that a client's
//! pending eviction-notice deliveries may land *after* (instead of
//! between) its consumed touches — and notice deliveries only evict
//! *server-level* entries from the status table while a consumed touch
//! only reorders *private-level* entries, so the two operations commute
//! on the `uniLRUstack` and neither consumes recency stamps out of
//! order. The differential suite (`tests/parallel_replay.rs`) asserts
//! the resulting [`SimStats`] and folded metrics are bit-identical to
//! the serial driver at 1, 2 and 8 shards; `scripts/tier1.sh` gates on a
//! seeded 2-shard run of the same oracle.
//!
//! Faulty planes can crash levels, lose requests and set status tables
//! dirty — none of which commutes. [`simulate_sharded`] therefore falls
//! back to the serial driver whenever [`MessagePlane::lossy`] reports
//! the plane can misbehave, so fault-injection runs stay exact.

use crate::scratch::AccessScratch;
use crate::stack::{Placement, UniLruStack};
use crate::UlcMulti;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;
use ulc_hierarchy::plane::{Direction, MessagePlane};
use ulc_hierarchy::{simulate, AccessOutcome, MultiLevelPolicy, SimStats, PREFETCH_DISTANCE};
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::epoch::{EpochRuns, ReplayPlan, RunRef, DEFAULT_EPOCH_LEN};
use ulc_trace::Trace;

/// Ring capacity for each worker-shard recorder when observability is
/// on. Shard recorders exist to keep the *metrics* registry exact (it is
/// folded into the policy's recorder after the replay); the event ring
/// is a small sampling window, so a modest power of two suffices.
const SHARD_OBS_CAPACITY: usize = 1 << 10;

/// Per-client state lent to a worker thread for the parallel phase of an
/// epoch.
struct Cell {
    /// The client's real `uniLRUstack` during the parallel phase; a
    /// throwaway placeholder the rest of the time (the real stack is
    /// swapped in and out around the phase).
    stack: UniLruStack,
    scratch: AccessScratch,
    /// Shard-local recorder: consumed accesses record their hooks here,
    /// and the registries are merged into the policy's recorder at fold
    /// time. Disabled (no-op) unless the policy's recorder is enabled.
    obs: ObsHandle,
    /// The client's run for the current epoch (block + global position).
    run: Vec<RunRef>,
    /// How many leading references of `run` the worker consumed.
    done: usize,
}

/// State shared between the main thread and the persistent workers.
struct Shared {
    cells: Vec<Mutex<Cell>>,
    /// Two waits per epoch: one releases the workers into the parallel
    /// phase, one ends it. All parties (shards + the main thread) meet.
    barrier: Barrier,
    exit: AtomicBool,
    shards: usize,
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        shared.barrier.wait();
        if shared.exit.load(Ordering::Acquire) {
            return;
        }
        for (c, cell) in shared.cells.iter().enumerate() {
            if c % shared.shards == me {
                let mut cell = cell.lock().expect("replay cell poisoned");
                advance_client_run(&mut cell);
            }
        }
        shared.barrier.wait();
    }
}

/// Advances one client's `uniLRUstack` through the longest prefix of its
/// epoch run that hits the private cache, recording the serial access
/// path's observability hooks for each consumed reference.
///
/// Stops at the first reference not resident at level 0: from there on
/// the access needs the shared server, so it is left for the serial
/// commit walk.
fn advance_client_run(cell: &mut Cell) {
    cell.done = 0;
    for i in 0..cell.run.len() {
        let RunRef { block, pos } = cell.run[i];
        if cell.stack.cached_level(block) != Some(0) {
            break;
        }
        // The serial hook order for a private hit: begin, the demand
        // RPC, the hit, the (level-0) retrieve. The tick is re-stamped
        // to the reference's global position first, so windowed
        // timelines land each access in the window the serial driver
        // would use (`begin_access` advances the stamp to `pos + 1`,
        // the 1-based serial tick).
        cell.obs.set_tick(pos);
        cell.obs.begin_access();
        cell.obs.on_rpc(1);
        cell.obs.on_hit(0, block.raw());
        let res = cell.stack.access_into(block, &mut cell.scratch);
        debug_assert_eq!(
            res.placed,
            Placement::Level(0),
            "a resident private block must stay resident on a touch"
        );
        cell.obs.on_retrieve(0, block.raw());
        cell.done += 1;
    }
}

/// Commits one epoch in global-trace order: positions the workers
/// consumed become pooled private-hit outcomes (plus any eviction-notice
/// deliveries due at that position); every other position runs the full
/// serial protocol step, with the driver's prefetch pipeline ahead of
/// the cursor.
#[allow(clippy::too_many_arguments)]
fn commit_epoch<P: MessagePlane>(
    policy: &mut UlcMulti<P>,
    trace: &Trace,
    start: usize,
    end: usize,
    warmup: usize,
    done: &[usize],
    seen: &mut [usize],
    full_out: &mut AccessOutcome,
    hit_out: &mut AccessOutcome,
    stats: &mut SimStats,
) {
    let records = trace.records();
    for idx in start..end {
        let r = &records[idx];
        let c = r.client.as_usize();
        if seen[c] < done[c] {
            // Consumed by the parallel phase. The stack touch already
            // happened; what remains is the serial step's plane-visible
            // residue: eviction notices ride the response of the
            // client's next exchange, so any queued for this client
            // land here, at exactly the position the serial driver
            // would deliver them. (An empty delivery bumps no
            // accounting on any plane, so it is skipped outright.)
            seen[c] += 1;
            // Keep the policy recorder's tick (and timeline window)
            // aligned with the serial axis even though this access was
            // recorded shard-side: any tallies arriving between here
            // and the next full access (e.g. post-run plane-fault
            // folding) must land in the same window as under the
            // serial driver.
            policy.obs_mut().set_tick(idx as u64 + 1);
            if policy.plane().queued_len(c, Direction::Up) > 0 {
                policy.deliver_notices(c);
            }
            if idx >= warmup {
                stats.record(hit_out);
            }
        } else {
            if let Some(ahead) = records.get(idx + PREFETCH_DISTANCE) {
                policy.prefetch(ahead.client, ahead.block);
            }
            // Re-stamp before the access: consumed positions advanced
            // shard-side, so the policy recorder's own tick lags the
            // global axis. `begin_access` inside `access_into` moves
            // the stamp to `idx + 1`, the serial 1-based tick.
            policy.obs_mut().set_tick(idx as u64);
            policy.access_into(r.client, r.block, full_out);
            if idx >= warmup {
                stats.record(full_out);
            }
        }
    }
}

/// The bulk-synchronous sharded replay executor.
///
/// Holds the trace's [`ReplayPlan`], the pooled epoch buffers and a set
/// of persistent worker threads parked on a barrier, so consecutive
/// [`ShardedReplayer::replay_range`] calls reuse everything and the
/// steady-state epoch loop performs no heap allocation once capacities
/// settle (the §5f discipline). Workers shut down when the replayer is
/// dropped.
///
/// # Examples
///
/// ```
/// use ulc_core::parallel::simulate_sharded;
/// use ulc_core::{UlcMulti, UlcMultiConfig};
/// use ulc_hierarchy::simulate;
/// use ulc_trace::multi::interleave;
/// use ulc_trace::patterns::{LoopingPattern, Pattern};
///
/// let patterns: Vec<Box<dyn Pattern>> = vec![
///     Box::new(LoopingPattern::new(200)),
///     Box::new(LoopingPattern::new(200).with_base(10_000)),
/// ];
/// let trace = interleave(patterns, None, 12_000, 7);
/// let mut serial = UlcMulti::new(UlcMultiConfig::uniform(2, 64, 256));
/// let mut sharded = UlcMulti::new(UlcMultiConfig::uniform(2, 64, 256));
/// let expect = simulate(&mut serial, &trace, trace.warmup_len());
/// let got = simulate_sharded(&mut sharded, &trace, trace.warmup_len(), 2);
/// assert_eq!(expect, got);
/// ```
pub struct ShardedReplayer {
    plan: ReplayPlan,
    runs: EpochRuns,
    epoch_len: usize,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    seen: Vec<usize>,
    done: Vec<usize>,
    full_out: AccessOutcome,
    hit_out: AccessOutcome,
}

impl std::fmt::Debug for ShardedReplayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedReplayer")
            .field("shards", &self.shared.shards)
            .field("epoch_len", &self.epoch_len)
            .field("clients", &self.shared.cells.len())
            .field("exclusive_fraction", &self.plan.exclusive_fraction())
            .finish()
    }
}

impl ShardedReplayer {
    /// Builds the replay plan for `trace` and spawns `shards` persistent
    /// worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(trace: &Trace, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        let plan = ReplayPlan::build(trace);
        let n = plan.num_clients() as usize;
        let cells = (0..n)
            .map(|_| {
                Mutex::new(Cell {
                    stack: UniLruStack::new(vec![1, 1]),
                    scratch: AccessScratch::new(),
                    obs: ObsHandle::default(),
                    run: Vec::new(),
                    done: 0,
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            cells,
            barrier: Barrier::new(shards + 1),
            exit: AtomicBool::new(false),
            shards,
        });
        let workers = (0..shards)
            .map(|me| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh, me))
            })
            .collect();
        let mut replayer = ShardedReplayer {
            plan,
            runs: EpochRuns::new(n),
            epoch_len: DEFAULT_EPOCH_LEN,
            shared,
            workers,
            seen: vec![0; n],
            done: vec![0; n],
            full_out: AccessOutcome::miss(1),
            hit_out: AccessOutcome::hit(0, 1),
        };
        replayer.reserve_run_buffers();
        replayer
    }

    /// Reserves every run buffer (both the fill-side set and the set
    /// currently resident in the cells — epoch swaps alternate them) to
    /// the epoch length, the longest run one epoch can produce. A late
    /// epoch dominated by one client can otherwise grow a buffer
    /// mid-measurement, which the §5f steady-phase gate forbids.
    fn reserve_run_buffers(&mut self) {
        for c in 0..self.shared.cells.len() {
            self.runs.run_mut(c).reserve(self.epoch_len);
            let mut cell = self.shared.cells[c].lock().expect("replay cell poisoned");
            cell.run.reserve(self.epoch_len);
        }
    }

    /// Overrides the epoch length (mainly for tests: short epochs stress
    /// the barrier and run-boundary logic). Epoch boundaries are
    /// semantics-free, so any positive length yields identical results.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn with_epoch_len(mut self, len: usize) -> Self {
        assert!(len > 0, "epoch length must be positive");
        self.epoch_len = len;
        self.reserve_run_buffers();
        self
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// Fraction of trace references the plan classified statically
    /// exclusive — the upper bound on the parallelisable share.
    pub fn exclusive_fraction(&self) -> f64 {
        self.plan.exclusive_fraction()
    }

    /// Replays all of `trace` through `policy`, warming with the first
    /// `warmup` references, and folds the shard recorders back into the
    /// policy's recorder. Equivalent to [`ulc_hierarchy::simulate`],
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` exceeds the trace length, if the plan was
    /// built from a different trace, or if the policy has fewer clients
    /// than the trace references.
    pub fn replay<P: MessagePlane>(
        &mut self,
        policy: &mut UlcMulti<P>,
        trace: &Trace,
        warmup: usize,
    ) -> SimStats {
        assert!(warmup <= trace.len(), "warm-up longer than the trace");
        let mut stats = SimStats::new(policy.num_levels());
        self.replay_range(policy, trace, 0, trace.len(), warmup, &mut stats);
        self.fold_obs(policy);
        stats.faults = policy.fault_summary();
        stats
    }

    /// Replays the half-open trace range `[start, end)`, folding
    /// measured outcomes (positions `>= warmup`) into `stats`. Epoch
    /// boundaries are semantics-free, so consecutive ranges compose to
    /// exactly one full replay — the throughput harness uses this to
    /// split a run into a warm phase and an allocation-gated steady
    /// phase. Callers composing ranges by hand should call
    /// [`ShardedReplayer::fold_obs`] once at the end.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid for the trace or the plan does not
    /// match the trace.
    pub fn replay_range<P: MessagePlane>(
        &mut self,
        policy: &mut UlcMulti<P>,
        trace: &Trace,
        start: usize,
        end: usize,
        warmup: usize,
        stats: &mut SimStats,
    ) {
        assert!(start <= end && end <= trace.len(), "range out of bounds");
        assert_eq!(
            self.plan.len(),
            trace.len(),
            "replay plan was built from a different trace"
        );
        assert!(
            policy.num_clients() >= self.shared.cells.len(),
            "policy has fewer clients than the trace references"
        );
        self.sync_obs(policy);
        let mut s = start;
        while s < end {
            let e = (s + self.epoch_len).min(end);
            self.run_epoch(policy, trace, s, e, warmup, stats);
            s = e;
        }
    }

    /// Finishes every shard recorder and folds it into the policy's
    /// recorder ([`ulc_obs::RingRecorder::absorb`]: metrics registry
    /// plus window-aligned timeline), then resets the shard recorders.
    /// A no-op when observability is off.
    pub fn fold_obs<P: MessagePlane>(&mut self, policy: &mut UlcMulti<P>) {
        for cell in &self.shared.cells {
            let mut cell = cell.lock().expect("replay cell poisoned");
            if !cell.obs.is_enabled() {
                continue;
            }
            cell.obs.finish();
            if let (Some(shard), Some(rec)) =
                (cell.obs.recorder(), policy.obs_mut().recorder_mut())
            {
                rec.absorb(shard);
            }
            cell.obs = ObsHandle::default();
        }
    }

    /// Enables shard recorders iff the policy's recorder is enabled, so
    /// consumed accesses record the same hooks the serial path would —
    /// mirroring the policy recorder's span cost model and timeline
    /// geometry so the fold is bit-identical to the serial recorder.
    fn sync_obs<P: MessagePlane>(&mut self, policy: &UlcMulti<P>) {
        if !policy.obs().is_enabled() {
            return;
        }
        let levels = policy.num_levels();
        let cost_model = policy.obs().recorder().map(|r| r.cost_model());
        let timeline_geometry = policy
            .obs()
            .recorder()
            .and_then(|r| r.timeline())
            .map(|t| (t.window_len(), t.capacity()));
        for cell in &self.shared.cells {
            let mut cell = cell.lock().expect("replay cell poisoned");
            if !cell.obs.is_enabled() {
                cell.obs.enable(levels, SHARD_OBS_CAPACITY);
            }
            if let Some(rec) = cell.obs.recorder_mut() {
                if let Some(m) = cost_model {
                    rec.set_cost_model(m);
                }
                if let Some((window_len, capacity)) = timeline_geometry {
                    if rec.timeline().is_none() {
                        rec.enable_timeline(window_len, capacity);
                    }
                }
            }
        }
    }

    fn run_epoch<P: MessagePlane>(
        &mut self,
        policy: &mut UlcMulti<P>,
        trace: &Trace,
        start: usize,
        end: usize,
        warmup: usize,
        stats: &mut SimStats,
    ) {
        self.plan.fill_runs(trace, start, end, &mut self.runs);
        let shared = Arc::clone(&self.shared);
        // Lend each client's stack (and its run) to the worker cells.
        for (c, cell) in shared.cells.iter().enumerate() {
            let mut cell = cell.lock().expect("replay cell poisoned");
            std::mem::swap(&mut cell.stack, policy.client_stack_mut(c));
            std::mem::swap(&mut cell.run, self.runs.run_mut(c));
            cell.done = 0;
        }
        shared.barrier.wait(); // release the workers
        shared.barrier.wait(); // parallel phase over
        for (c, cell) in shared.cells.iter().enumerate() {
            let mut cell = cell.lock().expect("replay cell poisoned");
            std::mem::swap(&mut cell.stack, policy.client_stack_mut(c));
            std::mem::swap(&mut cell.run, self.runs.run_mut(c));
            self.done[c] = cell.done;
            self.seen[c] = 0;
        }
        commit_epoch(
            policy,
            trace,
            start,
            end,
            warmup,
            &self.done,
            &mut self.seen,
            &mut self.full_out,
            &mut self.hit_out,
            stats,
        );
    }
}

impl Drop for ShardedReplayer {
    fn drop(&mut self) {
        self.shared.exit.store(true, Ordering::Release);
        self.shared.barrier.wait();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Replays `trace` through `policy` with `shards` worker threads,
/// bit-identical to [`ulc_hierarchy::simulate`].
///
/// Falls back to the serial driver when `shards <= 1` or the policy's
/// message plane is lossy (faults do not commute with reordered
/// private hits; see the module docs).
///
/// # Panics
///
/// Panics if `warmup` exceeds the trace length or the policy has fewer
/// clients than the trace references.
pub fn simulate_sharded<P: MessagePlane>(
    policy: &mut UlcMulti<P>,
    trace: &Trace,
    warmup: usize,
    shards: usize,
) -> SimStats {
    if shards <= 1 || policy.plane().lossy() {
        return simulate(policy, trace, warmup);
    }
    let mut replayer = ShardedReplayer::new(trace, shards);
    replayer.replay(policy, trace, warmup)
}
