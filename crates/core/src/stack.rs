//! The `uniLRUstack` — ULC's central data structure (§3.2, Figure 4).
//!
//! One unified LRU stack holds metadata for every recently referenced
//! block, cached or not. For each cache level `Lᵢ` a **yardstick** `Yᵢ`
//! points at the block cached at that level with maximal recency (the
//! deepest `Lᵢ` entry in the stack); the stretch of stack between two
//! yardsticks is that level's recency region. When a block is referenced,
//! the region its *last* access fell in — its LLD, found by comparing its
//! stack position against the yardsticks — decides which level it will be
//! cached at, and the blocks of one level, ordered by stack recency, form
//! that level's local replacement stack (`LRUᵢ`, whose bottom block is the
//! yardstick and the level's victim).
//!
//! ## Mechanics
//!
//! Every entry carries a monotonically increasing `stamp` assigned when it
//! is (re)inserted at the top, so the stack is always ordered by stamp and
//! "is A deeper than B" is a single comparison — this is what makes every
//! operation O(1) amortised, as §3.2 requires. The recency status of an
//! entry is *derived*: the smallest level `j` whose yardstick stamp does
//! not exceed the entry's stamp. The paper's two stack operations map to:
//!
//! * **YardStickAdjustment** — when a yardstick block leaves its position
//!   (re-accessed or demoted), the yardstick walks toward the stack top to
//!   the next block of its level.
//! * **DemotionSearching** — the demotion cascade: the victim of level `i`
//!   is always `Yᵢ`; demoting it into `i+1` may overflow that level and
//!   demote its yardstick in turn, until a level with spare room absorbs
//!   the chain or the bottom level evicts to `L_out`.
//!
//! Entries below the last yardstick that are not cached anywhere are
//! trimmed (§3.2: the stack size is bounded by `Yₙ`; §5: cold entries can
//! be trimmed to bound metadata).

use crate::scratch::AccessScratch;
use ulc_cache::{LinkedSlab, NodeHandle};
use ulc_trace::{BlockId, BlockMap, TableMode};

/// Level tag for "not cached at any level".
const OUT: u8 = u8::MAX;

/// Where a block is (or will be) held.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Cached at the given level (0-indexed: 0 is the client cache).
    Level(usize),
    /// Not cached at any level.
    Uncached,
}

impl Placement {
    /// The level index, if cached.
    pub fn level(self) -> Option<usize> {
        match self {
            Placement::Level(l) => Some(l),
            Placement::Uncached => None,
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    block: BlockId,
    level: u8,
    stamp: u64,
}

/// The fixed-size part of an access result: where the block was found
/// and where it was placed. [`UniLruStack::access_into`] returns this by
/// value; the variable-length side effects (demotions, evictions) land in
/// the caller's [`AccessScratch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackAccess {
    /// Where the block was found: its retrieval source. `Uncached` means
    /// the block was read from disk (either absent from the stack or
    /// resident only as history).
    pub found: Placement,
    /// Whether the block had stack history (metadata present).
    pub was_in_stack: bool,
    /// Where the block was placed by this access.
    pub placed: Placement,
}

/// What one [`UniLruStack::access`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackOutcome {
    /// Where the block was found: its retrieval source. `Uncached` means
    /// the block was read from disk (either absent from the stack or
    /// resident only as history).
    pub found: Placement,
    /// Whether the block had stack history (metadata present).
    pub was_in_stack: bool,
    /// Where the block was placed by this access.
    pub placed: Placement,
    /// Demotion transfers per boundary caused by this access
    /// (`levels - 1` entries).
    pub demotions: Vec<u32>,
    /// The demoted blocks: `(block, from_level, settled_level)`. A block
    /// crossing several boundaries appears once, with its final level.
    pub demoted: Vec<(BlockId, usize, usize)>,
    /// Blocks evicted from the bottom level to `L_out` by this access.
    pub evicted: Vec<BlockId>,
}

/// The unified LRU stack with yardsticks.
#[derive(Debug)]
pub struct UniLruStack {
    list: LinkedSlab<Entry>,
    /// Block → node location. Interned dense table by default; the
    /// map-backed reference representation via
    /// [`UniLruStack::new_with_mode`].
    map: BlockMap<NodeHandle>,
    yardsticks: Vec<Option<NodeHandle>>,
    counts: Vec<usize>,
    capacities: Vec<usize>,
    /// A level may be declared full by the environment even when this
    /// client's own count is below capacity (shared-server case).
    external_full: Vec<bool>,
    next_stamp: u64,
    /// Optional bound on total stack entries (§5 metadata trimming).
    stack_limit: Option<usize>,
    #[cfg(feature = "debug_invariants")]
    tick: u64,
}

impl UniLruStack {
    /// Creates a stack for a hierarchy whose level `i` holds
    /// `capacities[i]` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, has more than 250 levels, or any
    /// capacity is zero.
    pub fn new(capacities: Vec<usize>) -> Self {
        UniLruStack::new_with_mode(capacities, TableMode::Dense)
    }

    /// Creates a stack with an explicit node-table representation:
    /// [`TableMode::Dense`] (interned flat table, the default engine) or
    /// [`TableMode::Hashed`] (the retained map-backed reference path used
    /// by the differential suite and the throughput benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty, has more than 250 levels, or any
    /// capacity is zero.
    pub fn new_with_mode(capacities: Vec<usize>, mode: TableMode) -> Self {
        assert!(!capacities.is_empty(), "at least one level is required");
        assert!(capacities.len() < OUT as usize, "too many levels");
        assert!(
            capacities.iter().all(|&c| c > 0),
            "level capacities must be positive"
        );
        let n = capacities.len();
        UniLruStack {
            list: LinkedSlab::new(),
            map: BlockMap::new(mode),
            yardsticks: vec![None; n],
            counts: vec![0; n],
            capacities,
            external_full: vec![false; n],
            next_stamp: 0,
            stack_limit: None,
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }

    /// Pre-sizes the node slab and locator table for `blocks` resident
    /// entries (cached blocks plus uncached history). The stack still
    /// grows past the reservation if a run's history exceeds it — this
    /// only moves the allocations out of the measured steady phase
    /// (DESIGN.md §5f), it never changes behaviour.
    pub fn reserve_blocks(&mut self, blocks: usize) {
        self.list.reserve(blocks);
        self.map.reserve(blocks);
    }

    /// Hints the CPU to pull `block`'s locator-table row into cache; see
    /// [`BlockMap::prefetch`]. Semantics-free, so the batched access
    /// pipeline may issue it for any upcoming reference.
    #[inline]
    pub fn prefetch(&self, block: BlockId) {
        self.map.prefetch(block);
    }

    /// Bounds the number of stack entries; uncached history beyond the
    /// bound is trimmed from the bottom.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is smaller than the aggregate cache capacity
    /// (cached entries can never be trimmed).
    pub fn set_stack_limit(&mut self, limit: Option<usize>) {
        if let Some(l) = limit {
            let aggregate: usize = self.capacities.iter().sum();
            assert!(
                l >= aggregate,
                "stack limit must cover all cached blocks ({aggregate})"
            );
        }
        self.stack_limit = limit;
        self.trim();
    }

    /// Declares level `level` full (or not) regardless of this stack's own
    /// count — used by the multi-client protocol, where the server is
    /// shared and may be filled by other clients.
    pub fn set_external_full(&mut self, level: usize, full: bool) {
        self.external_full[level] = full;
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of `level`.
    pub fn capacity(&self, level: usize) -> usize {
        self.capacities[level]
    }

    /// Number of blocks currently held at `level`.
    pub fn level_len(&self, level: usize) -> usize {
        self.counts[level]
    }

    /// Total entries in the stack (cached + history).
    pub fn stack_len(&self) -> usize {
        self.list.len()
    }

    /// The level a block is cached at, if any.
    pub fn cached_level(&self, block: BlockId) -> Option<usize> {
        let &h = self.map.get(block)?;
        let e = self.list.get(h).expect("mapped handles are live");
        if e.level == OUT {
            None
        } else {
            Some(e.level as usize)
        }
    }

    /// Whether a block has metadata in the stack (cached or history).
    pub fn contains(&self, block: BlockId) -> bool {
        self.map.contains_key(block)
    }

    /// The yardstick block of `level` — the level's replacement victim.
    pub fn yardstick(&self, level: usize) -> Option<BlockId> {
        self.yardsticks[level].map(|h| self.list.get(h).expect("yardsticks are live").block)
    }

    /// All blocks cached at `level`, from most to least recent. O(stack).
    pub fn level_blocks(&self, level: usize) -> Vec<BlockId> {
        self.list
            .iter()
            .filter(|(_, e)| e.level == level as u8)
            .map(|(_, e)| e.block)
            .collect()
    }

    fn entry(&self, h: NodeHandle) -> &Entry {
        self.list.get(h).expect("internal handles are live")
    }

    fn stamp_of(&self, h: NodeHandle) -> u64 {
        self.entry(h).stamp
    }

    fn is_full(&self, level: usize) -> bool {
        self.external_full[level] || self.counts[level] >= self.capacities[level]
    }

    /// The recency region of an in-stack entry: the smallest level whose
    /// yardstick is at least as deep as the entry (§3.2.1's recency
    /// status), falling back to the shallowest non-full level, else
    /// `Uncached`.
    fn region_of(&self, h: NodeHandle) -> Placement {
        let stamp = self.stamp_of(h);
        for (j, y) in self.yardsticks.iter().enumerate() {
            if let Some(yh) = y {
                if stamp >= self.stamp_of(*yh) {
                    return Placement::Level(j);
                }
            }
        }
        self.first_open_level()
    }

    /// The region of a block with no stack history (`L_out` arrival).
    fn region_of_new(&self) -> Placement {
        self.first_open_level()
    }

    fn first_open_level(&self) -> Placement {
        match (0..self.num_levels()).find(|&j| !self.is_full(j)) {
            Some(j) => Placement::Level(j),
            None => Placement::Uncached,
        }
    }

    /// YardStickAdjustment: the yardstick block of `level` is about to
    /// leave its position (or its level); walk toward the stack top to the
    /// next block of the level. With no such block: keep the current node
    /// if `keep` (it stays in the level), else clear the yardstick.
    fn adjust_yardstick_up(&mut self, level: usize, from: NodeHandle, keep: bool) {
        let mut cur = self.list.prev(from);
        while let Some(c) = cur {
            if self.entry(c).level == level as u8 {
                self.yardsticks[level] = Some(c);
                return;
            }
            cur = self.list.prev(c);
        }
        self.yardsticks[level] = if keep { Some(from) } else { None };
    }

    /// A block (at `h`) has just been given `level`; make it the yardstick
    /// if it is the level's deepest block.
    fn maybe_take_yardstick(&mut self, level: usize, h: NodeHandle) {
        match self.yardsticks[level] {
            None => self.yardsticks[level] = Some(h),
            Some(y) => {
                if self.stamp_of(h) < self.stamp_of(y) {
                    self.yardsticks[level] = Some(h);
                }
            }
        }
    }

    /// The demotion cascade (DemotionSearching): starting at `level`,
    /// demote each over-full level's yardstick block into the next level,
    /// until a level absorbs the chain or the bottom level evicts.
    ///
    /// Demotion *transfers* are charged per boundary a block actually
    /// crosses and settles beyond. A demoted block that immediately
    /// becomes the next level's victim falls through without a transfer
    /// there, and a block that falls all the way out is simply discarded —
    /// the directing client knows the whole chain in advance (§3.2.1), so
    /// it never ships a block that has nowhere to stay.
    fn cascade(&mut self, start: usize, scratch: &mut AccessScratch) {
        let n = self.num_levels();
        // `scratch.moved` holds (handle, level it was first demoted from);
        // cascades are at most `n` long, so a linear dedup scan is fine.
        scratch.moved.clear();
        let mut lvl = start;
        while lvl < n && self.counts[lvl] > self.capacities[lvl] {
            let victim = self.yardsticks[lvl].expect("over-full level has a yardstick");
            self.adjust_yardstick_up(lvl, victim, false);
            self.counts[lvl] -= 1;
            if !scratch.moved.iter().any(|&(h, _)| h == victim) {
                scratch.moved.push((victim, lvl));
            }
            if lvl + 1 < n {
                self.list
                    .get_mut(victim)
                    .expect("victim handle is live")
                    .level = (lvl + 1) as u8;
                self.counts[lvl + 1] += 1;
                self.maybe_take_yardstick(lvl + 1, victim);
                lvl += 1;
            } else {
                // Falls out of the bottom level: becomes L_out history.
                self.list
                    .get_mut(victim)
                    .expect("victim handle is live")
                    .level = OUT;
                break;
            }
        }
        for k in 0..scratch.moved.len() {
            let (h, from) = scratch.moved[k];
            let e = self.entry(h);
            let (block, level) = (e.block, e.level);
            if level == OUT {
                scratch.evicted.push(block);
            } else {
                for m in from..level as usize {
                    scratch.demotions[m] += 1;
                }
                scratch.demoted.push((block, from, level as usize));
            }
        }
    }

    /// Removes uncached history entries from the stack bottom: everything
    /// below the last yardstick, plus anything beyond the stack limit.
    fn trim(&mut self) {
        let last = self.num_levels() - 1;
        while let Some(back) = self.list.back() {
            let e = self.entry(back);
            if e.level != OUT {
                break;
            }
            let below_last_yardstick = match self.yardsticks[last] {
                Some(y) => e.stamp < self.stamp_of(y),
                None => false,
            };
            let over_limit = self
                .stack_limit
                .is_some_and(|l| self.list.len() > l);
            if !(below_last_yardstick || over_limit) {
                break;
            }
            let block = e.block;
            self.map.remove(block);
            self.list.remove(back);
        }
        // The limit must hold even when cached entries sit at the very
        // bottom: walk upward past them and drop the oldest history.
        if let Some(limit) = self.stack_limit {
            let mut cursor = self.list.back();
            while self.list.len() > limit {
                let Some(h) = cursor else { break };
                cursor = self.list.prev(h);
                if self.entry(h).level == OUT {
                    let block = self.entry(h).block;
                    self.map.remove(block);
                    self.list.remove(h);
                }
            }
        }
    }

    /// Handles one reference to `block` — the complete §3.2.1 algorithm.
    ///
    /// By-value compatibility wrapper over [`UniLruStack::access_into`]:
    /// builds a fresh [`StackOutcome`] per call. Steady-state hot paths
    /// should own an [`AccessScratch`] and call `access_into` instead.
    pub fn access(&mut self, block: BlockId) -> StackOutcome {
        let mut scratch = AccessScratch::new();
        let res = self.access_into(block, &mut scratch);
        StackOutcome {
            found: res.found,
            was_in_stack: res.was_in_stack,
            placed: res.placed,
            demotions: scratch.demotions.to_vec(),
            demoted: scratch.demoted.to_vec(),
            evicted: scratch.evicted.to_vec(),
        }
    }

    /// Handles one reference to `block`, writing the variable-length side
    /// effects (demotion counters, demoted blocks, evictions) into the
    /// caller-owned `scratch` instead of allocating. The scratch is reset
    /// first, so reuse across accesses — even dirty from another stack —
    /// is always equivalent to passing a fresh one.
    pub fn access_into(&mut self, block: BlockId, scratch: &mut AccessScratch) -> StackAccess {
        let n = self.num_levels();
        scratch.reset(n - 1);
        let mut outcome = StackAccess {
            found: Placement::Uncached,
            was_in_stack: false,
            placed: Placement::Uncached,
        };

        if let Some(&h) = self.map.get(block) {
            outcome.was_in_stack = true;
            let level = self.entry(h).level;
            let region = self.region_of(h);

            if level != OUT {
                // Cached at level i; the region gives the target level j.
                let i = level as usize;
                outcome.found = Placement::Level(i);
                let j = region
                    .level()
                    .expect("a cached block always lies in some region");
                debug_assert!(
                    j <= i,
                    "recency status deeper than level status is impossible (i={i}, j={j})"
                );
                // The block leaves its position: adjust its yardstick.
                if self.yardsticks[i] == Some(h) {
                    self.adjust_yardstick_up(i, h, j == i);
                }
                self.list.move_to_front(h);
                self.list.get_mut(h).expect("handle is live").stamp = self.next_stamp;
                self.next_stamp += 1;
                if j < i {
                    // Retrieve(b, i, j): promote; free a slot at level j by
                    // demoting yardsticks down toward level i.
                    self.list.get_mut(h).expect("handle is live").level = j as u8;
                    self.counts[j] += 1;
                    self.counts[i] -= 1;
                    if self.counts[i] == 0 {
                        self.yardsticks[i] = None;
                    }
                    self.maybe_take_yardstick(j, h);
                    self.cascade(j, scratch);
                    outcome.placed = Placement::Level(j);
                } else {
                    // Retrieve(b, i, i): stays at its level.
                    outcome.placed = Placement::Level(i);
                }
            } else {
                // History entry (L_out): a miss, but its LLD is known.
                self.list.move_to_front(h);
                self.list.get_mut(h).expect("handle is live").stamp = self.next_stamp;
                self.next_stamp += 1;
                match region {
                    Placement::Level(j) => {
                        self.list.get_mut(h).expect("handle is live").level = j as u8;
                        self.counts[j] += 1;
                        self.maybe_take_yardstick(j, h);
                        self.cascade(j, scratch);
                        outcome.placed = Placement::Level(j);
                    }
                    Placement::Uncached => {
                        // Weak locality: retrieved for the application but
                        // cached nowhere (it passes through tempLRU).
                        outcome.placed = Placement::Uncached;
                    }
                }
            }
        } else {
            // No history: first access (or trimmed long ago).
            let region = self.region_of_new();
            let h = self.list.push_front(Entry {
                block,
                level: OUT,
                stamp: self.next_stamp,
            });
            self.next_stamp += 1;
            self.map.insert(block, h);
            if let Placement::Level(j) = region {
                self.list.get_mut(h).expect("fresh handle").level = j as u8;
                self.counts[j] += 1;
                self.maybe_take_yardstick(j, h);
                // The target level was not full, so no cascade is needed.
                outcome.placed = Placement::Level(j);
            }
        }
        self.trim();
        self.debug_validate();
        outcome
    }

    /// Externally evicts `block` from its cache level (server replacement
    /// notification in the multi-client protocol, §3.2.2): the entry
    /// becomes history and the yardstick adjusts — the client's share of
    /// that level shrinks by one.
    ///
    /// Returns `false` if the block was not cached.
    pub fn evict_cached(&mut self, block: BlockId) -> bool {
        let Some(&h) = self.map.get(block) else {
            return false;
        };
        let level = self.entry(h).level;
        if level == OUT {
            return false;
        }
        let i = level as usize;
        if self.yardsticks[i] == Some(h) {
            self.adjust_yardstick_up(i, h, false);
        }
        self.counts[i] -= 1;
        if self.counts[i] == 0 {
            self.yardsticks[i] = None;
        }
        self.list.get_mut(h).expect("handle is live").level = OUT;
        self.trim();
        self.debug_validate();
        true
    }

    /// Amortised feature-gated self-check: every mutation while the stack
    /// is small, every 256th once it grows.
    // lint:cold-path feature-gated deep validation, compiled out of release builds
    #[inline]
    fn debug_validate(&mut self) {
        #[cfg(feature = "debug_invariants")]
        {
            self.tick += 1;
            if self.list.len() < 64 || self.tick.is_multiple_of(256) {
                self.check_invariants();
            }
        }
    }

    /// Validates every structural invariant; for tests.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self) {
        // Stamps strictly decrease front to back.
        let mut prev: Option<u64> = None;
        let mut counts = vec![0usize; self.num_levels()];
        let mut deepest: Vec<Option<(u64, BlockId)>> = vec![None; self.num_levels()];
        for (h, e) in self.list.iter() {
            if let Some(p) = prev {
                assert!(e.stamp < p, "stamps must descend toward the bottom");
            }
            prev = Some(e.stamp);
            assert_eq!(self.map.get(e.block), Some(&h), "map is consistent");
            if e.level != OUT {
                counts[e.level as usize] += 1;
                deepest[e.level as usize] = Some((e.stamp, e.block));
            }
        }
        assert_eq!(self.map.len(), self.list.len(), "map covers the stack");
        for i in 0..self.num_levels() {
            assert_eq!(self.counts[i], counts[i], "level {i} count");
            assert!(
                self.counts[i] <= self.capacities[i],
                "level {i} over capacity"
            );
            let (y, d) = (self.yardsticks[i], deepest[i]);
            assert_eq!(
                y.is_some(),
                d.is_some(),
                "yardstick {i} presence mismatch: {y:?} vs {d:?}"
            );
            if let (Some(y), Some((stamp, block))) = (y, d) {
                let e = self.entry(y);
                assert_eq!(
                    (e.stamp, e.block),
                    (stamp, block),
                    "yardstick {i} must be the level's deepest block"
                );
            }
        }
        if let Some(limit) = self.stack_limit {
            assert!(self.list.len() <= limit.max(self.map.len()), "stack limit");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    fn stack(caps: &[usize]) -> UniLruStack {
        UniLruStack::new(caps.to_vec())
    }

    #[test]
    fn warmup_fills_levels_top_down() {
        let mut s = stack(&[2, 2]);
        for i in 0..4 {
            let out = s.access(b(i));
            assert!(!out.was_in_stack);
            s.check_invariants();
        }
        assert_eq!(s.level_len(0), 2);
        assert_eq!(s.level_len(1), 2);
        assert_eq!(s.cached_level(b(0)), Some(0));
        assert_eq!(s.cached_level(b(1)), Some(0));
        assert_eq!(s.cached_level(b(2)), Some(1));
        assert_eq!(s.cached_level(b(3)), Some(1));
    }

    #[test]
    fn new_block_after_fill_is_uncached() {
        let mut s = stack(&[1, 1]);
        s.access(b(0));
        s.access(b(1));
        let out = s.access(b(2));
        assert_eq!(out.placed, Placement::Uncached);
        assert_eq!(out.found, Placement::Uncached);
        assert!(s.contains(b(2)), "history entry kept");
        assert_eq!(s.cached_level(b(2)), None);
        s.check_invariants();
    }

    #[test]
    fn quick_rereference_promotes_to_l1_with_demotion_cascade() {
        let mut s = stack(&[1, 1]);
        s.access(b(0)); // L1
        s.access(b(1)); // L2
        s.access(b(2)); // out (history at top)
        let out = s.access(b(2)); // re-access at tiny recency → L1
        assert_eq!(out.placed, Placement::Level(0));
        assert_eq!(out.found, Placement::Uncached); // was only history
        // b0 (old Y1) is demoted toward L2, where it would at once be the
        // victim again (it is older than b1): it falls through to L_out
        // with no transfer, and b1 keeps its L2 slot.
        assert_eq!(out.demotions, vec![0]);
        assert_eq!(out.evicted, vec![b(0)]);
        assert_eq!(s.cached_level(b(1)), Some(1));
        assert_eq!(s.cached_level(b(2)), Some(0));
        assert_eq!(s.cached_level(b(0)), None);
        s.check_invariants();
    }

    #[test]
    fn l1_blocks_always_stay_l1_on_rereference() {
        // Region of an L1 block is always L1 (it cannot sit deeper than
        // its own yardstick) — the i = j case.
        let mut s = stack(&[2, 2]);
        for i in 0..4 {
            s.access(b(i));
        }
        for _ in 0..3 {
            for i in 0..2 {
                let out = s.access(b(i));
                assert_eq!(out.found, Placement::Level(0));
                assert_eq!(out.placed, Placement::Level(0));
                assert_eq!(out.demotions, vec![0]);
                s.check_invariants();
            }
        }
    }

    #[test]
    fn pure_loop_settles_with_zero_demotions() {
        // The paper's signature tpcc1 result: a loop filling L1+L2 keeps
        // every block at its warm-up level; yardsticks rotate, blocks
        // never move.
        let (c1, c2, c3) = (50, 50, 50);
        let loop_len = 100u64; // fills L1+L2 exactly
        let mut s = stack(&[c1, c2, c3]);
        let mut demotions = 0u32;
        let mut hits_by_level = [0u32; 3];
        for round in 0..20 {
            for i in 0..loop_len {
                let out = s.access(b(i));
                if round > 0 {
                    demotions += out.demotions.iter().sum::<u32>();
                    if let Placement::Level(l) = out.found {
                        hits_by_level[l] += 1;
                    }
                }
            }
            s.check_invariants();
        }
        assert_eq!(demotions, 0, "a settled loop causes no demotions");
        assert_eq!(hits_by_level, [50 * 19, 50 * 19, 0]);
    }

    #[test]
    fn oversized_loop_settles_at_partial_residency_without_thrashing() {
        // Loop over 8 blocks with aggregate capacity 4. Plain unified LRU
        // would thrash to a 0% hit rate; ULC settles with 4 of the 8
        // blocks permanently resident (hit rate 50%) and no demotions.
        let mut s = stack(&[2, 2]);
        let mut last_round_hits = 0;
        let mut last_round_demotions = 0;
        for round in 0..10 {
            last_round_hits = 0;
            last_round_demotions = 0;
            for i in 0..8 {
                let out = s.access(b(i));
                if out.found != Placement::Uncached {
                    last_round_hits += 1;
                }
                last_round_demotions += out.demotions.iter().sum::<u32>();
            }
            s.check_invariants();
            let _ = round;
        }
        assert_eq!(last_round_hits, 4, "half the loop stays resident");
        assert_eq!(last_round_demotions, 0, "settled state has no traffic");
    }

    #[test]
    fn evict_cached_turns_entry_into_history() {
        let mut s = stack(&[2, 2]);
        for i in 0..4 {
            s.access(b(i));
        }
        assert!(s.evict_cached(b(2)));
        assert_eq!(s.cached_level(b(2)), None);
        assert_eq!(s.level_len(1), 1);
        assert!(!s.evict_cached(b(2)), "already history");
        assert!(!s.evict_cached(b(99)), "unknown block");
        s.check_invariants();
    }

    #[test]
    fn trim_removes_history_below_last_yardstick() {
        let mut s = stack(&[1, 1]);
        s.access(b(0));
        s.access(b(1));
        // b0, b1 cached. A stream of cold blocks: each becomes history at
        // the top, then sinks. Once below Y2 it must be trimmed.
        for i in 2..50 {
            s.access(b(i));
            s.check_invariants();
        }
        // History above Y2 may remain, but nothing below it, and the
        // stack must stay small.
        assert!(s.stack_len() <= 50);
        // Access the two cached blocks to lift the yardsticks to the top;
        // all history is now below the last yardstick and trimmed away.
        s.access(b(0));
        s.access(b(1));
        assert_eq!(s.stack_len(), 2, "all history trimmed");
        s.check_invariants();
    }

    #[test]
    fn stack_limit_bounds_history() {
        let mut s = stack(&[1, 1]);
        s.set_stack_limit(Some(10));
        for i in 0..1000 {
            s.access(b(i));
            assert!(s.stack_len() <= 10 + 1);
            s.check_invariants();
        }
    }

    #[test]
    #[should_panic(expected = "stack limit must cover")]
    fn stack_limit_below_aggregate_rejected() {
        let mut s = stack(&[4, 4]);
        s.set_stack_limit(Some(4));
    }

    #[test]
    fn external_full_blocks_placement() {
        let mut s = stack(&[1, 100]);
        s.set_external_full(1, true);
        s.access(b(0)); // fills L1
        let out = s.access(b(1)); // L2 declared full → uncached
        assert_eq!(out.placed, Placement::Uncached);
        s.set_external_full(1, false);
        let out = s.access(b(2));
        assert_eq!(out.placed, Placement::Level(1));
        s.check_invariants();
    }

    #[test]
    fn yardstick_is_replacement_victim() {
        let mut s = stack(&[2, 2]);
        for i in 0..4 {
            s.access(b(i));
        }
        // Y1 = b0 (deepest L1). Promoting history block b4 would demote Y1.
        assert_eq!(s.yardstick(0), Some(b(0)));
        s.access(b(4)); // history at top
        // b4 → L1; Y1 = b0 is demoted toward L2, where it is older than
        // both residents and falls through to L_out (no transfer).
        let out = s.access(b(4));
        assert_eq!(out.demotions, vec![0]);
        assert_eq!(out.evicted, vec![b(0)]);
        assert_eq!(s.yardstick(0), Some(b(1)));
        assert_eq!(s.cached_level(b(0)), None);
        assert_eq!(s.cached_level(b(2)), Some(1));
        assert_eq!(s.cached_level(b(3)), Some(1));
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = stack(&[0]);
    }
}
