//! A from-first-principles reference implementation of the single-client
//! ULC algorithm.
//!
//! [`NaiveUlc`] maintains the `uniLRUstack` as a plain `Vec` and re-derives
//! every status from positions on each access — O(n) per reference, no
//! stamps, no incremental yardstick maintenance. It exists to validate the
//! O(1) [`crate::UniLruStack`]: property tests drive both with the same
//! reference streams and require identical decisions, placements and
//! traffic.

use crate::stack::Placement;
use ulc_trace::BlockId;

const OUT: usize = usize::MAX;

/// One access's outcome, mirroring [`crate::StackOutcome`] fields that are
/// semantically meaningful.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaiveOutcome {
    /// Level the block was retrieved from.
    pub found: Placement,
    /// Level the block was placed at.
    pub placed: Placement,
    /// Demotion transfers per boundary.
    pub demotions: Vec<u32>,
    /// Blocks pushed out of the bottom level.
    pub evicted: Vec<BlockId>,
}

/// The naive reference ULC.
#[derive(Clone, Debug)]
pub struct NaiveUlc {
    /// Stack entries, most recent first: `(block, level)` with `OUT`
    /// marking uncached history.
    stack: Vec<(BlockId, usize)>,
    capacities: Vec<usize>,
}

impl NaiveUlc {
    /// Creates the reference protocol.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or contains zero.
    pub fn new(capacities: Vec<usize>) -> Self {
        assert!(!capacities.is_empty() && capacities.iter().all(|&c| c > 0));
        NaiveUlc {
            stack: Vec::new(),
            capacities,
        }
    }

    fn count(&self, level: usize) -> usize {
        self.stack.iter().filter(|&&(_, l)| l == level).count()
    }

    /// Position of the deepest entry of `level` (the yardstick), if any.
    fn yardstick_pos(&self, level: usize) -> Option<usize> {
        self.stack.iter().rposition(|&(_, l)| l == level)
    }

    /// The recency region of stack position `pos`: the smallest level
    /// whose yardstick is at least as deep, else the shallowest non-full
    /// level, else uncached.
    fn region_of_pos(&self, pos: usize) -> Placement {
        for j in 0..self.capacities.len() {
            if let Some(y) = self.yardstick_pos(j) {
                if pos <= y {
                    return Placement::Level(j);
                }
            }
        }
        self.first_open()
    }

    fn first_open(&self) -> Placement {
        match (0..self.capacities.len()).find(|&j| self.count(j) < self.capacities[j]) {
            Some(j) => Placement::Level(j),
            None => Placement::Uncached,
        }
    }

    /// Demotion cascade starting at `start`; mirrors the smart-client
    /// accounting (fall-through blocks are not transferred, blocks ending
    /// uncached are discarded with no traffic).
    fn cascade(&mut self, start: usize, out: &mut NaiveOutcome) {
        let n = self.capacities.len();
        let mut moved: Vec<(BlockId, usize)> = Vec::new();
        let mut lvl = start;
        while lvl < n && self.count(lvl) > self.capacities[lvl] {
            let y = self.yardstick_pos(lvl).expect("over-full level");
            let block = self.stack[y].0;
            if !moved.iter().any(|&(b, _)| b == block) {
                moved.push((block, lvl));
            }
            self.stack[y].1 = if lvl + 1 < n { lvl + 1 } else { OUT };
            lvl += 1;
        }
        for (block, from) in moved {
            let level = self
                .stack
                .iter()
                .find(|&&(b, _)| b == block)
                .expect("moved block is in the stack")
                .1;
            if level == OUT {
                out.evicted.push(block);
            } else {
                for m in from..level {
                    out.demotions[m] += 1;
                }
            }
        }
    }

    /// Drops uncached history from the stack bottom while it lies below
    /// the last yardstick (matching the fast implementation exactly: the
    /// trim stops at the first cached entry from the bottom — a stale
    /// uncached entry parked above a deep cached one behaves identically
    /// to a trimmed one, since below every yardstick the region fallback
    /// applies either way).
    fn trim(&mut self) {
        let last = self.capacities.len() - 1;
        let Some(y) = self.yardstick_pos(last) else {
            return;
        };
        while self.stack.len() > y + 1 {
            let i = self.stack.len() - 1;
            if self.stack[i].1 == OUT {
                self.stack.pop();
            } else {
                break;
            }
        }
    }

    /// Handles one reference.
    pub fn access(&mut self, block: BlockId) -> NaiveOutcome {
        let n = self.capacities.len();
        let mut out = NaiveOutcome {
            found: Placement::Uncached,
            placed: Placement::Uncached,
            demotions: vec![0; n - 1],
            evicted: Vec::new(),
        };
        match self.stack.iter().position(|&(b, _)| b == block) {
            Some(pos) => {
                let level = self.stack[pos].1;
                let region = self.region_of_pos(pos);
                self.stack.remove(pos);
                if level != OUT {
                    out.found = Placement::Level(level);
                    let j = region.level().expect("cached blocks lie in a region");
                    assert!(j <= level, "i < j is impossible");
                    self.stack.insert(0, (block, j));
                    if j < level {
                        self.cascade(j, &mut out);
                    }
                    out.placed = Placement::Level(j);
                } else {
                    match region {
                        Placement::Level(j) => {
                            self.stack.insert(0, (block, j));
                            self.cascade(j, &mut out);
                            out.placed = Placement::Level(j);
                        }
                        Placement::Uncached => {
                            self.stack.insert(0, (block, OUT));
                        }
                    }
                }
            }
            None => {
                let region = self.first_open();
                match region {
                    Placement::Level(j) => {
                        self.stack.insert(0, (block, j));
                        out.placed = Placement::Level(j);
                    }
                    Placement::Uncached => {
                        self.stack.insert(0, (block, OUT));
                    }
                }
            }
        }
        self.trim();
        out
    }

    /// Blocks cached at `level`, most recent first.
    pub fn level_blocks(&self, level: usize) -> Vec<BlockId> {
        self.stack
            .iter()
            .filter(|&&(_, l)| l == level)
            .map(|&(b, _)| b)
            .collect()
    }

    /// Total stack entries (cached + history).
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::UniLruStack;
    use rand::Rng;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    /// Drives both implementations and asserts equivalence after every
    /// access.
    fn check_equivalence(caps: &[usize], blocks: &[u64]) {
        let mut fast = UniLruStack::new(caps.to_vec());
        let mut naive = NaiveUlc::new(caps.to_vec());
        for (step, &blk) in blocks.iter().enumerate() {
            let f = fast.access(b(blk));
            let n = naive.access(b(blk));
            assert_eq!(f.found, n.found, "step {step}: found");
            assert_eq!(f.placed, n.placed, "step {step}: placed");
            assert_eq!(f.demotions, n.demotions, "step {step}: demotions");
            let mut fe = f.evicted.clone();
            let mut ne = n.evicted.clone();
            fe.sort();
            ne.sort();
            assert_eq!(fe, ne, "step {step}: evicted");
            for l in 0..caps.len() {
                assert_eq!(
                    fast.level_blocks(l),
                    naive.level_blocks(l),
                    "step {step}: level {l} content/order"
                );
            }
            assert_eq!(fast.stack_len(), naive.stack_len(), "step {step}: stack");
            fast.check_invariants();
        }
    }

    #[test]
    fn equivalent_on_simple_sequences() {
        check_equivalence(&[2, 2], &[0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 4, 4, 0]);
        check_equivalence(&[1, 1, 1], &[0, 1, 2, 3, 3, 2, 1, 0, 5, 5, 5]);
        check_equivalence(&[3], &[0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn equivalent_on_loops() {
        let loop9: Vec<u64> = (0..9u64).cycle().take(200).collect();
        check_equivalence(&[2, 3], &loop9);
        check_equivalence(&[4, 4, 4], &loop9);
        check_equivalence(&[3, 3], &loop9);
    }

    #[test]
    fn equivalent_on_random_traces() {
        let mut rng = ulc_trace::seeded_rng(0xabcdef);
        for caps in [vec![2, 3], vec![1, 1, 1], vec![4, 2, 3], vec![5]] {
            for universe in [4u64, 8, 16, 40] {
                let blocks: Vec<u64> =
                    (0..400).map(|_| rng.gen_range(0..universe)).collect();
                check_equivalence(&caps, &blocks);
            }
        }
    }

    #[test]
    fn equivalent_on_zipf_traces() {
        let z = ulc_trace::Zipf::new(30, 1.0);
        let mut rng = ulc_trace::seeded_rng(0x77);
        let blocks: Vec<u64> = (0..600).map(|_| z.sample(&mut rng) as u64).collect();
        check_equivalence(&[3, 4, 5], &blocks);
    }
}
