//! The single-client ULC protocol (§3.2.1).
//!
//! [`UlcSingle`] wraps the [`UniLruStack`] decision engine in the
//! [`MultiLevelPolicy`] interface, adds the client's `tempLRU` (the small
//! stack that briefly holds blocks passing through the client on their way
//! to the application when their caching level is below `L₁`), and counts
//! the protocol messages (`Retrieve`, `Demote`) that §3.2 defines.

use crate::scratch::AccessScratch;
use crate::stack::{Placement, UniLruStack};
use ulc_cache::LruStack;
use ulc_hierarchy::{AccessOutcome, MultiLevelPolicy};
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, ClientId, TableMode};

/// Configuration for the single-client ULC protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UlcConfig {
    /// Cache capacity (in blocks) of each level, top-down.
    pub capacities: Vec<usize>,
    /// Bound on `uniLRUstack` metadata entries (`None` = bounded only by
    /// the last yardstick, §3.2).
    pub stack_limit: Option<usize>,
    /// Capacity of the client's `tempLRU` for pass-through blocks.
    pub temp_lru_capacity: usize,
    /// Count a reference that finds its block still sitting in `tempLRU`
    /// as a client-memory hit. The paper treats such blocks as immediately
    /// replaced (`false`); enabling this is an ablation extension.
    pub count_temp_lru_hits: bool,
}

impl UlcConfig {
    /// The standard configuration for the given level capacities.
    pub fn new(capacities: Vec<usize>) -> Self {
        UlcConfig {
            capacities,
            stack_limit: None,
            temp_lru_capacity: 16,
            count_temp_lru_hits: false,
        }
    }
}

/// Counts of the two ULC request types (§3.2.1), for overhead reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// `Retrieve(b, i, j)` requests, indexed by the level `i` the block
    /// was retrieved from (last slot = disk).
    pub retrieves_by_source: Vec<u64>,
    /// `Demote(b, i, i+1)` instructions per boundary.
    pub demotes_by_boundary: Vec<u64>,
}

impl MessageStats {
    fn new(levels: usize) -> Self {
        MessageStats {
            retrieves_by_source: vec![0; levels + 1],
            demotes_by_boundary: vec![0; levels - 1],
        }
    }

    /// Total messages sent.
    pub fn total(&self) -> u64 {
        self.retrieves_by_source.iter().sum::<u64>()
            + self.demotes_by_boundary.iter().sum::<u64>()
    }
}

/// The single-client ULC protocol.
///
/// # Examples
///
/// ```
/// use ulc_core::{UlcConfig, UlcSingle};
/// use ulc_hierarchy::{simulate, CostModel};
/// use ulc_trace::synthetic;
///
/// let trace = synthetic::tpcc1(100_000);
/// let mut ulc = UlcSingle::new(UlcConfig::new(vec![6_400, 6_400, 6_400]));
/// let stats = simulate(&mut ulc, &trace, trace.warmup_len());
/// // The dominant loop splits across L1 and L2 with almost no demotions.
/// assert!(stats.hit_rates()[0] > 0.3);
/// assert!(stats.demotion_rates()[0] < 0.1);
/// ```
#[derive(Debug)]
pub struct UlcSingle {
    stack: UniLruStack,
    temp_lru: LruStack<BlockId>,
    config: UlcConfig,
    messages: MessageStats,
    /// Reusable per-access buffers; once their high-water marks settle the
    /// steady-state access path performs no heap allocation (DESIGN.md §5f).
    scratch: AccessScratch,
    /// Observability hooks (no-op unless the `obs` feature is on and a
    /// recorder has been attached; DESIGN.md §5h).
    obs: ObsHandle,
}

impl UlcSingle {
    /// Creates the protocol for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no levels or a zero capacity.
    pub fn new(config: UlcConfig) -> Self {
        UlcSingle::new_with_mode(config, TableMode::Dense)
    }

    /// [`UlcSingle::new`] with an explicit block-table representation:
    /// `TableMode::Dense` (the default interned flat tables) or
    /// `TableMode::Hashed` (the retained map-backed reference path used by
    /// the differential suite and throughput baselines).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no levels or a zero capacity.
    pub fn new_with_mode(config: UlcConfig, mode: TableMode) -> Self {
        let mut stack = UniLruStack::new_with_mode(config.capacities.clone(), mode);
        stack.set_stack_limit(config.stack_limit);
        let levels = config.capacities.len();
        UlcSingle {
            stack,
            temp_lru: LruStack::new(),
            config,
            messages: MessageStats::new(levels),
            scratch: AccessScratch::new(),
            obs: ObsHandle::default(),
        }
    }

    /// Protocol message counters.
    pub fn messages(&self) -> &MessageStats {
        &self.messages
    }

    /// The underlying `uniLRUstack` (read access for inspection).
    pub fn stack(&self) -> &UniLruStack {
        &self.stack
    }

    /// Validates all structural invariants; for tests.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.stack.check_invariants();
    }

    /// Records the stack's side effects for this access as events:
    /// one `Demote` per boundary each demoted block crossed (matching
    /// the `demotions` transfer counters exactly), one `Evict` per block
    /// that fell out of the bottom level, and the `Retrieve` placing the
    /// accessed block (destination `num_levels` = settled uncached).
    fn record_stack_effects(&mut self, block: BlockId, placed: Placement) {
        for &(b, from, to) in &self.scratch.demoted {
            for m in from..to {
                self.obs.on_demote(m, b.raw());
            }
        }
        let bottom = self.stack.num_levels() - 1;
        for &b in &self.scratch.evicted {
            self.obs.on_evict(bottom, b.raw());
        }
        let dest = match placed {
            Placement::Level(i) => i,
            Placement::Uncached => self.stack.num_levels(),
        };
        self.obs.on_retrieve(dest, block.raw());
    }

    fn note_temp_lru(&mut self, block: BlockId, placed: Placement) {
        // A block not cached at the client passes through tempLRU so it
        // can be replaced from client memory quickly (§3.2, footnote 3).
        if placed != Placement::Level(0) {
            self.temp_lru.touch(block);
            while self.temp_lru.len() > self.config.temp_lru_capacity {
                self.temp_lru.pop_bottom();
            }
        } else {
            self.temp_lru.remove(&block);
        }
    }
}

impl MultiLevelPolicy for UlcSingle {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(self.stack.num_levels() - 1);
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        assert_eq!(
            client,
            ClientId::SINGLE,
            "single-client protocol serves exactly one client"
        );
        out.reset(self.stack.num_levels() - 1);
        self.obs.begin_access();
        if self.config.count_temp_lru_hits && self.temp_lru.contains(&block) {
            // Ablation mode: the block is still in client memory.
            self.temp_lru.touch(block);
            // The stack still observes the reference for its history.
            let res = self.stack.access_into(block, &mut self.scratch);
            out.hit_level = Some(0);
            out.demotions.copy_from_slice(self.scratch.demotions.as_slice());
            self.obs.on_hit(0, block.raw());
            self.record_stack_effects(block, res.placed);
            self.note_temp_lru(block, res.placed);
            return;
        }
        let res = self.stack.access_into(block, &mut self.scratch);
        let source = match res.found {
            Placement::Level(i) => i,
            Placement::Uncached => self.stack.num_levels(), // disk
        };
        self.messages.retrieves_by_source[source] += 1;
        for (b, &d) in self.scratch.demotions.iter().enumerate() {
            self.messages.demotes_by_boundary[b] += d as u64;
        }
        match res.found.level() {
            Some(level) => self.obs.on_hit(level, block.raw()),
            None => self.obs.on_miss(block.raw()),
        }
        self.record_stack_effects(block, res.placed);
        self.note_temp_lru(block, res.placed);
        out.hit_level = res.found.level();
        out.demotions.copy_from_slice(self.scratch.demotions.as_slice());
    }

    #[inline]
    fn prefetch(&self, _client: ClientId, block: BlockId) {
        // Semantics-free: pulls the uniLRUstack's block-table row for a
        // soon-to-arrive reference toward the CPU cache (DESIGN.md §5i).
        self.stack.prefetch(block);
    }

    fn num_levels(&self) -> usize {
        self.stack.num_levels()
    }

    fn name(&self) -> &'static str {
        "ULC"
    }
}

impl Observe for UlcSingle {
    fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        &mut self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulc_hierarchy::{simulate, CostModel, UniLru};
    use ulc_trace::synthetic;

    fn run(config: UlcConfig, trace: &ulc_trace::Trace) -> ulc_hierarchy::SimStats {
        let mut ulc = UlcSingle::new(config);
        let stats = simulate(&mut ulc, trace, trace.warmup_len());
        ulc.check_invariants();
        stats
    }

    #[test]
    fn loop_splits_across_levels_with_low_demotions() {
        // The §4.3 tpcc1 shape: under ULC the loop's hits split between
        // L1 and L2 (roughly by capacity) with demotion rates near zero,
        // whereas uniLRU serves everything from L2 with a 100% demotion
        // rate.
        let t = synthetic::cs(60_000); // 2500-block loop
        let caps = vec![1250usize, 1250, 1250];
        let su = run(UlcConfig::new(caps.clone()), &t);
        assert!(su.hit_rates()[0] > 0.45, "h1 = {:?}", su.hit_rates());
        assert!(su.hit_rates()[1] > 0.45, "h2 = {:?}", su.hit_rates());
        assert!(su.demotion_rates()[0] < 0.01);

        let mut uni = UniLru::single_client(caps);
        let sl = simulate(&mut uni, &t, t.warmup_len());
        assert!(sl.hit_rates()[0] < 0.01);
        assert!(sl.demotion_rates()[0] > 0.99);
        // Same total hit rate, radically different placement and traffic.
        let costs = CostModel::paper_three_level();
        assert!(su.average_access_time(&costs) < sl.average_access_time(&costs));
    }

    #[test]
    fn matches_aggregate_hit_rate_of_unified_lru_on_random() {
        // Goal (1) of the paper: the multi-level cache retains the hit
        // rate of a single cache of aggregate size. On the random trace
        // every policy's hit rate is proportional to the aggregate size.
        let t = synthetic::random_small(120_000);
        let stats = run(UlcConfig::new(vec![1000, 1000, 1000]), &t);
        let expect = 3000.0 / synthetic::RANDOM_SMALL_BLOCKS as f64;
        assert!(
            (stats.total_hit_rate() - expect).abs() < 0.05,
            "aggregate hit rate {:.3} vs {expect:.3}",
            stats.total_hit_rate()
        );
    }

    #[test]
    fn lru_friendly_trace_keeps_hot_blocks_at_l1() {
        let t = synthetic::sprite(60_000);
        let stats = run(UlcConfig::new(vec![300, 300, 300]), &t);
        let h = stats.hit_rates();
        assert!(h[0] > h[1], "h = {h:?}");
        assert!(h[1] > h[2], "h = {h:?}");
        assert!(stats.total_hit_rate() > 0.7, "total = {}", stats.total_hit_rate());
    }

    #[test]
    fn demotion_rates_far_below_uni_lru_on_every_pattern() {
        for (name, t) in synthetic::small_suite(40_000) {
            let caps = vec![400usize, 400, 400];
            let su = run(UlcConfig::new(caps.clone()), &t);
            let mut uni = UniLru::single_client(caps);
            let sl = simulate(&mut uni, &t, t.warmup_len());
            let ulc_d: f64 = su.demotion_rates().iter().sum();
            let uni_d: f64 = sl.demotion_rates().iter().sum();
            assert!(
                ulc_d <= uni_d + 1e-9,
                "{name}: ULC demotions {ulc_d:.3} vs uniLRU {uni_d:.3}"
            );
        }
    }

    #[test]
    fn message_counts_cover_every_reference() {
        let t = synthetic::zipf_small(20_000);
        let mut ulc = UlcSingle::new(UlcConfig::new(vec![500, 500]));
        let _ = simulate(&mut ulc, &t, 0);
        let m = ulc.messages();
        let retrieves: u64 = m.retrieves_by_source.iter().sum();
        assert_eq!(retrieves, 20_000, "one Retrieve per reference");
        assert_eq!(m.retrieves_by_source.len(), 3); // L1, L2, disk
    }

    #[test]
    fn temp_lru_stays_bounded() {
        let t = synthetic::random_small(5_000);
        let mut config = UlcConfig::new(vec![50, 50]);
        config.temp_lru_capacity = 8;
        let mut ulc = UlcSingle::new(config);
        let _ = simulate(&mut ulc, &t, 0);
        assert!(ulc.temp_lru.len() <= 8);
    }

    #[test]
    fn temp_lru_hit_ablation_counts_client_hits() {
        let mut config = UlcConfig::new(vec![1, 1]);
        config.count_temp_lru_hits = true;
        let mut ulc = UlcSingle::new(config);
        let b = BlockId::new(9);
        let c = ClientId::SINGLE;
        ulc.access(c, BlockId::new(0)); // L1
        ulc.access(c, BlockId::new(1)); // L2
        ulc.access(c, b); // miss, uncached → tempLRU
        let out = ulc.access(c, b);
        assert_eq!(out.hit_level, Some(0), "tempLRU hit counts as client hit");
    }

    #[test]
    #[should_panic(expected = "one client")]
    fn multi_client_access_rejected() {
        let mut ulc = UlcSingle::new(UlcConfig::new(vec![4]));
        let _ = ulc.access(ClientId::new(1), BlockId::new(0));
    }
}
