//! The multi-client ULC protocol (§3.2.2, Figure 5).
//!
//! Several clients share one server cache. Each client runs the
//! single-client decision engine over a two-level view (its private
//! cache plus the server) and *directs* the server with level-tagged
//! `Retrieve` requests and `Demote` instructions. The server allocates its buffers
//! among clients by a global LRU stack (`gLRU`) ordered by cache-request
//! times, recording for each block its **owner** — the client that most
//! recently requested it be cached. When the server replaces the bottom
//! of `gLRU`, the owner is notified (piggybacked on its next retrieved
//! block — *delayed notification*) and performs a yardstick adjustment:
//! its share of the server has shrunk by one block.
//!
//! Two multi-client wrinkles the paper calls out are handled here:
//!
//! * **Shared blocks** carry different level tags from different clients;
//!   a block stays cached at the highest level any client directs. A
//!   client promoting a *shared* block to its private cache therefore does
//!   not purge it from the server unless it is the block's owner.
//! * **Allocation** is fully dynamic: a client's server share is just the
//!   set of gLRU entries it owns, and shrinks only through replacement
//!   notifications. Client-side metadata never caps its own server share.
//!
//! ## Message plane
//!
//! Every client↔server exchange crosses a
//! [`MessagePlane`](ulc_hierarchy::MessagePlane): link `c` is client `c`'s
//! connection to the server. The demand read is a synchronous RPC; the
//! client's `Retrieve(b, ·, 2)` and `Demote(b, 1, 2)` directives are
//! asynchronous `Down` messages drained into the server's gLRU; delayed
//! replacement notifications are `Up` messages delivered with the
//! client's next successful response — exactly the paper's piggybacking,
//! made explicit. On the default `ReliablePlane` everything arrives
//! within the access that produced it, reproducing the historical
//! in-line behaviour bit for bit. On a lossy `FaultyPlane` the client's
//! status table and the server drift apart; the drift is *detected* on
//! the next authoritative response (a NACK: the server does not hold a
//! believed block) and *repaired* by [`UlcMulti::reconcile_client`] —
//! a status-table re-sync sweep plus a conservative single-residency
//! repair. A server crash-and-cold-restart marks every client dirty so
//! each rebuilds its status table on its next access.

use crate::scratch::AccessScratch;
use crate::stack::{Placement, UniLruStack};
use ulc_cache::LruStack;
use ulc_hierarchy::plane::{DeliveryBatch, Direction, Message, MessagePlane, ReliablePlane, RpcFate};
use ulc_hierarchy::{AccessOutcome, FaultSummary, MultiLevelPolicy};
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, BlockMap, ClientId, TableMode};

/// The server's global LRU stack with per-block owners.
#[derive(Clone, Debug)]
struct GlobalLru {
    stack: LruStack<BlockId>,
    owner: BlockMap<u32>,
    capacity: usize,
}

impl GlobalLru {
    fn new(capacity: usize, mode: TableMode) -> Self {
        assert!(capacity > 0, "server capacity must be positive");
        let mut stack = LruStack::new();
        // Occupancy is bounded by `capacity + 1` (cache_request touches
        // before it pops), so the node slots settle during warm-up — but
        // the slab's free list tracks the *deepest occupancy dip*, which a
        // late burst of promotions to client caches can deepen at any
        // point in a run, doubling the free vector inside the measured
        // steady phase (the §5f gate forbids exactly that). Reserving the
        // full capacity up front caps the whole run.
        stack.reserve(capacity + 1);
        let mut owner = BlockMap::new(mode);
        owner.reserve(capacity + 1);
        GlobalLru {
            stack,
            owner,
            capacity,
        }
    }

    fn contains(&self, block: BlockId) -> bool {
        self.stack.contains(&block)
    }

    fn is_full(&self) -> bool {
        self.stack.len() >= self.capacity
    }

    fn owner_of(&self, block: BlockId) -> Option<u32> {
        self.owner.get(block).copied()
    }

    /// A client requests `block` be cached here; the block moves to the
    /// top of `gLRU` and the requester becomes its owner.
    ///
    /// Returns the replaced block and its owner if the request forced a
    /// replacement, plus the block's previous owner if ownership moved
    /// between clients — the previous owner must be told its share shrank,
    /// or its view of the server inflates with blocks whose replacement it
    /// will never hear about.
    fn cache_request(&mut self, block: BlockId, requester: u32) -> CacheRequestEffect {
        self.stack.touch(block);
        let transferred_from = self
            .owner
            .insert(block, requester)
            .filter(|&o| o != requester);
        let replaced = if self.stack.len() > self.capacity {
            let victim = self.stack.pop_bottom().expect("over-full stack");
            let owner = self.owner.remove(victim).expect("owned victim");
            Some((victim, owner))
        } else {
            None
        };
        CacheRequestEffect {
            replaced,
            transferred_from,
        }
    }

    /// Drops `block` (its owner is promoting it to the client cache).
    fn remove(&mut self, block: BlockId) {
        self.stack.remove(&block);
        self.owner.remove(block);
    }

    /// Refreshes `block`'s gLRU position without changing its owner
    /// (a non-owner is using the shared copy).
    fn refresh(&mut self, block: BlockId) {
        if self.owner.contains_key(block) {
            self.stack.touch(block);
        }
    }
}

/// What one gLRU cache request did.
#[derive(Clone, Copy, Debug)]
struct CacheRequestEffect {
    /// Block replaced to make room, with its owner.
    replaced: Option<(BlockId, u32)>,
    /// Previous owner, when the request took the block over from another
    /// client.
    transferred_from: Option<u32>,
}

/// Per-client protocol state.
#[derive(Debug)]
struct ClientState {
    stack: UniLruStack,
    /// Status table known stale (e.g. after a server cold restart): run a
    /// reconciliation pass before the next access is served.
    dirty: bool,
}

/// How a client treats history-less (cold) blocks when the shared server
/// is globally full. The paper's §3.2.1 initialisation rule is stated for
/// the single-client case; both multi-client readings are defensible and
/// measurably different (see DESIGN.md §5a).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClaimRule {
    /// Cold blocks always direct a server placement; gLRU replacement
    /// arbitrates between clients (the dynamic-partition reading). The
    /// default: it lets late-arriving clients claim their share and keeps
    /// the server warm for re-read-heavy workloads.
    #[default]
    DynamicPartition,
    /// Cold blocks become `L_out` whenever the server reports itself full
    /// (the literal §3.2.1 reading). Maximally scan-resistant; allocation
    /// shifts only through re-referenced history (Figure 5's path).
    PaperStrict,
}

/// Configuration for the multi-client ULC protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UlcMultiConfig {
    /// Private cache capacity of each client.
    pub client_capacities: Vec<usize>,
    /// Shared server cache capacity.
    pub server_capacity: usize,
    /// Cold-block claim behaviour under a full server.
    pub claim_rule: ClaimRule,
}

impl UlcMultiConfig {
    /// A configuration with identical clients.
    pub fn uniform(clients: usize, client_capacity: usize, server_capacity: usize) -> Self {
        UlcMultiConfig {
            client_capacities: vec![client_capacity; clients],
            server_capacity,
            claim_rule: ClaimRule::default(),
        }
    }

    /// Overrides the claim rule.
    #[must_use]
    pub fn with_claim_rule(mut self, rule: ClaimRule) -> Self {
        self.claim_rule = rule;
        self
    }
}

/// The multi-client ULC protocol over a two-level hierarchy, generic over
/// the transport its directives, retrievals and notifications cross.
///
/// # Examples
///
/// ```
/// use ulc_core::{UlcMulti, UlcMultiConfig};
/// use ulc_hierarchy::{simulate, MultiLevelPolicy};
/// use ulc_trace::synthetic;
///
/// let trace = synthetic::httpd_multi(50_000);
/// let mut ulc = UlcMulti::new(UlcMultiConfig::uniform(7, 1024, 8192));
/// let stats = simulate(&mut ulc, &trace, trace.warmup_len());
/// assert!(stats.total_hit_rate() > 0.0);
/// ```
#[derive(Debug)]
pub struct UlcMulti<P: MessagePlane = ReliablePlane> {
    clients: Vec<ClientState>,
    server: GlobalLru,
    claim_rule: ClaimRule,
    config: UlcMultiConfig,
    table_mode: TableMode,
    plane: P,
    /// Protocol-side recovery counters (the plane keeps the transport
    /// counters itself).
    recovery: FaultSummary,
    /// Reusable per-access buffers: the client stack's scratch, the two
    /// delivery batches (server inbox, per-client notices) and the crash
    /// buffer. Once their high-water marks settle the steady-state access
    /// path performs no heap allocation (DESIGN.md §5f).
    scratch: AccessScratch,
    inbox: DeliveryBatch,
    notices: DeliveryBatch,
    crash_buf: Vec<usize>,
    /// Observability hooks (no-op unless the `obs` feature is on and a
    /// recorder has been attached; DESIGN.md §5h).
    obs: ObsHandle,
    #[cfg(feature = "debug_invariants")]
    tick: u64,
}

impl UlcMulti {
    /// Creates the protocol for `config`.
    ///
    /// # Panics
    ///
    /// Panics if there are no clients or any capacity is zero.
    pub fn new(config: UlcMultiConfig) -> Self {
        UlcMulti::new_with_mode(config, TableMode::Dense)
    }

    /// [`UlcMulti::new`] with an explicit block-table representation:
    /// `TableMode::Dense` (the default interned flat tables) or
    /// `TableMode::Hashed` (the retained map-backed reference path used by
    /// the differential suite and throughput baselines).
    ///
    /// # Panics
    ///
    /// Panics if there are no clients or any capacity is zero.
    pub fn new_with_mode(config: UlcMultiConfig, mode: TableMode) -> Self {
        assert!(
            !config.client_capacities.is_empty(),
            "at least one client is required"
        );
        // Each client's view of the server is bounded by the whole server:
        // under the dynamic-partition principle a client may claim up to
        // everything, and the server's gLRU arbitrates between clients.
        // With a single client whose working set fits the hierarchy this
        // degenerates to the single-client protocol exactly; under
        // replacement pressure gLRU's request-time order approximates the
        // client's recency order (§3.2.2).
        let clients = config
            .client_capacities
            .iter()
            .map(|&c| {
                let mut stack =
                    UniLruStack::new_with_mode(vec![c, config.server_capacity], mode);
                // Resident entries are the cached view (client + server
                // share) plus uncached history above the last yardstick,
                // whose high-water is reached late in a run; reserving a
                // generous multiple keeps the steady phase allocation-free
                // (§5f) without changing behaviour if it is ever exceeded.
                stack.reserve_blocks(2 * (c + config.server_capacity));
                ClientState { stack, dirty: false }
            })
            .collect();
        UlcMulti {
            clients,
            server: GlobalLru::new(config.server_capacity, mode),
            claim_rule: config.claim_rule,
            config,
            table_mode: mode,
            plane: ReliablePlane::new(),
            recovery: FaultSummary::default(),
            scratch: AccessScratch::new(),
            inbox: DeliveryBatch::new(),
            notices: DeliveryBatch::new(),
            crash_buf: Vec::new(),
            obs: ObsHandle::default(),
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }
}

impl<P: MessagePlane> UlcMulti<P> {
    /// Moves the protocol onto a different message plane (used to swap in
    /// a `FaultyPlane` before a run starts).
    pub fn with_plane<Q: MessagePlane>(self, plane: Q) -> UlcMulti<Q> {
        UlcMulti {
            clients: self.clients,
            server: self.server,
            claim_rule: self.claim_rule,
            config: self.config,
            table_mode: self.table_mode,
            plane,
            recovery: self.recovery,
            scratch: self.scratch,
            inbox: self.inbox,
            notices: self.notices,
            crash_buf: self.crash_buf,
            obs: self.obs,
            #[cfg(feature = "debug_invariants")]
            tick: self.tick,
        }
    }

    /// The message plane the protocol runs on.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    /// Mutable access to client `c`'s `uniLRUstack`, for the sharded
    /// replay executor ([`crate::parallel`]): the stack is lent to a
    /// worker thread for the parallel phase of an epoch and swapped back
    /// before the serial commit walk.
    pub(crate) fn client_stack_mut(&mut self, c: usize) -> &mut UniLruStack {
        &mut self.clients[c].stack
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Blocks currently cached in the server.
    pub fn server_len(&self) -> usize {
        self.server.stack.len()
    }

    /// How many server blocks each client currently owns — the dynamic
    /// allocation of Figure 5.
    pub fn server_allocation(&self) -> Vec<usize> {
        let mut alloc = vec![0usize; self.clients.len()];
        for (_, &o) in self.server.owner.iter() {
            alloc[o as usize] += 1;
        }
        alloc
    }

    /// Validates the protocol-level invariants: per-client stack
    /// structure, per-level capacity bounds, exclusive caching (a block a
    /// client holds privately is never also its own server copy —
    /// single-residency across the hierarchy), notification conservation
    /// (a believed server placement is either really cached there or its
    /// invalidation is still in flight on the message plane), and
    /// server/owner bookkeeping.
    ///
    /// On a lossy plane these guarantees only hold once traffic has
    /// settled and [`UlcMulti::reconcile`] has run; mid-run, use
    /// [`UlcMulti::check_recoverable_invariants`].
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.check_recoverable_invariants();
        for (ci, c) in self.clients.iter().enumerate() {
            for b in c.stack.level_blocks(0) {
                assert_ne!(
                    self.server.owner_of(b),
                    Some(ci as u32),
                    "exclusive caching: {b:?} is resident at client {ci} yet owned by it at the server"
                );
            }
            let in_flight = self.plane.queued(ci, Direction::Up);
            for b in c.stack.level_blocks(1) {
                assert!(
                    self.server.contains(b)
                        || in_flight
                            .iter()
                            .any(|m| matches!(m, Message::EvictNotice { block } if *block == b)),
                    "client {ci} believes {b:?} is at the server with no pending notice"
                );
            }
        }
    }

    /// The invariants that hold at *every* instant even under message
    /// loss, duplication, reordering and crashes: per-client stack
    /// consistency (a local state machine faults cannot corrupt) and
    /// server capacity/owner bookkeeping. The cross-machine agreement
    /// checked by [`UlcMulti::check_invariants`] is only guaranteed after
    /// [`UlcMulti::settle`] + [`UlcMulti::reconcile`].
    ///
    /// # Panics
    ///
    /// Panics if a recoverable invariant is violated.
    pub fn check_recoverable_invariants(&self) {
        for c in self.clients.iter() {
            c.stack.check_invariants();
        }
        assert!(self.server.stack.len() <= self.server.capacity);
        assert_eq!(self.server.stack.len(), self.server.owner.len());
        for b in self.server.stack.iter() {
            let o = self.server.owner_of(*b);
            assert!(
                o.is_some_and(|o| (o as usize) < self.clients.len()),
                "server block {b:?} has an invalid owner ({o:?})"
            );
        }
    }

    /// Amortised feature-gated self-check after each access.
    // lint:cold-path feature-gated deep validation, compiled out of release builds
    #[cfg(feature = "debug_invariants")]
    fn debug_validate(&mut self) {
        self.tick += 1;
        if self.server.stack.len() < 64 || self.tick.is_multiple_of(256) {
            if self.plane.lossy() {
                self.check_recoverable_invariants();
            } else {
                self.check_invariants();
            }
        }
    }

    /// Applies the side effects of one gLRU cache request made by
    /// `requester` for `block`: the replacement notification, and the
    /// share-shrink notification to the previous owner when ownership of a
    /// shared block moved. The requester's own victim is applied
    /// immediately (the notice piggybacks on its in-progress exchange);
    /// everyone else's rides the plane as an `Up` eviction notice
    /// delivered with their next successful response.
    fn apply_effect(&mut self, effect: CacheRequestEffect, block: BlockId, requester: u32) {
        if let Some((victim, owner)) = effect.replaced {
            // The victim leaves the server (the bottom level) for L_out
            // right now, whichever client gets the delayed notice.
            self.obs.on_evict(1, victim.raw());
            if owner == requester {
                Self::apply_replacement(&mut self.clients[owner as usize], victim);
            } else {
                self.plane.send(
                    owner as usize,
                    Direction::Up,
                    Message::EvictNotice { block: victim },
                );
            }
        }
        if let Some(prev) = effect.transferred_from {
            self.plane
                .send(prev as usize, Direction::Up, Message::EvictNotice { block });
        }
    }

    fn apply_replacement(client: &mut ClientState, victim: BlockId) {
        // Only the client's *server-level* metadata is affected; a block
        // it holds privately is untouched.
        if client.stack.cached_level(victim) == Some(1) {
            client.stack.evict_cached(victim);
        }
    }

    /// Applies one client directive the server's inbox delivered: a
    /// `Retrieve(b, ·, 2)` cache request or a `Demote(b, 1, 2)`
    /// instruction — both cache `block` on `requester`'s behalf.
    ///
    /// A *late* directive whose block has meanwhile been promoted back
    /// into the requester's private cache would create a double residency
    /// the requester would never learn about; it is detected, dropped and
    /// counted as a repaired violation. (Impossible on the reliable plane:
    /// directives are drained within the access that issued them.)
    fn apply_directive(&mut self, block: BlockId, requester: u32) {
        if self.clients[requester as usize].stack.cached_level(block) == Some(0) {
            self.recovery.residency_violations_detected += 1;
            self.recovery.residency_violations_repaired += 1;
            self.obs.on_fault(1, block.raw());
            return;
        }
        let effect = self.server.cache_request(block, requester);
        self.apply_effect(effect, block, requester);
    }

    /// Drains every client's directive queue into the server.
    ///
    /// The delivery batch is pooled on the protocol and taken out for the
    /// duration of the drain (applying a directive needs `&mut self`), so
    /// the steady-state drain recycles one buffer across all accesses.
    fn drain_server_inbox(&mut self) {
        let mut inbox = std::mem::take(&mut self.inbox);
        for link in 0..self.clients.len() {
            self.plane.deliver_into(link, Direction::Down, &mut inbox);
            for &msg in &inbox {
                match msg {
                    Message::CacheRequest { block, requester } => {
                        self.apply_directive(block, requester);
                    }
                    Message::Demote { block, owner, .. } => {
                        self.apply_directive(block, owner);
                    }
                    // ULC's down links carry only directives.
                    _ => {}
                }
            }
        }
        self.inbox = inbox;
    }

    /// Delivers the eviction notices riding client `c`'s response.
    /// A notice is stale — and skipped — if the client has meanwhile
    /// re-claimed the block (it owns it again).
    pub(crate) fn deliver_notices(&mut self, c: usize) {
        let mut notices = std::mem::take(&mut self.notices);
        self.plane.deliver_into(c, Direction::Up, &mut notices);
        for &msg in &notices {
            // lint:allow(plane-exhaustive) the server's Up traffic is only replacement notices; foreign kinds are dropped by design
            if let Message::EvictNotice { block: victim } = msg {
                if self.server.owner_of(victim) == Some(c as u32) {
                    continue;
                }
                Self::apply_replacement(&mut self.clients[c], victim);
            }
        }
        self.notices = notices;
    }

    /// Wipes crashed levels. A server cold restart marks every client's
    /// status table dirty: each rebuilds it via [`UlcMulti::reconcile_client`]
    /// before its next access is served.
    // lint:cold-path crash recovery rebuilds whole stacks; allocation is by design
    fn apply_crashes(&mut self) {
        let mut crashes = std::mem::take(&mut self.crash_buf);
        self.plane.take_crashes_into(&mut crashes);
        for &level in &crashes {
            if level == 0 {
                for (i, cs) in self.clients.iter_mut().enumerate() {
                    cs.stack = UniLruStack::new_with_mode(
                        vec![
                            self.config.client_capacities[i],
                            self.config.server_capacity,
                        ],
                        self.table_mode,
                    );
                    cs.dirty = false; // a cold client believes nothing
                    self.plane.purge_link(i);
                }
            } else if level == 1 {
                self.server = GlobalLru::new(self.server.capacity, self.table_mode);
                for i in 0..self.clients.len() {
                    self.plane.purge_link(i);
                    self.clients[i].dirty = true;
                }
            }
        }
        self.crash_buf = crashes;
    }

    /// One status-table reconciliation round for client `c`: the re-sync
    /// pass the protocol runs after a NACK (an authoritative response
    /// contradicting the status table) or a server cold restart.
    ///
    /// 1. **NACK sweep** — every block the client believes cached at the
    ///    server is re-validated; entries the server does not hold are
    ///    evicted from the status table (counted as stale-status hits).
    /// 2. **Conservative single-residency repair** — a block the client
    ///    holds privately while also owning the server copy violates
    ///    exclusive caching; the server copy is purged (the private copy
    ///    is authoritative — repairing toward the faster level never
    ///    loses data).
    // lint:cold-path NACK/restart reconciliation, off the steady-state access path
    pub fn reconcile_client(&mut self, c: usize) {
        self.recovery.reconciliation_rounds += 1;
        self.obs.on_reconcile(c);
        self.nack_sweep(c);
        self.repair_residency(c);
    }

    fn nack_sweep(&mut self, c: usize) {
        for b in self.clients[c].stack.level_blocks(1) {
            if !self.server.contains(b) {
                self.clients[c].stack.evict_cached(b);
                self.recovery.stale_status_hits += 1;
            }
        }
    }

    fn repair_residency(&mut self, c: usize) {
        for b in self.clients[c].stack.level_blocks(0) {
            if self.server.owner_of(b) == Some(c as u32) {
                self.server.remove(b);
                self.recovery.residency_violations_detected += 1;
                self.recovery.residency_violations_repaired += 1;
            }
        }
    }

    /// Runs a reconciliation round for every client. After
    /// [`UlcMulti::settle`] + `reconcile`, the full
    /// [`UlcMulti::check_invariants`] set holds again even after an
    /// arbitrarily faulty run.
    ///
    /// The round is phased: every client's single-residency repair runs
    /// before any status-table sweep, so a repair purging a server block
    /// another client still believes in is seen by that client's sweep
    /// (otherwise two clients could need two alternating rounds).
    pub fn reconcile(&mut self) {
        for c in 0..self.clients.len() {
            self.recovery.reconciliation_rounds += 1;
            self.obs.on_reconcile(c);
            self.repair_residency(c);
        }
        for c in 0..self.clients.len() {
            self.nack_sweep(c);
        }
    }

    /// Runs the plane forward until no message is in flight, applying
    /// directives at the server and notices at the clients.
    ///
    /// # Panics
    ///
    /// Panics if the plane fails to drain (a plane bug: delays are
    /// bounded).
    pub fn settle(&mut self) {
        let mut guard = 0u64;
        loop {
            self.drain_server_inbox();
            for c in 0..self.clients.len() {
                self.deliver_notices(c);
            }
            if self.plane.in_flight() == 0 {
                break;
            }
            self.plane.tick();
            self.apply_crashes();
            guard += 1;
            assert!(guard < 1_000_000, "message plane failed to settle");
        }
    }
}

impl<P: MessagePlane> MultiLevelPolicy for UlcMulti<P> {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(1);
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        out.reset(1);
        self.obs.begin_access();
        self.plane.tick();
        self.apply_crashes();
        // Directives from any client that became due reach the server
        // first (no-op on the reliable plane: its queues drain within the
        // access that fills them).
        self.drain_server_inbox();
        if self.clients[c].dirty {
            self.clients[c].dirty = false;
            self.reconcile_client(c);
        }

        // The demand-read exchange for this reference.
        let fate = self.plane.rpc(c);
        self.obs.on_rpc(1);
        if fate != RpcFate::Delivered {
            self.obs.on_fault(1, block.raw());
        }

        // 1. Delayed notifications arrive with this request's response —
        //    so only when the response actually made it back.
        if fate == RpcFate::Delivered {
            self.deliver_notices(c);
        }

        // 2. Reconcile: the client may believe a block is at the server
        //    although another client took ownership and it was replaced.
        //    Only an authoritative response can tell it so (a NACK); on a
        //    lossy plane the NACK triggers a full status-table re-sync.
        let in_server_actual = self.server.contains(block);
        let believed = self.clients[c].stack.cached_level(block);
        if believed == Some(1) && !in_server_actual && fate == RpcFate::Delivered {
            if self.plane.lossy() {
                self.reconcile_client(c);
            } else {
                self.clients[c].stack.evict_cached(block);
            }
        }

        // 3. The actual retrieval source: a private hit needs no network;
        //    a server hit needs the reply to arrive.
        let hit_level = if self.clients[c].stack.cached_level(block) == Some(0) {
            Some(0)
        } else if in_server_actual && fate == RpcFate::Delivered {
            Some(1)
        } else {
            None
        };
        match hit_level {
            Some(level) => self.obs.on_hit(level, block.raw()),
            None => self.obs.on_miss(block.raw()),
        }

        // 4. The client's placement decision. §3.2.1's initialisation rule
        //    applies globally: blocks with no usable history claim a
        //    server slot only while the server has free buffers (the
        //    client learns fullness from piggybacked responses — so only
        //    a delivered reply updates it). Blocks whose recency falls
        //    between the client's yardsticks always claim — that
        //    reallocation path is what Figure 5 illustrates, with gLRU
        //    arbitrating between clients.
        if self.claim_rule == ClaimRule::PaperStrict && fate == RpcFate::Delivered {
            self.clients[c]
                .stack
                .set_external_full(1, self.server.is_full());
        }
        let res = self.clients[c].stack.access_into(block, &mut self.scratch);
        for &(b, from, to) in &self.scratch.demoted {
            for m in from..to {
                self.obs.on_demote(m, b.raw());
            }
        }
        for &b in &self.scratch.evicted {
            self.obs.on_evict(1, b.raw());
        }
        let dest = match res.placed {
            Placement::Level(i) => i,
            Placement::Uncached => 2,
        };
        self.obs.on_retrieve(dest, block.raw());

        // 5. Direct the server accordingly.
        match res.placed {
            Placement::Level(0)
                // Retrieve(b, ·, 1): promotion into the private cache.
                // A block this client owns leaves the server (exclusive
                // caching, as in the single-client protocol). A block
                // owned by *another* client is shared: it stays cached at
                // the highest level among all clients' directions, so the
                // server copy is kept and refreshed for its owner. A lost
                // request never reached the server, so it serves nothing
                // and removes nothing.
                if in_server_actual && fate != RpcFate::RequestLost => {
                    match self.server.owner_of(block) {
                        Some(o) if o == c as u32 => self.server.remove(block),
                        Some(_) => self.server.refresh(block),
                        None => {}
                    }
                }
            Placement::Level(1) => {
                // Retrieve(b, ·, 2): direct the server to cache it.
                self.plane.send(
                    c,
                    Direction::Down,
                    Message::CacheRequest {
                        block,
                        requester: c as u32,
                    },
                );
            }
            _ => {}
        }
        // Demote(b, 1, 2) instructions from the client's cascade.
        for i in 0..self.scratch.demoted.len() {
            let (demoted, _, to) = self.scratch.demoted[i];
            if to == 1 {
                self.plane.send(
                    c,
                    Direction::Down,
                    Message::Demote {
                        block: demoted,
                        mru: true,
                        owner: c as u32,
                    },
                );
            }
        }
        // On the reliable plane the directives land right now, in order.
        self.drain_server_inbox();

        #[cfg(feature = "debug_invariants")]
        self.debug_validate();

        out.hit_level = hit_level;
        out.demotions.copy_from_slice(self.scratch.demotions.as_slice());
    }

    #[inline]
    fn prefetch(&self, client: ClientId, block: BlockId) {
        // Semantics-free: pulls the two table rows the upcoming access
        // will probe — the client stack's status row and the server's
        // owner row — toward the CPU cache (DESIGN.md §5i).
        if let Some(cs) = self.clients.get(client.as_usize()) {
            cs.stack.prefetch(block);
        }
        self.server.owner.prefetch(block);
    }

    fn num_levels(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "ULC"
    }

    fn fault_summary(&self) -> FaultSummary {
        let mut s = self.recovery;
        self.plane.accounting().fold_into(&mut s);
        s
    }
}

impl<P: MessagePlane> Observe for UlcMulti<P> {
    fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        &mut self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulc_hierarchy::plane::{FaultScenario, FaultyPlane};
    use ulc_hierarchy::simulate;
    use ulc_trace::synthetic;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn single_client_degenerate_case_matches_expectations() {
        // One client: the loop that fits client+server splits cleanly.
        let t = synthetic::cs(50_000); // 2500-block loop
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(1, 1250, 1250));
        let stats = simulate(&mut p, &t, t.warmup_len());
        p.check_invariants();
        assert!(stats.hit_rates()[0] > 0.45, "h = {:?}", stats.hit_rates());
        assert!(stats.hit_rates()[1] > 0.45, "h = {:?}", stats.hit_rates());
        assert!(stats.demotion_rates()[0] < 0.01);
    }

    #[test]
    fn allocation_shifts_when_demand_shifts() {
        // The Figure 5 property: server buffers re-allocate dynamically.
        // Client 0 claims the whole server first; when client 1 becomes
        // the only active client, gLRU hands the allocation over.
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(2, 50, 500));
        for round in 0..4 {
            for i in 0..600u64 {
                p.access(ClientId::new(0), b(i));
            }
            let _ = round;
        }
        assert!(
            p.server_allocation()[0] > 400,
            "alloc = {:?}",
            p.server_allocation()
        );
        for round in 0..6 {
            for i in 0..600u64 {
                p.access(ClientId::new(1), b(10_000 + i));
            }
            let _ = round;
        }
        p.check_invariants();
        let alloc = p.server_allocation();
        assert!(
            alloc[1] > 3 * alloc[0].max(1),
            "active client should own most of the server: {alloc:?}"
        );
    }

    #[test]
    fn shared_block_stays_in_server_for_other_clients() {
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(2, 1, 4));
        let shared = b(100);
        // Client 1 places `shared` at the server (cold fill: client cache
        // takes the first block, server the next).
        p.access(ClientId::new(1), b(0));
        p.access(ClientId::new(1), shared);
        assert!(p.server.contains(shared));
        assert_eq!(p.server.owner_of(shared), Some(1));
        // Client 0 reads it twice; the second read promotes it into
        // client 0's private cache. Client 0 is NOT the owner, so the
        // server keeps its copy for client 1.
        let out = p.access(ClientId::new(0), shared);
        assert_eq!(out.hit_level, Some(1));
        let out = p.access(ClientId::new(0), shared);
        assert!(p.server.contains(shared), "non-owner promotion keeps copy");
        let _ = out;
        p.check_invariants();
    }

    #[test]
    fn owner_promotion_purges_server_copy() {
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(1, 1, 4));
        p.access(ClientId::new(0), b(0)); // client cache
        p.access(ClientId::new(0), b(1)); // server
        assert!(p.server.contains(b(1)));
        // Re-access b1: recency 1 (above Y1's stamp) → promote to L1.
        let out = p.access(ClientId::new(0), b(1));
        assert_eq!(out.hit_level, Some(1));
        assert!(!p.server.contains(b(1)), "owner promotion is exclusive");
        p.check_invariants();
    }

    #[test]
    fn replacement_notification_shrinks_owner_view() {
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(2, 1, 2));
        // Client 0 fills the server with 2 blocks.
        p.access(ClientId::new(0), b(0));
        p.access(ClientId::new(0), b(1));
        p.access(ClientId::new(0), b(2));
        assert_eq!(p.server_allocation(), vec![2, 0]);
        // Client 1's traffic replaces client 0's blocks.
        p.access(ClientId::new(1), b(10));
        p.access(ClientId::new(1), b(11));
        p.access(ClientId::new(1), b(12));
        assert!(p.server_allocation()[1] > 0);
        // Client 0's next access delivers its notifications and its stack
        // still validates.
        p.access(ClientId::new(0), b(0));
        p.check_invariants();
    }

    #[test]
    fn multi_client_traces_run_clean() {
        for (name, t, clients, ccap, scap) in [
            ("httpd", synthetic::httpd_multi(40_000), 7usize, 256usize, 2048usize),
            ("openmail", synthetic::openmail(40_000, 24_000), 6, 512, 2048),
            ("db2", synthetic::db2_multi(40_000, 16_000), 8, 256, 2048),
        ] {
            let mut p = UlcMulti::new(UlcMultiConfig::uniform(clients, ccap, scap));
            let stats = simulate(&mut p, &t, t.warmup_len());
            p.check_invariants();
            assert!(
                stats.total_hit_rate() > 0.05,
                "{name}: hit rate {:.3}",
                stats.total_hit_rate()
            );
            assert_eq!(
                stats.references as usize,
                t.len() - t.warmup_len(),
                "{name}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn unknown_client_rejected() {
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(1, 2, 2));
        let _ = p.access(ClientId::new(3), b(0));
    }

    #[test]
    fn paper_strict_rule_rejects_cold_claims_into_a_full_server() {
        let mut p = UlcMulti::new(
            UlcMultiConfig::uniform(2, 1, 2).with_claim_rule(ClaimRule::PaperStrict),
        );
        // Client 0 fills its cache and the server.
        p.access(ClientId::new(0), b(0));
        p.access(ClientId::new(0), b(1));
        p.access(ClientId::new(0), b(2));
        assert_eq!(p.server_allocation(), vec![2, 0]);
        // Client 1's cold blocks fill its own cache, then go L_out: the
        // server allocation is untouched (the starvation the dynamic rule
        // exists to avoid).
        for i in 10..30u64 {
            p.access(ClientId::new(1), b(i));
        }
        assert_eq!(p.server_allocation(), vec![2, 0]);
        p.check_invariants();
    }

    #[test]
    fn dynamic_rule_lets_cold_claims_displace_stale_owners() {
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(2, 1, 2));
        p.access(ClientId::new(0), b(0));
        p.access(ClientId::new(0), b(1));
        p.access(ClientId::new(0), b(2));
        for i in 10..30u64 {
            p.access(ClientId::new(1), b(i));
        }
        assert_eq!(p.server_allocation(), vec![0, 2]);
        p.check_invariants();
    }

    #[test]
    fn ownership_transfer_notifies_previous_owner() {
        // Two clients ping-pong ownership of a shared block; neither
        // client's view of its server share may inflate.
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(2, 1, 4));
        let shared = b(50);
        for round in 0..20 {
            for c in 0..2u32 {
                p.access(ClientId::new(c), b(c as u64)); // private L1 block
                p.access(ClientId::new(c), shared);
            }
            let _ = round;
        }
        p.check_invariants();
        // The shared block has exactly one owner; each client's believed
        // server share is bounded by what it actually owns plus in-flight
        // notices (drained on next access, so after one more round-trip
        // views are tight).
        for c in 0..2u32 {
            p.access(ClientId::new(c), b(c as u64));
        }
        let owned: usize = p.server_allocation().iter().sum();
        assert_eq!(owned, p.server_len());
        for (i, client) in p.clients.iter().enumerate() {
            assert!(
                client.stack.level_len(1) <= p.server_allocation()[i] + 1,
                "client {i} view {} vs owned {}",
                client.stack.level_len(1),
                p.server_allocation()[i]
            );
        }
    }

    #[test]
    fn zero_fault_plane_is_bit_identical() {
        let t = synthetic::httpd_multi(40_000);
        let mut reliable = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048));
        let mut faulty = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
            .with_plane(FaultyPlane::new(FaultScenario::zero(31)));
        let sr = simulate(&mut reliable, &t, t.warmup_len());
        let sf = simulate(&mut faulty, &t, t.warmup_len());
        assert_eq!(sr, sf);
    }

    #[test]
    fn lossy_run_recovers_to_full_invariants() {
        let t = synthetic::httpd_multi(30_000);
        let scenario = FaultScenario::zero(7)
            .with_drop(0.05)
            .with_duplicate(0.02)
            .with_delay(0.05, 6);
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
            .with_plane(FaultyPlane::new(scenario));
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(stats.faults.messages_dropped > 0);
        p.check_recoverable_invariants();
        p.settle();
        p.reconcile();
        p.check_invariants();
        let s = p.fault_summary();
        assert_eq!(
            s.residency_violations_detected, s.residency_violations_repaired,
            "every detected violation must be repaired"
        );
    }

    #[test]
    fn server_crash_forces_status_table_rebuild() {
        let t = synthetic::httpd_multi(30_000);
        let scenario = FaultScenario::zero(12).with_crash(15_000, 1);
        let mut p = UlcMulti::new(UlcMultiConfig::uniform(7, 256, 2048))
            .with_plane(FaultyPlane::new(scenario));
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.faults.crashes, 1);
        assert!(
            stats.faults.reconciliation_rounds >= 7,
            "every client must rebuild its status table, rounds = {}",
            stats.faults.reconciliation_rounds
        );
        p.settle();
        p.reconcile();
        p.check_invariants();
        assert!(stats.total_hit_rate() > 0.0, "the hierarchy keeps serving");
    }
}
