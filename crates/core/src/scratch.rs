//! Reusable per-access scratch buffers — the zero-allocation engine core.
//!
//! Every [`crate::UniLruStack::access`] produces a variable-length set of
//! side effects: demotion transfer counts per boundary, the demoted blocks
//! with their levels, and the blocks evicted to `L_out`. Returning those in
//! freshly allocated `Vec`s (the original [`crate::StackOutcome`] shape)
//! costs several heap round-trips per reference, which dominates the
//! steady-state profile once the asymptotics (PR 1) and table constants
//! (PR 4) are fixed.
//!
//! [`AccessScratch`] holds those buffers as inline-capacity small-vectors
//! that the caller owns and reuses across accesses: warm-up may spill them
//! to the heap once (a cascade deeper than the inline capacity), but the
//! spill capacity is retained on [`AccessScratch::reset`], so a settled
//! engine never touches the allocator again — the contract DESIGN.md §5f
//! specifies and the `alloc_stats` harness in `ulc-bench` enforces.
//!
//! The buffers are plain data: reading stale contents is prevented by
//! [`AccessScratch::reset`], which every `access_into` entry point calls
//! first, so a "dirty" scratch handed from a previous access (of any
//! protocol) is always equivalent to a fresh one. The differential suite
//! `tests/scratch_vs_reference.rs` proves that bit-exactly.

use smallvec::SmallVec;
use ulc_cache::NodeHandle;
use ulc_trace::BlockId;

/// Inline capacity for per-boundary demotion counters. Hierarchies in the
/// paper have 2–3 levels; 8 boundaries cover any realistic tower without
/// spilling.
const BOUNDARIES_INLINE: usize = 8;

/// Inline capacity for per-access block lists (demoted, evicted, moved).
/// A single access demotes at most one block per boundary plus the
/// accessed block itself, so 8 is comfortably above the worst case.
const BLOCKS_INLINE: usize = 8;

/// Reusable scratch buffers for one access through the uniLRUstack.
///
/// Construct once (allocation-free), pass to
/// [`crate::UniLruStack::access_into`] (or any protocol `access_into`)
/// for every reference, and read the results between calls. The contents
/// are overwritten by each access; ownership of the buffers stays with
/// the caller so the allocator is never involved in steady state.
///
/// # Examples
///
/// ```
/// use ulc_core::{AccessScratch, UniLruStack};
/// use ulc_trace::BlockId;
///
/// let mut stack = UniLruStack::new(vec![2, 2]);
/// let mut scratch = AccessScratch::new();
/// for i in 0..8 {
///     let res = stack.access_into(BlockId::new(i), &mut scratch);
///     let _ = (res.placed, scratch.demotions.as_slice(), scratch.evicted.as_slice());
/// }
/// ```
#[derive(Debug, Default)]
pub struct AccessScratch {
    /// Demotion transfers per boundary (`levels - 1` entries after
    /// [`AccessScratch::reset`]).
    pub demotions: SmallVec<u32, BOUNDARIES_INLINE>,
    /// Demoted blocks: `(block, from_level, settled_level)`. A block
    /// crossing several boundaries appears once, with its final level.
    pub demoted: SmallVec<(BlockId, usize, usize), BLOCKS_INLINE>,
    /// Blocks evicted from the bottom level to `L_out` by this access.
    pub evicted: SmallVec<BlockId, BLOCKS_INLINE>,
    /// DemotionSearching working set: the cascade's touched entries as
    /// `(handle, level first demoted from)`. Internal to the stack walk;
    /// exposed to the crate so the cascade can run without borrowing
    /// conflicts against the public result buffers above.
    pub(crate) moved: SmallVec<(NodeHandle, usize), BLOCKS_INLINE>,
}

impl AccessScratch {
    /// Creates empty scratch buffers. Never allocates.
    pub fn new() -> Self {
        AccessScratch::default()
    }

    /// Clears every buffer and sizes the demotion counters for a
    /// hierarchy with `boundaries` level boundaries. Called by every
    /// `access_into` entry point, so dirty scratch is always equivalent
    /// to fresh scratch. Keeps spill capacity — allocation-free once the
    /// buffers have reached their high-water mark.
    pub fn reset(&mut self, boundaries: usize) {
        self.demotions.clear();
        self.demotions.resize(boundaries, 0);
        self.demoted.clear();
        self.evicted.clear();
        self.moved.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_sizes_demotions_and_clears_the_rest() {
        let mut s = AccessScratch::new();
        s.demotions.extend_from_slice(&[5, 5, 5, 5, 5]);
        s.demoted.push((BlockId::new(1), 0, 1));
        s.evicted.push(BlockId::new(2));
        s.moved.push((NodeHandle::default(), 3));
        s.reset(2);
        assert_eq!(s.demotions.as_slice(), &[0, 0]);
        assert!(s.demoted.is_empty());
        assert!(s.evicted.is_empty());
        assert!(s.moved.is_empty());
    }

    #[test]
    fn new_is_empty() {
        let s = AccessScratch::new();
        assert!(s.demotions.is_empty());
        assert!(s.demoted.is_empty());
        assert!(s.evicted.is_empty());
    }
}
