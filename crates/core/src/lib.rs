//! **ULC — Unified and Level-aware Caching**: a client-directed block
//! placement and replacement protocol for multi-level buffer caches.
//!
//! This crate is the core contribution of the reproduction of Jiang &
//! Zhang, *"ULC: A File Block Placement and Replacement Protocol to
//! Effectively Exploit Hierarchical Locality in Multi-level Buffer
//! Caches"* (ICDCS 2004).
//!
//! ## The idea
//!
//! In a client → server → disk-array hierarchy, only the first-level cache
//! sees the application's original access stream; the lower levels see a
//! locality-filtered residue that defeats LRU. ULC therefore makes **all**
//! placement decisions at the client: it ranks blocks by the **LLD-R**
//! measure (the larger of a block's *last locality distance* — the recency
//! at which it was last referenced — and its current recency) on one
//! unified LRU stack ([`UniLruStack`]), partitioned into per-level regions
//! by *yardstick* pointers. Every `Retrieve(b, i, j)` request carries a
//! level tag telling the hierarchy where the block belongs; explicit
//! `Demote(b, i, i+1)` instructions move replacement victims down. The
//! result (§4 of the paper): the aggregate-size hit rate of unified LRU,
//! hits concentrated at the fast levels, and demotion traffic reduced by
//! an order of magnitude.
//!
//! ## Entry points
//!
//! * [`UlcSingle`] — the single-client protocol over any number of levels
//!   (§3.2.1); implements `ulc_hierarchy::MultiLevelPolicy`.
//! * [`UlcMulti`] — the multi-client protocol with the server's `gLRU`
//!   allocation stack, block owners and delayed replacement notifications
//!   (§3.2.2).
//! * [`UniLruStack`] — the reusable decision engine, exposed for direct
//!   experimentation.
//! * [`reference::NaiveUlc`] — an O(n)-per-access executable
//!   specification used by the property-test suite to validate the O(1)
//!   engine.
//!
//! # Examples
//!
//! ```
//! use ulc_core::{UlcConfig, UlcSingle};
//! use ulc_hierarchy::{simulate, CostModel, UniLru};
//! use ulc_trace::synthetic;
//!
//! // The paper's headline workload shape: a looping trace (tpcc1-like)
//! // on a three-level hierarchy.
//! let trace = synthetic::cs(50_000);
//! let caps = vec![1_000, 1_000, 1_000];
//! let costs = CostModel::paper_three_level();
//!
//! let mut ulc = UlcSingle::new(UlcConfig::new(caps.clone()));
//! let mut uni = UniLru::single_client(caps);
//! let s_ulc = simulate(&mut ulc, &trace, trace.warmup_len());
//! let s_uni = simulate(&mut uni, &trace, trace.warmup_len());
//!
//! // Same aggregate hit rate, far fewer demotions, faster overall.
//! assert!(s_ulc.total_hit_rate() > 0.99);
//! assert!(s_ulc.demotion_rates()[0] < 0.05);
//! assert!(s_uni.demotion_rates()[0] > 0.95);
//! assert!(s_ulc.average_access_time(&costs) < s_uni.average_access_time(&costs));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod multi;
pub mod parallel;
pub mod reference;
pub mod scratch;
mod single;
mod stack;

pub use multi::{ClaimRule, UlcMulti, UlcMultiConfig};
pub use parallel::{simulate_sharded, ShardedReplayer};
pub use scratch::AccessScratch;
pub use single::{MessageStats, UlcConfig, UlcSingle};
pub use stack::{Placement, StackAccess, StackOutcome, UniLruStack};
