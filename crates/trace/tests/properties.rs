//! Property-based tests for the workload generators.

use proptest::prelude::*;
use ulc_trace::patterns::{
    FileSetPattern, LoopingPattern, Pattern, SequentialPattern, TemporalPattern, UniformPattern,
    WorkingSetDriftPattern, ZipfPattern,
};
use ulc_trace::{Trace, TraceStats, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every seeded generator is a pure function of its parameters.
    #[test]
    fn generators_are_deterministic(seed in 0u64..1_000, len in 1usize..300) {
        let a = UniformPattern::new(100, seed).generate(len);
        let b = UniformPattern::new(100, seed).generate(len);
        prop_assert_eq!(a, b);
        let a = ZipfPattern::new(100, 1.0, seed).generate(len);
        let b = ZipfPattern::new(100, 1.0, seed).generate(len);
        prop_assert_eq!(a, b);
        let a = TemporalPattern::new(50, 0.9, seed).generate(len);
        let b = TemporalPattern::new(50, 0.9, seed).generate(len);
        prop_assert_eq!(a, b);
        let a = WorkingSetDriftPattern::new(200, 20, seed).generate(len);
        let b = WorkingSetDriftPattern::new(200, 20, seed).generate(len);
        prop_assert_eq!(a, b);
    }

    /// Generators never step outside their declared footprint.
    #[test]
    fn footprints_are_respected(
        n in 1u64..200,
        seed in 0u64..100,
        len in 1usize..500,
    ) {
        let mut p = UniformPattern::new(n, seed);
        for _ in 0..len {
            prop_assert!(p.next_block().raw() < n);
        }
        let mut p = ZipfPattern::new(n, 1.0, seed).scrambled(seed + 1);
        for _ in 0..len {
            prop_assert!(p.next_block().raw() < n);
        }
        let mut p = LoopingPattern::new(n);
        for _ in 0..len {
            prop_assert!(p.next_block().raw() < n);
        }
    }

    /// A loop of length n visits every block exactly once per n steps.
    #[test]
    fn loop_is_a_permutation_per_cycle(n in 1u64..100, cycles in 1usize..5) {
        let trace = LoopingPattern::new(n).generate(n as usize * cycles);
        let stats = TraceStats::compute(&trace);
        prop_assert_eq!(stats.unique_blocks as u64, n);
        prop_assert_eq!(stats.max_block_refs, cycles);
    }

    /// Zipf probabilities are non-increasing in rank.
    #[test]
    fn zipf_pmf_is_monotone(n in 2usize..300, theta in 0.0f64..3.0) {
        let z = Zipf::new(n, theta);
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    /// File-set reads: every emitted block belongs to the file set, and
    /// offsets within each file never exceed the file's size.
    #[test]
    fn file_set_reads_stay_inside_files(
        files in 1u32..40,
        seed in 0u64..50,
        len in 1usize..400,
    ) {
        let total = files as u64 * 4;
        let mut p = FileSetPattern::new(files, total, 1.0, seed);
        let mut max_seen = std::collections::HashMap::new();
        for _ in 0..len {
            let b = p.next_block();
            prop_assert!(b.file().index() < files);
            let e = max_seen.entry(b.file()).or_insert(0u32);
            *e = (*e).max(b.offset());
        }
        let sum_bound: u64 = max_seen.values().map(|&m| m as u64 + 1).sum();
        prop_assert!(sum_bound <= total + files as u64);
    }

    /// Warm-up split is exact and order preserving.
    #[test]
    fn warmup_split_partitions_trace(blocks in proptest::collection::vec(0u64..50, 0..200)) {
        let t: Trace = blocks.iter().map(|&b| ulc_trace::BlockId::new(b)).collect();
        let (w, m) = t.split_warmup();
        prop_assert_eq!(w.len() + m.len(), t.len());
        prop_assert_eq!(w.len(), t.len() / 10);
        let rejoined: Vec<_> = w.iter().chain(m.iter()).collect();
        for (a, b) in rejoined.iter().zip(t.iter()) {
            prop_assert_eq!(*a, b);
        }
    }

    /// A non-wrapping sequential sweep never repeats a block.
    #[test]
    fn sequential_sweep_never_repeats(start in 0u64..1000, len in 1usize..300) {
        let t = SequentialPattern::new(start, 10).generate(len);
        prop_assert_eq!(t.unique_blocks(), len);
    }
}
