//! Property-based tests for the workload generators and the block
//! interner.

use proptest::prelude::*;
use ulc_trace::multi::interleave;
use ulc_trace::patterns::{
    FileSetPattern, LoopingPattern, Pattern, SequentialPattern, TemporalPattern, UniformPattern,
    WorkingSetDriftPattern, ZipfPattern,
};
use ulc_trace::{BlockId, BlockInterner, BlockMap, TableMode, Trace, TraceStats, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every seeded generator is a pure function of its parameters.
    #[test]
    fn generators_are_deterministic(seed in 0u64..1_000, len in 1usize..300) {
        let a = UniformPattern::new(100, seed).generate(len);
        let b = UniformPattern::new(100, seed).generate(len);
        prop_assert_eq!(a, b);
        let a = ZipfPattern::new(100, 1.0, seed).generate(len);
        let b = ZipfPattern::new(100, 1.0, seed).generate(len);
        prop_assert_eq!(a, b);
        let a = TemporalPattern::new(50, 0.9, seed).generate(len);
        let b = TemporalPattern::new(50, 0.9, seed).generate(len);
        prop_assert_eq!(a, b);
        let a = WorkingSetDriftPattern::new(200, 20, seed).generate(len);
        let b = WorkingSetDriftPattern::new(200, 20, seed).generate(len);
        prop_assert_eq!(a, b);
    }

    /// Generators never step outside their declared footprint.
    #[test]
    fn footprints_are_respected(
        n in 1u64..200,
        seed in 0u64..100,
        len in 1usize..500,
    ) {
        let mut p = UniformPattern::new(n, seed);
        for _ in 0..len {
            prop_assert!(p.next_block().raw() < n);
        }
        let mut p = ZipfPattern::new(n, 1.0, seed).scrambled(seed + 1);
        for _ in 0..len {
            prop_assert!(p.next_block().raw() < n);
        }
        let mut p = LoopingPattern::new(n);
        for _ in 0..len {
            prop_assert!(p.next_block().raw() < n);
        }
    }

    /// A loop of length n visits every block exactly once per n steps.
    #[test]
    fn loop_is_a_permutation_per_cycle(n in 1u64..100, cycles in 1usize..5) {
        let trace = LoopingPattern::new(n).generate(n as usize * cycles);
        let stats = TraceStats::compute(&trace);
        prop_assert_eq!(stats.unique_blocks as u64, n);
        prop_assert_eq!(stats.max_block_refs, cycles);
    }

    /// Zipf probabilities are non-increasing in rank.
    #[test]
    fn zipf_pmf_is_monotone(n in 2usize..300, theta in 0.0f64..3.0) {
        let z = Zipf::new(n, theta);
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    /// File-set reads: every emitted block belongs to the file set, and
    /// offsets within each file never exceed the file's size.
    #[test]
    fn file_set_reads_stay_inside_files(
        files in 1u32..40,
        seed in 0u64..50,
        len in 1usize..400,
    ) {
        let total = files as u64 * 4;
        let mut p = FileSetPattern::new(files, total, 1.0, seed);
        let mut max_seen = std::collections::HashMap::new();
        for _ in 0..len {
            let b = p.next_block();
            prop_assert!(b.file().index() < files);
            let e = max_seen.entry(b.file()).or_insert(0u32);
            *e = (*e).max(b.offset());
        }
        let sum_bound: u64 = max_seen.values().map(|&m| m as u64 + 1).sum();
        prop_assert!(sum_bound <= total + files as u64);
    }

    /// Warm-up split is exact and order preserving.
    #[test]
    fn warmup_split_partitions_trace(blocks in proptest::collection::vec(0u64..50, 0..200)) {
        let t: Trace = blocks.iter().map(|&b| ulc_trace::BlockId::new(b)).collect();
        let (w, m) = t.split_warmup();
        prop_assert_eq!(w.len() + m.len(), t.len());
        prop_assert_eq!(w.len(), t.len() / 10);
        let rejoined: Vec<_> = w.iter().chain(m.iter()).collect();
        for (a, b) in rejoined.iter().zip(t.iter()) {
            prop_assert_eq!(*a, b);
        }
    }

    /// A non-wrapping sequential sweep never repeats a block.
    #[test]
    fn sequential_sweep_never_repeats(start in 0u64..1000, len in 1usize..300) {
        let t = SequentialPattern::new(start, 10).generate(len);
        prop_assert_eq!(t.unique_blocks(), len);
    }

    /// The interner round-trips an arbitrary block stream: every
    /// reference resolves back to the block it was interned from, equal
    /// blocks share one index, distinct blocks never collide, and the
    /// dense index space is exactly `0..len`.
    #[test]
    fn interner_round_trips_arbitrary_streams(
        blocks in proptest::collection::vec(0u64..500, 0..400),
    ) {
        let mut interner = BlockInterner::new();
        let mut first_index = std::collections::HashMap::new();
        for &raw in &blocks {
            let block = BlockId::new(raw);
            let idx = interner.intern(block);
            prop_assert_eq!(interner.resolve(idx), Some(block));
            prop_assert_eq!(interner.get(block), Some(idx));
            let expect = *first_index.entry(raw).or_insert(idx);
            prop_assert_eq!(idx, expect, "same block must keep its index");
        }
        prop_assert_eq!(interner.len(), first_index.len());
        for idx in 0..interner.len() as u32 {
            let b = interner.resolve(idx).expect("dense index space has no holes");
            prop_assert_eq!(interner.get(b), Some(idx));
        }
        prop_assert_eq!(interner.resolve(interner.len() as u32), None);
    }

    /// Indices assigned so far never change as more blocks are interned
    /// incrementally, and incremental interning of a multi-client
    /// interleaved trace agrees with the one-shot `from_trace` build.
    #[test]
    fn interner_indices_are_stable_under_incremental_insertion(
        loops in proptest::collection::vec(2u64..40, 1..5),
        len in 1usize..300,
        seed in 0u64..100,
    ) {
        let patterns: Vec<Box<dyn Pattern>> = loops
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                Box::new(LoopingPattern::new(n).with_base(i as u64 * 1000)) as Box<dyn Pattern>
            })
            .collect();
        let trace = interleave(patterns, None, len, seed);
        let (oneshot, ids) = BlockInterner::from_trace(&trace);
        prop_assert_eq!(ids.len(), trace.len());

        let mut incremental = BlockInterner::new();
        let mut snapshots: Vec<(BlockId, u32)> = Vec::new();
        for (r, &expect) in trace.iter().zip(&ids) {
            let idx = incremental.intern(r.block);
            prop_assert_eq!(idx, expect, "incremental and one-shot builds agree");
            // Every index handed out earlier must still resolve the same.
            for &(b, i) in &snapshots {
                prop_assert_eq!(incremental.get(b), Some(i));
                prop_assert_eq!(incremental.resolve(i), Some(b));
            }
            if snapshots.len() < 64 {
                snapshots.push((r.block, idx));
            }
        }
        prop_assert_eq!(incremental.len(), oneshot.len());
    }

    /// Dense and hashed `BlockMap`s stay observationally equal under an
    /// arbitrary insert/remove/clear script.
    #[test]
    fn block_map_modes_agree_under_arbitrary_scripts(
        ops in proptest::collection::vec((0u8..4, 0u64..60), 0..300),
    ) {
        let mut dense: BlockMap<u64> = BlockMap::new(TableMode::Dense);
        let mut hashed: BlockMap<u64> = BlockMap::new(TableMode::Hashed);
        for (i, &(op, raw)) in ops.iter().enumerate() {
            let b = BlockId::new(raw);
            match op {
                0 | 1 => {
                    prop_assert_eq!(dense.insert(b, i as u64), hashed.insert(b, i as u64));
                }
                2 => {
                    prop_assert_eq!(dense.remove(b), hashed.remove(b));
                }
                _ => {
                    prop_assert_eq!(dense.get(b), hashed.get(b));
                    prop_assert_eq!(dense.contains_key(b), hashed.contains_key(b));
                }
            }
            prop_assert_eq!(dense.len(), hashed.len());
        }
        let mut d: Vec<(BlockId, u64)> = dense.iter().map(|(b, &v)| (b, v)).collect();
        let mut h: Vec<(BlockId, u64)> = hashed.iter().map(|(b, &v)| (b, v)).collect();
        d.sort_unstable();
        h.sort_unstable();
        prop_assert_eq!(d, h);
    }
}
