//! Descriptive statistics over traces.

use crate::Trace;
use std::collections::HashMap;

/// Summary statistics of a [`Trace`].
///
/// # Examples
///
/// ```
/// use ulc_trace::{BlockId, Trace, TraceStats};
///
/// let t = Trace::from_blocks([1u64, 2, 1, 3].map(BlockId::new));
/// let s = TraceStats::compute(&t);
/// assert_eq!(s.references, 4);
/// assert_eq!(s.unique_blocks, 3);
/// assert_eq!(s.max_block_refs, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Total number of references.
    pub references: usize,
    /// Number of distinct blocks.
    pub unique_blocks: usize,
    /// Number of clients.
    pub num_clients: u32,
    /// Highest per-block reference count.
    pub max_block_refs: usize,
    /// Mean references per distinct block.
    pub mean_block_refs: f64,
    /// Fraction of references that are re-references (not first touches).
    pub rereference_fraction: f64,
    /// Footprint in mebibytes assuming 8 KB blocks.
    pub footprint_mib: f64,
}

impl TraceStats {
    /// Computes statistics in a single pass over the trace.
    pub fn compute(trace: &Trace) -> Self {
        let mut counts: HashMap<_, usize> = HashMap::new();
        for r in trace {
            *counts.entry(r.block).or_insert(0) += 1;
        }
        let references = trace.len();
        let unique_blocks = counts.len();
        // lint:allow(determinism) max over the multiset of counts is order-independent
        let max_block_refs = counts.values().copied().max().unwrap_or(0);
        let mean_block_refs = if unique_blocks == 0 {
            0.0
        } else {
            references as f64 / unique_blocks as f64
        };
        let rereference_fraction = if references == 0 {
            0.0
        } else {
            (references - unique_blocks) as f64 / references as f64
        };
        TraceStats {
            references,
            unique_blocks,
            num_clients: trace.num_clients(),
            max_block_refs,
            mean_block_refs,
            rereference_fraction,
            footprint_mib: unique_blocks as f64 * 8.0 / 1024.0,
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} refs, {} blocks ({:.1} MiB), {} client(s), {:.2} refs/block, {:.1}% re-refs",
            self.references,
            self.unique_blocks,
            self.footprint_mib,
            self.num_clients,
            self.mean_block_refs,
            100.0 * self.rereference_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockId;

    #[test]
    fn empty_trace_has_zero_stats() {
        let s = TraceStats::compute(&Trace::new());
        assert_eq!(s.references, 0);
        assert_eq!(s.unique_blocks, 0);
        assert_eq!(s.mean_block_refs, 0.0);
        assert_eq!(s.rereference_fraction, 0.0);
    }

    #[test]
    fn rereference_fraction_of_loop() {
        let t = crate::synthetic::cs(3 * crate::synthetic::CS_BLOCKS as usize);
        let s = TraceStats::compute(&t);
        assert!((s.rereference_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_block_refs, 3);
    }

    #[test]
    fn footprint_in_mib() {
        let t = Trace::from_blocks((0..128).map(BlockId::new));
        let s = TraceStats::compute(&t);
        assert!((s.footprint_mib - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Trace::from_blocks([BlockId::new(1)]);
        assert!(!format!("{}", TraceStats::compute(&t)).is_empty());
    }
}
