//! Epoch partitioning of a multi-client reference stream for the
//! deterministic sharded replay engine (DESIGN.md §5i).
//!
//! The multi-client ULC protocol serialises every reference through one
//! global order because any access may interact with the shared server
//! level: a retrieval, a demotion, an ownership transfer or a delivered
//! eviction notice. But most references in a multi-client trace do
//! neither — they hit a block that lives in the issuing client's private
//! top level and that **no other client ever touches**. Such references
//! are server-silent: they move no messages, touch no shared state, and
//! commute bit-exactly with everything another client does in between.
//!
//! [`ReplayPlan`] classifies every reference of a trace by that
//! *static-exclusivity* criterion in two passes over the records, and
//! [`EpochRuns`] slices a trace epoch (a contiguous global-order window)
//! into per-client *runs*: for each client, the maximal prefix of its
//! epoch-local references that are statically exclusive. A run is
//! delimited by the client's first potential shared-level interaction
//! point in the window — exactly the references a worker thread may
//! speculatively advance before the bulk-synchronous executor
//! (`ulc_core::parallel`) re-serialises the remainder in global-trace
//! order. Static exclusivity is necessary but not sufficient for the
//! fast path; the executor additionally checks dynamic top-level
//! residency per reference, which only shortens the consumed prefix.
//!
//! # Examples
//!
//! ```
//! use ulc_trace::epoch::ReplayPlan;
//! use ulc_trace::{BlockId, ClientId, Trace, TraceRecord};
//!
//! let t = Trace::from_records(vec![
//!     TraceRecord::new(ClientId::new(0), BlockId::new(1)), // only client 0
//!     TraceRecord::new(ClientId::new(1), BlockId::new(2)), // shared below
//!     TraceRecord::new(ClientId::new(0), BlockId::new(2)), // shared
//! ]);
//! let plan = ReplayPlan::build(&t);
//! assert!(plan.is_exclusive(0));
//! assert!(!plan.is_exclusive(1));
//! assert!(!plan.is_exclusive(2));
//! ```

use crate::{BlockId, BlockMap, TableMode, Trace};

/// Epoch length the sharded executor uses by default: long enough that
/// the two barrier crossings per epoch vanish against the per-reference
/// work, short enough that per-client run buffers stay cache-resident.
/// Epoch boundaries never affect results — only scheduling granularity.
pub const DEFAULT_EPOCH_LEN: usize = 4096;

/// Owner sentinel for "referenced by more than one client".
const SHARED: u32 = u32::MAX;

/// Per-reference static-exclusivity classification of a whole trace.
///
/// A reference is *statically exclusive* when its block is referenced by
/// exactly one client across the entire trace. Blocks touched by two or
/// more clients — the shared-L2 interaction points — mark every one of
/// their references non-exclusive.
#[derive(Clone, Debug)]
pub struct ReplayPlan {
    /// `exclusive[i]` — record `i` references a single-client block.
    exclusive: Vec<bool>,
    num_clients: u32,
    exclusive_refs: usize,
}

impl ReplayPlan {
    /// Classifies every reference of `trace` in two passes: the first
    /// assigns each block its referencing client or the shared sentinel,
    /// the second projects that verdict onto the records.
    pub fn build(trace: &Trace) -> Self {
        let mut owner: BlockMap<u32> = BlockMap::new(TableMode::Dense);
        for r in trace.iter() {
            let c = r.client.index();
            match owner.get_mut(r.block) {
                None => {
                    owner.insert(r.block, c);
                }
                Some(o) if *o != c => *o = SHARED,
                Some(_) => {}
            }
        }
        let mut exclusive_refs = 0usize;
        let exclusive: Vec<bool> = trace
            .iter()
            .map(|r| {
                let excl = owner.get(r.block).copied() != Some(SHARED);
                exclusive_refs += excl as usize;
                excl
            })
            .collect();
        ReplayPlan {
            exclusive,
            num_clients: trace.num_clients(),
            exclusive_refs,
        }
    }

    /// References classified (the trace length).
    pub fn len(&self) -> usize {
        self.exclusive.len()
    }

    /// Returns `true` if the plan covers no references.
    pub fn is_empty(&self) -> bool {
        self.exclusive.is_empty()
    }

    /// Clients in the underlying trace.
    pub fn num_clients(&self) -> u32 {
        self.num_clients
    }

    /// Whether record `idx` references a statically exclusive block.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn is_exclusive(&self, idx: usize) -> bool {
        self.exclusive[idx]
    }

    /// Fraction of references that are statically exclusive — the upper
    /// bound on what the sharded executor can advance off the serial
    /// commit walk.
    pub fn exclusive_fraction(&self) -> f64 {
        if self.exclusive.is_empty() {
            0.0
        } else {
            self.exclusive_refs as f64 / self.exclusive.len() as f64
        }
    }

    /// Slices the epoch `start..end` of `trace` into per-client leading
    /// exclusive runs, written into `runs` (buffers are reused, so a
    /// settled caller allocates nothing per epoch).
    ///
    /// # Panics
    ///
    /// Panics if `start..end` is out of range for the trace/plan or if
    /// `runs` was sized for a different client count.
    pub fn fill_runs(&self, trace: &Trace, start: usize, end: usize, runs: &mut EpochRuns) {
        assert!(start <= end && end <= self.len(), "epoch out of range");
        assert_eq!(
            runs.runs.len(),
            self.num_clients as usize,
            "EpochRuns client count mismatch"
        );
        assert_eq!(trace.len(), self.len(), "plan built for another trace");
        for run in &mut runs.runs {
            run.clear();
        }
        runs.open.clear();
        runs.open.resize(self.num_clients as usize, true);
        for (i, r) in trace.records()[start..end].iter().enumerate() {
            let c = r.client.index() as usize;
            if runs.open[c] {
                if self.exclusive[start + i] {
                    runs.runs[c].push(RunRef { block: r.block, pos: (start + i) as u64 });
                } else {
                    runs.open[c] = false;
                }
            }
        }
    }
}

/// One reference of a per-client run: the block plus its 0-based global
/// trace position. Workers replaying a run out of global order stamp
/// the position into their observability recorder
/// (`Recorder::set_tick`) so windowed timelines stay aligned with the
/// serial tick axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunRef {
    /// The referenced block.
    pub block: BlockId,
    /// The reference's 0-based position in the global trace order.
    pub pos: u64,
}

/// Per-client leading exclusive runs of one trace epoch; the reusable
/// output buffer of [`ReplayPlan::fill_runs`].
#[derive(Clone, Debug)]
pub struct EpochRuns {
    /// `runs[c]` — client `c`'s epoch-local references up to (not
    /// including) its first non-exclusive reference in the epoch.
    runs: Vec<Vec<RunRef>>,
    /// Fill scratch: whether client `c`'s run is still growing.
    open: Vec<bool>,
}

impl EpochRuns {
    /// Creates empty run buffers for `num_clients` clients.
    pub fn new(num_clients: usize) -> Self {
        EpochRuns {
            runs: (0..num_clients).map(|_| Vec::new()).collect(),
            open: Vec::new(),
        }
    }

    /// Number of clients the buffers cover.
    pub fn num_clients(&self) -> usize {
        self.runs.len()
    }

    /// Client `c`'s leading exclusive run for the last filled epoch.
    pub fn run(&self, client: usize) -> &[RunRef] {
        &self.runs[client]
    }

    /// Mutable access to client `c`'s run buffer, so an executor can swap
    /// it into a worker cell without copying.
    pub fn run_mut(&mut self, client: usize) -> &mut Vec<RunRef> {
        &mut self.runs[client]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, TraceRecord};

    fn rec(c: u32, b: u64) -> TraceRecord {
        TraceRecord::new(ClientId::new(c), BlockId::new(b))
    }

    #[test]
    fn classification_marks_every_reference_of_a_shared_block() {
        let t = Trace::from_records(vec![
            rec(0, 10),
            rec(0, 11),
            rec(1, 20),
            rec(0, 20), // makes 20 shared, including the earlier reference
            rec(1, 21),
        ]);
        let plan = ReplayPlan::build(&t);
        assert_eq!(plan.len(), 5);
        assert!(plan.is_exclusive(0));
        assert!(plan.is_exclusive(1));
        assert!(!plan.is_exclusive(2));
        assert!(!plan.is_exclusive(3));
        assert!(plan.is_exclusive(4));
        assert_eq!(plan.exclusive_fraction(), 3.0 / 5.0);
        assert_eq!(plan.num_clients(), 2);
    }

    #[test]
    fn sparse_file_set_ids_classify_too() {
        let hi = (7u64 << 32) | 3; // above DIRECT_LIMIT, sparse tier
        let t = Trace::from_records(vec![rec(0, hi), rec(1, hi), rec(1, 5)]);
        let plan = ReplayPlan::build(&t);
        assert!(!plan.is_exclusive(0));
        assert!(!plan.is_exclusive(1));
        assert!(plan.is_exclusive(2));
    }

    #[test]
    fn runs_stop_at_the_first_interaction_point_per_client() {
        let t = Trace::from_records(vec![
            rec(0, 1), // excl
            rec(1, 2), // excl
            rec(0, 9), // shared (client 1 touches 9 later)
            rec(0, 3), // excl, but after client 0's delimiter
            rec(1, 4), // excl, still in client 1's run
            rec(1, 9), // shared delimiter for client 1
            rec(1, 5), // after the delimiter
        ]);
        let plan = ReplayPlan::build(&t);
        let mut runs = EpochRuns::new(2);
        plan.fill_runs(&t, 0, t.len(), &mut runs);
        assert_eq!(runs.run(0), &[RunRef { block: BlockId::new(1), pos: 0 }]);
        assert_eq!(
            runs.run(1),
            &[
                RunRef { block: BlockId::new(2), pos: 1 },
                RunRef { block: BlockId::new(4), pos: 4 }
            ]
        );
    }

    #[test]
    fn runs_reset_between_epochs_and_cover_only_the_window() {
        let t = Trace::from_records(vec![
            rec(0, 9), // shared below: closes client 0's run in epoch 0
            rec(0, 1),
            rec(1, 9),
            rec(0, 2), // epoch 1 starts here: run is open again
            rec(0, 3),
        ]);
        let plan = ReplayPlan::build(&t);
        let mut runs = EpochRuns::new(2);
        plan.fill_runs(&t, 0, 3, &mut runs);
        assert!(runs.run(0).is_empty());
        assert!(runs.run(1).is_empty());
        plan.fill_runs(&t, 3, 5, &mut runs);
        assert_eq!(
            runs.run(0),
            &[
                RunRef { block: BlockId::new(2), pos: 3 },
                RunRef { block: BlockId::new(3), pos: 4 }
            ]
        );
        assert!(runs.run(1).is_empty());
    }

    #[test]
    fn empty_trace_has_empty_plan() {
        let plan = ReplayPlan::build(&Trace::new());
        assert!(plan.is_empty());
        assert_eq!(plan.exclusive_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "epoch out of range")]
    fn out_of_range_epoch_rejected() {
        let t = Trace::from_records(vec![rec(0, 1)]);
        let plan = ReplayPlan::build(&t);
        let mut runs = EpochRuns::new(1);
        plan.fill_runs(&t, 0, 2, &mut runs);
    }
}
