//! Block-level I/O trace model and synthetic workload generators for the
//! ULC (Unified and Level-aware Caching) reproduction.
//!
//! The ULC paper (Jiang & Zhang, ICDCS 2004) evaluates multi-level
//! buffer-cache protocols with trace-driven simulation over workloads that
//! fall into a handful of access-pattern classes: looping,
//! temporally-clustered (LRU-friendly), uniformly random, Zipf-like and
//! mixed. This crate provides:
//!
//! * the identifier and trace types shared by the whole workspace
//!   ([`BlockId`], [`ClientId`], [`TraceRecord`], [`Trace`]);
//! * composable pattern generators in [`patterns`];
//! * the paper's named workloads, rebuilt synthetically, in [`synthetic`];
//! * multi-client trace interleaving in [`multi`];
//! * static-exclusivity classification and per-client epoch runs for the
//!   deterministic sharded replay engine in [`epoch`].
//!
//! Everything is deterministic under explicit seeds.
//!
//! # Examples
//!
//! ```
//! use ulc_trace::patterns::{Pattern, ZipfPattern};
//! use ulc_trace::TraceStats;
//!
//! let trace = ZipfPattern::new(10_000, 1.0, 42).generate(100_000);
//! let stats = TraceStats::compute(&trace);
//! assert_eq!(stats.references, 100_000);
//! assert!(stats.unique_blocks <= 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
pub mod epoch;
pub mod intern;
pub mod io;
pub mod multi;
pub mod patterns;
mod record;
mod rng;
mod stats;
pub mod synthetic;

pub use block::{blocks_for_bytes, blocks_for_mib, BlockId, ClientId, FileId, BLOCK_SIZE_BYTES};
pub use intern::{BlockInterner, BlockMap, TableMode, DIRECT_LIMIT};
pub use record::{Trace, TraceRecord};
pub use rng::{seeded_rng, TruncatedGeometric, Zipf};
pub use stats::TraceStats;
