//! Trace serialisation: a plain-text line format and JSON.
//!
//! The paper's evaluation is driven by externally collected traces
//! (`httpd`, `dev1`, `tpcc1`, …). This reproduction generates synthetic
//! stand-ins, but users who hold real block traces can feed them in
//! through this module.
//!
//! # Text format
//!
//! One reference per line: `<client> <block>` as decimal integers,
//! separated by whitespace. Lines starting with `#` and blank lines are
//! ignored. A single-column file is read as a single-client trace.
//!
//! ```text
//! # client block
//! 0 17
//! 1 42
//! ```

use crate::{BlockId, ClientId, Trace, TraceRecord};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Error parsing a text-format trace.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Reads a text-format trace from `reader` (a mutable reference works
/// too, since `Read` is implemented for `&mut R`).
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines or I/O failure.
///
/// # Examples
///
/// ```
/// let input = "# demo\n0 1\n0 2\n1 1\n";
/// let trace = ulc_trace::io::read_text(input.as_bytes())?;
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.num_clients(), 2);
/// # Ok::<(), ulc_trace::io::ParseTraceError>(())
/// ```
pub fn read_text<R: Read>(reader: R) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        let body = line.trim();
        if body.is_empty() || body.starts_with('#') {
            continue;
        }
        let mut fields = body.split_whitespace();
        let first = fields.next().expect("non-empty line has a field");
        let second = fields.next();
        if fields.next().is_some() {
            return Err(ParseTraceError {
                line: i + 1,
                message: "expected at most two fields".into(),
            });
        }
        let parse = |s: &str| -> Result<u64, ParseTraceError> {
            s.parse().map_err(|_| ParseTraceError {
                line: i + 1,
                message: format!("invalid integer {s:?}"),
            })
        };
        let record = match second {
            Some(block) => TraceRecord::new(
                ClientId::new(parse(first)? as u32),
                BlockId::new(parse(block)?),
            ),
            None => TraceRecord::single(BlockId::new(parse(first)?)),
        };
        trace.push(record);
    }
    Ok(trace)
}

/// Writes `trace` in the text format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_text<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# client block")?;
    for r in trace {
        writeln!(writer, "{} {}", r.client.index(), r.block.raw())?;
    }
    Ok(())
}

/// Serialises `trace` as JSON.
///
/// # Errors
///
/// Propagates serialisation failures.
pub fn write_json<W: Write>(trace: &Trace, writer: W) -> serde_json::Result<()> {
    serde_json::to_writer(writer, trace)
}

/// Reads a JSON trace produced by [`write_json`].
///
/// # Errors
///
/// Propagates deserialisation failures.
pub fn read_json<R: Read>(reader: R) -> serde_json::Result<Trace> {
    serde_json::from_reader(reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn text_roundtrip() {
        let t = synthetic::multi_small(500);
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn multi_client_text_roundtrip() {
        let t = synthetic::httpd_multi(300);
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(t.num_clients(), back.num_clients());
        assert_eq!(t.records(), back.records());
    }

    #[test]
    fn json_roundtrip() {
        let t = synthetic::sprite(200);
        let mut buf = Vec::new();
        write_json(&t, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn single_column_reads_as_single_client() {
        let t = read_text("5\n6\n5\n".as_bytes()).unwrap();
        assert_eq!(t.num_clients(), 1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[0].block, BlockId::new(5));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let t = read_text("# hi\n\n  \n0 1\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bad_integer_reports_line() {
        let err = read_text("0 1\nx 2\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("invalid integer"));
    }

    #[test]
    fn too_many_fields_rejected() {
        let err = read_text("0 1 2\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 1);
    }
}
