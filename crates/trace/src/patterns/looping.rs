//! Looping access patterns (`cs`-, `glimpse`- and `tpcc1`-like).
//!
//! "Traces cs and glimpse have a looping access pattern, where all blocks
//! are regularly and repeatedly accessed" (§2.2). A pure loop over `n`
//! blocks re-references every block at recency `n - 1`, which is the
//! pathological case for LRU when `n` exceeds the cache size, and the best
//! case for LLD-based ranking because the re-reference recency is constant.

use super::Pattern;
use crate::BlockId;

/// Cycles through one or more loop scopes.
///
/// With a single scope of `n` blocks this is a pure sequential loop
/// `0, 1, …, n-1, 0, 1, …`. With several scopes (as in `glimpse`, which mixes
/// loops of different lengths) each scope is swept in turn and the whole
/// schedule repeats.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{LoopingPattern, Pattern};
///
/// let mut p = LoopingPattern::with_scopes(vec![2, 3]);
/// let ids: Vec<u64> = (0..10).map(|_| p.next_block().raw()).collect();
/// // scope 0 = blocks {0,1}, scope 1 = blocks {2,3,4}
/// assert_eq!(ids, [0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct LoopingPattern {
    /// `(first_block, len)` of each scope.
    scopes: Vec<(u64, u64)>,
    scope: usize,
    pos: u64,
    base: u64,
}

impl LoopingPattern {
    /// A single loop over blocks `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        LoopingPattern::with_scopes(vec![n])
    }

    /// Several consecutive loop scopes with the given lengths; scope `k`
    /// covers the blocks right after scope `k-1`.
    ///
    /// # Panics
    ///
    /// Panics if `scopes` is empty or any scope length is zero.
    pub fn with_scopes(scopes: Vec<u64>) -> Self {
        assert!(!scopes.is_empty(), "at least one loop scope is required");
        assert!(
            scopes.iter().all(|&n| n > 0),
            "loop scopes must be non-empty"
        );
        let mut placed = Vec::with_capacity(scopes.len());
        let mut first = 0u64;
        for n in scopes {
            placed.push((first, n));
            first += n;
        }
        LoopingPattern {
            scopes: placed,
            scope: 0,
            pos: 0,
            base: 0,
        }
    }

    /// Offsets every generated block id by `base`, so several patterns can
    /// share one block space without colliding.
    #[must_use]
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Total number of distinct blocks across all scopes.
    pub fn footprint(&self) -> u64 {
        self.scopes.iter().map(|&(_, n)| n).sum()
    }
}

impl Pattern for LoopingPattern {
    fn next_block(&mut self) -> BlockId {
        let (first, len) = self.scopes[self.scope];
        let block = BlockId::new(self.base + first + self.pos);
        self.pos += 1;
        if self.pos == len {
            self.pos = 0;
            self.scope = (self.scope + 1) % self.scopes.len();
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_scope_repeats_exactly() {
        let mut p = LoopingPattern::new(4);
        let first: Vec<u64> = (0..4).map(|_| p.next_block().raw()).collect();
        let second: Vec<u64> = (0..4).map(|_| p.next_block().raw()).collect();
        assert_eq!(first, second);
        assert_eq!(first, [0, 1, 2, 3]);
    }

    #[test]
    fn every_block_has_equal_frequency_over_full_cycles() {
        let mut p = LoopingPattern::with_scopes(vec![3, 5]);
        let t = p.generate(8 * 10);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            *counts.entry(r.block).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 8);
        assert!(counts.values().all(|&c| c == 10));
    }

    #[test]
    fn footprint_sums_scopes() {
        assert_eq!(LoopingPattern::with_scopes(vec![2, 3, 4]).footprint(), 9);
    }

    #[test]
    fn base_shifts_ids() {
        let mut p = LoopingPattern::new(2).with_base(100);
        assert_eq!(p.next_block().raw(), 100);
        assert_eq!(p.next_block().raw(), 101);
    }

    #[test]
    fn reuse_recency_is_loop_length_minus_one() {
        // Every re-reference in a pure loop over n blocks happens after the
        // n-1 other blocks have been touched — the defining property the
        // paper exploits.
        let n = 6u64;
        let mut p = LoopingPattern::new(n);
        let t = p.generate(3 * n as usize);
        for (i, r) in t.iter().enumerate().skip(n as usize) {
            let prev = i - n as usize;
            assert_eq!(t.records()[prev].block, r.block);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_scope_rejected() {
        let _ = LoopingPattern::with_scopes(vec![3, 0]);
    }
}
