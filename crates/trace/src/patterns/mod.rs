//! Access-pattern generators.
//!
//! §2.2 of the paper classifies I/O reference streams into a small number of
//! pattern families — looping, temporally-clustered (LRU-friendly), uniform
//! random, Zipf-like and mixed — and explains every experimental result in
//! those terms. Each family lives in its own module here; the
//! [`crate::synthetic`] module composes them into the paper's named traces.

mod file;
mod looping;
mod mixed;
mod random;
mod sequential;
mod temporal;
mod working_set;
mod zipf;

pub use file::FileSetPattern;
pub use looping::LoopingPattern;
pub use mixed::{MixedPattern, Phase};
pub use random::UniformPattern;
pub use sequential::SequentialPattern;
pub use temporal::TemporalPattern;
pub use working_set::WorkingSetDriftPattern;
pub use zipf::ZipfPattern;

use crate::{BlockId, Trace, TraceRecord};

/// A stateful generator of block references.
///
/// Implementors produce one [`BlockId`] per call; all randomness is internal
/// and seeded, so a pattern value is a deterministic stream.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{LoopingPattern, Pattern};
///
/// let mut p = LoopingPattern::new(3);
/// let ids: Vec<u64> = (0..6).map(|_| p.next_block().raw()).collect();
/// assert_eq!(ids, [0, 1, 2, 0, 1, 2]);
/// ```
pub trait Pattern {
    /// Produces the next block reference of the stream.
    fn next_block(&mut self) -> BlockId;

    /// Generates a single-client [`Trace`] of `len` references.
    fn generate(&mut self, len: usize) -> Trace
    where
        Self: Sized,
    {
        (0..len).map(|_| self.next_block()).collect()
    }
}

impl Pattern for Box<dyn Pattern> {
    fn next_block(&mut self) -> BlockId {
        (**self).next_block()
    }
}

/// Generates a trace by drawing `len` references from a boxed pattern.
///
/// Useful when the pattern is held as a trait object.
pub fn generate_boxed(pattern: &mut dyn Pattern, len: usize) -> Trace {
    (0..len)
        .map(|_| TraceRecord::single(pattern.next_block()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_boxed_matches_generate() {
        let mut a = LoopingPattern::new(5);
        let mut b: Box<dyn Pattern> = Box::new(LoopingPattern::new(5));
        assert_eq!(a.generate(17), generate_boxed(b.as_mut(), 17));
    }

    #[test]
    fn boxed_pattern_implements_pattern() {
        let mut b: Box<dyn Pattern> = Box::new(LoopingPattern::new(2));
        assert_eq!(b.next_block(), BlockId::new(0));
        assert_eq!(b.next_block(), BlockId::new(1));
        assert_eq!(b.next_block(), BlockId::new(0));
    }
}
