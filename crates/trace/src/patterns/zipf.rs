//! Zipf-like access pattern (the paper's `zipf` trace).
//!
//! "In trace zipf only a few blocks are frequently accessed. Formally, the
//! probability of a reference to the *i*th block is proportional to 1/i.
//! Zipf-like access patterns … are typical for file references in Web
//! servers" (§2.2).

use super::Pattern;
use crate::{seeded_rng, BlockId, Zipf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Draws blocks from a Zipf distribution over `0..n`.
///
/// By default rank `r` maps to block id `r` (block 0 hottest). With
/// [`ZipfPattern::scrambled`] the rank→block mapping is a seeded random
/// permutation, so popularity is not correlated with id order — closer to a
/// real web-server file set.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{Pattern, ZipfPattern};
///
/// let mut p = ZipfPattern::new(1000, 1.0, 7);
/// assert!(p.next_block().raw() < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfPattern {
    dist: Zipf,
    mapping: Option<Vec<u64>>,
    base: u64,
    rng: StdRng,
}

impl ZipfPattern {
    /// Zipf(θ = `theta`) references over blocks `0..n`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        ZipfPattern {
            dist: Zipf::new(n as usize, theta),
            mapping: None,
            base: 0,
            rng: seeded_rng(seed),
        }
    }

    /// Scrambles the rank→block mapping with a seeded permutation.
    #[must_use]
    pub fn scrambled(mut self, seed: u64) -> Self {
        let mut mapping: Vec<u64> = (0..self.dist.len() as u64).collect();
        mapping.shuffle(&mut seeded_rng(seed));
        self.mapping = Some(mapping);
        self
    }

    /// Offsets every generated block id by `base`.
    #[must_use]
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Number of distinct blocks that can be referenced.
    pub fn footprint(&self) -> u64 {
        self.dist.len() as u64
    }
}

impl Pattern for ZipfPattern {
    fn next_block(&mut self) -> BlockId {
        let rank = self.dist.sample(&mut self.rng);
        let id = match &self.mapping {
            Some(m) => m[rank],
            None => rank as u64,
        };
        BlockId::new(self.base + id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = ZipfPattern::new(500, 1.0, 3).generate(100);
        let b = ZipfPattern::new(500, 1.0, 3).generate(100);
        assert_eq!(a, b);
    }

    #[test]
    fn head_dominates_tail() {
        let t = ZipfPattern::new(10_000, 1.0, 5).generate(50_000);
        let head = t.iter().filter(|r| r.block.raw() < 100).count();
        let tail = t.iter().filter(|r| r.block.raw() >= 5_000).count();
        assert!(
            head > 5 * tail,
            "head = {head}, tail = {tail}: Zipf head should dominate"
        );
    }

    #[test]
    fn scrambled_preserves_footprint_and_skew() {
        let mut p = ZipfPattern::new(1000, 1.0, 5).scrambled(6);
        let t = p.generate(50_000);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            assert!(r.block.raw() < 1000);
            *counts.entry(r.block).or_insert(0usize) += 1;
        }
        // The hottest block still receives ~ 1/H(1000) ~ 13% of references.
        let max = *counts.values().max().unwrap();
        assert!(max > 50_000 / 20, "max = {max}");
    }

    #[test]
    fn scrambled_moves_the_hot_block() {
        // With very high skew almost all references hit the hottest block;
        // the scramble should (with overwhelming probability for this seed)
        // move it away from id 0.
        let mut p = ZipfPattern::new(1000, 3.0, 1).scrambled(99);
        let t = p.generate(1000);
        let zero_hits = t.iter().filter(|r| r.block.raw() == 0).count();
        assert!(zero_hits < 100);
    }
}
