//! One-shot sequential access pattern.
//!
//! A sequential sweep never re-references a block (until an enclosing mixed
//! pattern restarts it), so caching its blocks is pure pollution — the
//! component of the paper's `multi` trace that rewards scan resistance.

use super::Pattern;
use crate::BlockId;

/// Sweeps blocks `start..start+n` in order, then keeps going into fresh
/// block ids (never wrapping), so every reference is a cold miss.
///
/// Use [`SequentialPattern::wrapping`] for a sweep that restarts instead —
/// which makes it a pure loop of length `n`.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{Pattern, SequentialPattern};
///
/// let mut p = SequentialPattern::new(0, 3);
/// let ids: Vec<u64> = (0..5).map(|_| p.next_block().raw()).collect();
/// assert_eq!(ids, [0, 1, 2, 3, 4]); // keeps going past n
/// ```
#[derive(Clone, Debug)]
pub struct SequentialPattern {
    next: u64,
    start: u64,
    n: u64,
    wrap: bool,
}

impl SequentialPattern {
    /// A non-wrapping sweep beginning at `start`; `n` is only advisory (the
    /// nominal footprint reported by [`SequentialPattern::footprint`]).
    pub fn new(start: u64, n: u64) -> Self {
        SequentialPattern {
            next: start,
            start,
            n,
            wrap: false,
        }
    }

    /// Makes the sweep wrap around after `n` blocks.
    ///
    /// # Panics
    ///
    /// Panics if the nominal footprint `n` is zero.
    #[must_use]
    pub fn wrapping(mut self) -> Self {
        assert!(self.n > 0, "wrapping sweep needs a non-empty footprint");
        self.wrap = true;
        self
    }

    /// Nominal footprint of the sweep.
    pub fn footprint(&self) -> u64 {
        self.n
    }
}

impl Pattern for SequentialPattern {
    fn next_block(&mut self) -> BlockId {
        let block = BlockId::new(self.next);
        self.next += 1;
        if self.wrap && self.next == self.start + self.n {
            self.next = self.start;
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_wrapping_never_repeats() {
        let t = SequentialPattern::new(10, 5).generate(100);
        assert_eq!(t.unique_blocks(), 100);
        assert_eq!(t.records()[0].block.raw(), 10);
        assert_eq!(t.records()[99].block.raw(), 109);
    }

    #[test]
    fn wrapping_is_a_loop() {
        let t = SequentialPattern::new(3, 4).wrapping().generate(12);
        let ids: Vec<u64> = t.iter().map(|r| r.block.raw()).collect();
        assert_eq!(ids, [3, 4, 5, 6, 3, 4, 5, 6, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn wrapping_zero_footprint_rejected() {
        let _ = SequentialPattern::new(0, 0).wrapping();
    }
}
