//! Mixed access pattern (the paper's `multi` trace).
//!
//! "Trace multi has an access pattern mixed with sequential, looping and
//! probabilistic references" (§2.2). A [`MixedPattern`] cycles through a
//! list of phases, each of which runs an inner pattern for a fixed number of
//! references before handing over to the next.

use super::Pattern;
use crate::BlockId;

/// One phase of a mixed workload: run `pattern` for `len` references.
pub struct Phase {
    /// The pattern active during this phase.
    pub pattern: Box<dyn Pattern>,
    /// How many references the phase lasts.
    pub len: usize,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(pattern: Box<dyn Pattern>, len: usize) -> Self {
        assert!(len > 0, "phase length must be positive");
        Phase { pattern, len }
    }
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase").field("len", &self.len).finish()
    }
}

/// Cycles through phases, producing each phase's stream in turn.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{LoopingPattern, MixedPattern, Pattern, Phase, SequentialPattern};
///
/// let mut p = MixedPattern::new(vec![
///     Phase::new(Box::new(LoopingPattern::new(2)), 2),
///     Phase::new(Box::new(SequentialPattern::new(100, 10)), 3),
/// ]);
/// let ids: Vec<u64> = (0..7).map(|_| p.next_block().raw()).collect();
/// assert_eq!(ids, [0, 1, 100, 101, 102, 0, 1]);
/// ```
#[derive(Debug)]
pub struct MixedPattern {
    phases: Vec<Phase>,
    current: usize,
    emitted: usize,
}

impl MixedPattern {
    /// Creates a mixed pattern from its phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "at least one phase is required");
        MixedPattern {
            phases,
            current: 0,
            emitted: 0,
        }
    }
}

impl Pattern for MixedPattern {
    fn next_block(&mut self) -> BlockId {
        if self.emitted == self.phases[self.current].len {
            self.emitted = 0;
            self.current = (self.current + 1) % self.phases.len();
        }
        self.emitted += 1;
        self.phases[self.current].pattern.next_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{LoopingPattern, UniformPattern};

    #[test]
    fn phases_alternate() {
        let mut p = MixedPattern::new(vec![
            Phase::new(Box::new(LoopingPattern::new(3)), 3),
            Phase::new(Box::new(LoopingPattern::new(2).with_base(10)), 2),
        ]);
        let ids: Vec<u64> = (0..10).map(|_| p.next_block().raw()).collect();
        assert_eq!(ids, [0, 1, 2, 10, 11, 0, 1, 2, 10, 11]);
    }

    #[test]
    fn inner_pattern_state_persists_across_visits() {
        // The looping phase resumes where it stopped, not from scratch.
        let mut p = MixedPattern::new(vec![
            Phase::new(Box::new(LoopingPattern::new(4)), 2),
            Phase::new(Box::new(LoopingPattern::new(1).with_base(99)), 1),
        ]);
        let ids: Vec<u64> = (0..6).map(|_| p.next_block().raw()).collect();
        assert_eq!(ids, [0, 1, 99, 2, 3, 99]);
    }

    #[test]
    fn deterministic_with_seeded_phases() {
        let make = || {
            MixedPattern::new(vec![
                Phase::new(Box::new(UniformPattern::new(50, 7)), 10),
                Phase::new(Box::new(LoopingPattern::new(5).with_base(100)), 5),
            ])
        };
        assert_eq!(make().generate(200), make().generate(200));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        let _ = MixedPattern::new(vec![]);
    }
}
