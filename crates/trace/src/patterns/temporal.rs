//! Temporally-clustered (LRU-friendly, `sprite`-like) access pattern.
//!
//! "Trace sprite has a temporally-clustered access pattern, where blocks
//! accessed more recently are the ones more likely to be accessed soon. It
//! is an LRU-friendly pattern" (§2.2).
//!
//! The generator keeps its own LRU stack of all `n` blocks and, at every
//! step, samples a *stack depth* from a distribution biased toward small
//! depths, references the block found there and moves it to the top. The
//! resulting stream has exactly the recency distribution that makes LRU
//! perform well.

use super::Pattern;
use crate::{seeded_rng, BlockId, TruncatedGeometric};
use rand::rngs::StdRng;
use ulc_cache::RecencyList;

/// LRU-friendly stream via stack-depth sampling.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{Pattern, TemporalPattern};
///
/// let mut p = TemporalPattern::new(100, 0.95, 11);
/// assert!(p.next_block().raw() < 100);
/// ```
#[derive(Clone, Debug)]
pub struct TemporalPattern {
    /// Blocks ordered by recency; rank 0 is most recent. The indexed
    /// list makes each step O(log n) where the former `Vec` stack paid
    /// O(n) to find and splice the sampled depth.
    stack: RecencyList,
    n: u64,
    depth_dist: TruncatedGeometric,
    base: u64,
    rng: StdRng,
}

impl TemporalPattern {
    /// Clustered references over blocks `0..n` with geometric decay `q`
    /// (larger `q` ⇒ deeper, less clustered accesses), seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `q` is outside `(0, 1)`.
    pub fn new(n: u64, q: f64, seed: u64) -> Self {
        assert!(n > 0, "block universe must be non-empty");
        // Seed the stack in id order: block 0 on top, as before.
        let mut stack = RecencyList::new(n as usize);
        for block in (0..n as usize).rev() {
            stack.move_to_front(block);
        }
        TemporalPattern {
            stack,
            n,
            depth_dist: TruncatedGeometric::new(n as usize, q),
            base: 0,
            rng: seeded_rng(seed),
        }
    }

    /// Offsets every generated block id by `base`.
    #[must_use]
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Number of distinct blocks that can be referenced.
    pub fn footprint(&self) -> u64 {
        self.n
    }
}

impl Pattern for TemporalPattern {
    fn next_block(&mut self) -> BlockId {
        let depth = self.depth_dist.sample(&mut self.rng);
        let block = self.stack.select(depth).expect("depth within stack");
        self.stack.move_to_front(block);
        BlockId::new(self.base + block as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Measures the LRU stack distance of every re-reference in `blocks`.
    fn stack_distances(blocks: &[u64]) -> Vec<usize> {
        let mut stack: Vec<u64> = Vec::new();
        let mut out = Vec::new();
        for &b in blocks {
            if let Some(pos) = stack.iter().position(|&x| x == b) {
                out.push(pos);
                stack.remove(pos);
            }
            stack.insert(0, b);
        }
        out
    }

    #[test]
    fn deterministic_under_seed() {
        let a = TemporalPattern::new(200, 0.9, 4).generate(500);
        let b = TemporalPattern::new(200, 0.9, 4).generate(500);
        assert_eq!(a, b);
    }

    #[test]
    fn most_rereferences_have_small_stack_distance() {
        let t = TemporalPattern::new(500, 0.9, 8).generate(20_000);
        let blocks: Vec<u64> = t.iter().map(|r| r.block.raw()).collect();
        let dists = stack_distances(&blocks);
        let small = dists.iter().filter(|&&d| d < 50).count();
        let frac = small as f64 / dists.len() as f64;
        assert!(frac > 0.9, "frac = {frac}: stream should be LRU-friendly");
    }

    #[test]
    fn touches_a_broad_set_of_blocks_eventually() {
        let t = TemporalPattern::new(100, 0.98, 2).generate(50_000);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for r in &t {
            *counts.entry(r.block.raw()).or_insert(0) += 1;
        }
        assert!(counts.len() > 90, "unique = {}", counts.len());
    }

    #[test]
    fn stays_in_range() {
        let mut p = TemporalPattern::new(7, 0.5, 1).with_base(50);
        for _ in 0..200 {
            let b = p.next_block().raw();
            assert!((50..57).contains(&b));
        }
    }
}
