//! Drifting working-set pattern (`dev1`-like desktop workload).
//!
//! The paper's `dev1` trace is 15 days of desktop use — editor, compiler,
//! IDE, browser, email — over a 600 MB data set with only ~100 K references
//! (§4.2). The defining property is a modest, temporally clustered working
//! set that *drifts* across a much larger universe as the user switches
//! activities, plus occasional sequential bursts (builds, file copies).

use super::Pattern;
use crate::{seeded_rng, BlockId, TruncatedGeometric};
use rand::rngs::StdRng;
use rand::Rng;

/// Temporally clustered references inside a window that slowly slides over
/// a large block universe, with occasional sequential bursts.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{Pattern, WorkingSetDriftPattern};
///
/// let mut p = WorkingSetDriftPattern::new(10_000, 500, 13);
/// assert!(p.next_block().raw() < 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct WorkingSetDriftPattern {
    universe: u64,
    window: u64,
    window_start: u64,
    /// Recency stack *within* the window (block offsets relative to start).
    stack: Vec<u64>,
    depth_dist: TruncatedGeometric,
    /// Remaining length of an in-progress sequential burst, and its cursor.
    burst: Option<(u64, u64)>,
    /// Probability of starting a burst at any reference.
    burst_prob: f64,
    /// Probability of the window drifting by one block at any reference.
    drift_prob: f64,
    rng: StdRng,
}

impl WorkingSetDriftPattern {
    /// A working set of `window` blocks drifting over `universe` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or larger than `universe`.
    pub fn new(universe: u64, window: u64, seed: u64) -> Self {
        assert!(window > 0, "working set must be non-empty");
        assert!(window <= universe, "working set must fit in the universe");
        WorkingSetDriftPattern {
            universe,
            window,
            window_start: 0,
            stack: (0..window).collect(),
            depth_dist: TruncatedGeometric::new(window as usize, 0.97),
            burst: None,
            burst_prob: 0.002,
            drift_prob: 0.02,
            rng: seeded_rng(seed),
        }
    }

    /// Overrides the burst and drift probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn with_rates(mut self, burst_prob: f64, drift_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&burst_prob), "probability range");
        assert!((0.0..=1.0).contains(&drift_prob), "probability range");
        self.burst_prob = burst_prob;
        self.drift_prob = drift_prob;
        self
    }

    /// Overrides the in-window stack-depth decay `q` (default 0.97).
    /// Values close to 1 flatten the distribution, spreading re-references
    /// across the whole window.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    #[must_use]
    pub fn with_depth_decay(mut self, q: f64) -> Self {
        self.depth_dist = TruncatedGeometric::new(self.window as usize, q);
        self
    }

    /// Size of the whole block universe.
    pub fn footprint(&self) -> u64 {
        self.universe
    }
}

impl Pattern for WorkingSetDriftPattern {
    fn next_block(&mut self) -> BlockId {
        // Continue an in-progress sequential burst first.
        if let Some((remaining, cursor)) = self.burst.take() {
            if remaining > 1 {
                self.burst = Some((remaining - 1, cursor + 1));
            }
            return BlockId::new(cursor % self.universe);
        }
        // Maybe start a burst somewhere random in the universe.
        if self.rng.gen::<f64>() < self.burst_prob {
            let len = self.rng.gen_range(32..256u64);
            let start = self.rng.gen_range(0..self.universe);
            self.burst = Some((len - 1, start + 1));
            return BlockId::new(start % self.universe);
        }
        // Maybe drift the window forward by a step.
        if self.rng.gen::<f64>() < self.drift_prob {
            let step = self.rng.gen_range(1..=self.window / 8 + 1);
            self.window_start = (self.window_start + step) % self.universe;
        }
        // Clustered access within the window.
        let depth = self.depth_dist.sample(&mut self.rng);
        let offset = self.stack.remove(depth);
        self.stack.insert(0, offset);
        BlockId::new((self.window_start + offset) % self.universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_universe() {
        let mut p = WorkingSetDriftPattern::new(1000, 100, 1);
        for _ in 0..10_000 {
            assert!(p.next_block().raw() < 1000);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = WorkingSetDriftPattern::new(5000, 200, 3).generate(2000);
        let b = WorkingSetDriftPattern::new(5000, 200, 3).generate(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn drift_covers_more_than_the_initial_window() {
        let t = WorkingSetDriftPattern::new(50_000, 500, 5).generate(100_000);
        assert!(
            t.unique_blocks() > 1000,
            "unique = {}: window should drift",
            t.unique_blocks()
        );
    }

    #[test]
    fn without_drift_or_bursts_stays_in_window() {
        let mut p = WorkingSetDriftPattern::new(1000, 50, 7).with_rates(0.0, 0.0);
        for _ in 0..5000 {
            assert!(p.next_block().raw() < 50);
        }
    }

    #[test]
    fn bursts_produce_sequential_runs() {
        let mut p = WorkingSetDriftPattern::new(100_000, 100, 11).with_rates(1.0, 0.0);
        // With burst_prob = 1 the first reference starts a burst.
        let a = p.next_block().raw();
        let b = p.next_block().raw();
        assert_eq!(b, (a + 1) % 100_000);
    }
}
