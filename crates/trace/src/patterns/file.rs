//! File-set access pattern (`httpd`-like web-server workload).
//!
//! The paper's `httpd` trace serves 13,457 files totalling 524 MB from a
//! 7-node web server (§4.2). A web request reads one file front-to-back, so
//! the block stream is a Zipf-popular choice of file followed by a
//! sequential run over that file's blocks. [`FileSetPattern`] models exactly
//! that: a seeded synthetic file set with log-normal-ish sizes and Zipf file
//! popularity.

use super::Pattern;
use crate::{seeded_rng, BlockId, FileId, Zipf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Whole-file sequential reads with Zipf file popularity.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{FileSetPattern, Pattern};
///
/// let mut p = FileSetPattern::new(100, 4096, 1.0, 3);
/// let first = p.next_block();
/// let second = p.next_block();
/// // Inside one file the read is sequential.
/// if first.file() == second.file() {
///     assert_eq!(second.offset(), first.offset() + 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FileSetPattern {
    /// Blocks per file, indexed by popularity rank.
    file_blocks: Vec<u32>,
    /// rank → actual file id (scrambled so popularity ≠ id order).
    file_of_rank: Vec<u32>,
    popularity: Zipf,
    /// Currently streaming file: (file rank, next offset).
    current: Option<(usize, u32)>,
    /// Every `churn_interval` file selections, a hot rank and a random
    /// rank swap files: popularity drifts over time. 0 = static.
    churn_interval: u64,
    selections: u64,
    /// With probability `recency_bias`, the next file is re-picked from
    /// the `recent` window instead of the popularity distribution.
    recency_bias: f64,
    recent: std::collections::VecDeque<usize>,
    recent_window: usize,
    rng: StdRng,
}

impl FileSetPattern {
    /// Builds a file set of `num_files` files whose sizes are drawn so the
    /// total is about `total_blocks` blocks, with Zipf(θ=`theta`) popularity.
    ///
    /// Sizes follow a heavy-tailed distribution (most files a few blocks,
    /// a few large ones), matching web-content size distributions.
    ///
    /// # Panics
    ///
    /// Panics if `num_files` is zero or `total_blocks < num_files`.
    pub fn new(num_files: u32, total_blocks: u64, theta: f64, seed: u64) -> Self {
        assert!(num_files > 0, "file set must be non-empty");
        assert!(
            total_blocks >= num_files as u64,
            "need at least one block per file"
        );
        let mut rng = seeded_rng(seed);
        // Draw raw sizes from an exponentiated uniform (heavy tail), then
        // rescale to hit total_blocks while keeping every file >= 1 block.
        let raw: Vec<f64> = (0..num_files)
            .map(|_| (-(rng.gen::<f64>()).ln()).exp().min(1e4))
            .collect();
        let raw_sum: f64 = raw.iter().sum();
        let spare = total_blocks - num_files as u64;
        let mut file_blocks: Vec<u32> = raw
            .iter()
            .map(|&w| 1 + ((w / raw_sum) * spare as f64) as u32)
            .collect();
        // Fix rounding drift on the largest file.
        let assigned: u64 = file_blocks.iter().map(|&b| b as u64).sum();
        if assigned < total_blocks {
            let max_idx = (0..num_files as usize)
                .max_by_key(|&i| file_blocks[i])
                .expect("non-empty");
            file_blocks[max_idx] += (total_blocks - assigned) as u32;
        }
        let mut file_of_rank: Vec<u32> = (0..num_files).collect();
        file_of_rank.shuffle(&mut rng);
        FileSetPattern {
            file_blocks,
            file_of_rank,
            popularity: Zipf::new(num_files as usize, theta),
            current: None,
            churn_interval: 0,
            selections: 0,
            recency_bias: 0.0,
            recent: std::collections::VecDeque::new(),
            recent_window: 0,
            rng,
        }
    }

    /// Enables flash-crowd recency: with probability `bias` a request
    /// re-reads one of the last `window` distinct files instead of
    /// sampling the popularity distribution. Web request streams are
    /// temporally clustered on top of their Zipf popularity.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]` or `window` is zero.
    #[must_use]
    pub fn with_recency_bias(mut self, bias: f64, window: usize) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias must lie in [0, 1]");
        assert!(window > 0, "recency window must be non-empty");
        self.recency_bias = bias;
        self.recent_window = window;
        self
    }

    /// Enables popularity churn: every `interval` file selections, a file
    /// from the hot head of the ranking trades places with a random file —
    /// yesterday's front-page article cools off, fresh content heats up.
    /// Web-server popularity is never static; this is what makes
    /// frequency-based replacement (MQ) "slow to respond to pattern
    /// changes" (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn with_popularity_churn(mut self, interval: u64) -> Self {
        assert!(interval > 0, "churn interval must be positive");
        self.churn_interval = interval;
        self
    }

    /// Replaces the request-stream RNG while keeping the file-set structure.
    ///
    /// Two patterns built with the same constructor `seed` but different
    /// request seeds share an identical file set (sizes and popularity
    /// ranking) while issuing different request streams — how the 7 clients
    /// of the `httpd` workload share data.
    #[must_use]
    pub fn with_request_seed(mut self, seed: u64) -> Self {
        self.rng = seeded_rng(seed);
        self.current = None;
        self
    }

    /// Total number of distinct blocks in the file set.
    pub fn footprint(&self) -> u64 {
        self.file_blocks.iter().map(|&b| b as u64).sum()
    }

    /// Number of files in the set.
    pub fn num_files(&self) -> u32 {
        self.file_blocks.len() as u32
    }
}

impl Pattern for FileSetPattern {
    fn next_block(&mut self) -> BlockId {
        let (rank, offset) = match self.current.take() {
            Some(cur) => cur,
            None => {
                self.selections += 1;
                if self.churn_interval > 0 && self.selections.is_multiple_of(self.churn_interval) {
                    let n = self.file_of_rank.len();
                    let hot = self.rng.gen_range(0..(n / 10).max(1));
                    let other = self.rng.gen_range(0..n);
                    // A file keeps its size; only its popularity moves.
                    self.file_of_rank.swap(hot, other);
                    self.file_blocks.swap(hot, other);
                }
                let rank = if !self.recent.is_empty()
                    && self.rng.gen::<f64>() < self.recency_bias
                {
                    self.recent[self.rng.gen_range(0..self.recent.len())]
                } else {
                    self.popularity.sample(&mut self.rng)
                };
                if self.recent_window > 0 && !self.recent.contains(&rank) {
                    self.recent.push_back(rank);
                    if self.recent.len() > self.recent_window {
                        self.recent.pop_front();
                    }
                }
                (rank, 0)
            }
        };
        let block = BlockId::in_file(FileId::new(self.file_of_rank[rank]), offset);
        let next_offset = offset + 1;
        if next_offset < self.file_blocks[rank] {
            self.current = Some((rank, next_offset));
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn footprint_matches_request() {
        let p = FileSetPattern::new(50, 5000, 1.0, 1);
        assert_eq!(p.footprint(), 5000);
        assert_eq!(p.num_files(), 50);
    }

    #[test]
    fn every_file_has_at_least_one_block() {
        let p = FileSetPattern::new(100, 100, 1.0, 2);
        assert!(p.file_blocks.iter().all(|&b| b >= 1));
        assert_eq!(p.footprint(), 100);
    }

    #[test]
    fn reads_within_a_file_are_sequential_from_zero() {
        let mut p = FileSetPattern::new(20, 2000, 1.0, 3);
        let mut last: Option<BlockId> = None;
        for _ in 0..5000 {
            let b = p.next_block();
            match last {
                Some(prev) if prev.file() == b.file() && b.offset() != 0 => {
                    assert_eq!(b.offset(), prev.offset() + 1);
                }
                _ => assert_eq!(b.offset(), 0, "a new file read starts at offset 0"),
            }
            last = Some(b);
        }
    }

    #[test]
    fn popular_files_dominate() {
        let mut p = FileSetPattern::new(1000, 10_000, 1.0, 4);
        let mut file_reads: HashMap<FileId, usize> = HashMap::new();
        let mut prev_file = None;
        for _ in 0..100_000 {
            let b = p.next_block();
            if prev_file != Some(b.file()) || b.offset() == 0 {
                *file_reads.entry(b.file()).or_insert(0) += 1;
            }
            prev_file = Some(b.file());
        }
        let mut counts: Vec<usize> = file_reads.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10 files should take a large share of all file-open events.
        let total: usize = counts.iter().sum();
        let top10: usize = counts.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.15,
            "top10 share = {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = FileSetPattern::new(30, 300, 1.0, 9).generate(1000);
        let b = FileSetPattern::new(30, 300, 1.0, 9).generate(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_moves_popularity_but_preserves_footprint() {
        let make = |interval| {
            FileSetPattern::new(100, 1000, 1.2, 4)
                .with_popularity_churn(interval)
                .generate(60_000)
        };
        let churned = make(50);
        // Footprint never grows beyond the declared set (a file keeps its
        // size when its rank moves).
        assert!(churned.unique_blocks() <= 1000);
        // The set of files receiving the most traffic differs between the
        // first and second half: popularity drifted.
        let halves: Vec<std::collections::HashMap<FileId, usize>> = [
            &churned.records()[..30_000],
            &churned.records()[30_000..],
        ]
        .iter()
        .map(|recs| {
            let mut m = std::collections::HashMap::new();
            for r in recs.iter() {
                *m.entry(r.block.file()).or_insert(0) += 1;
            }
            m
        })
        .collect();
        let top = |m: &std::collections::HashMap<FileId, usize>| {
            let mut v: Vec<_> = m.iter().map(|(f, &c)| (c, *f)).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.into_iter()
                .take(10)
                .map(|(_, f)| f)
                .collect::<std::collections::HashSet<_>>()
        };
        let overlap = top(&halves[0]).intersection(&top(&halves[1])).count();
        assert!(overlap < 10, "top-10 hot files should change, overlap = {overlap}");
    }

    #[test]
    fn recency_bias_shortens_inter_read_gaps() {
        let gap_stats = |p: &mut FileSetPattern| {
            let mut last_seen: HashMap<FileId, usize> = HashMap::new();
            let mut short = 0usize;
            let mut total = 0usize;
            let mut reads = 0usize;
            let mut prev = None;
            for _ in 0..100_000 {
                let b = p.next_block();
                if prev != Some(b.file()) {
                    reads += 1;
                    if let Some(&at) = last_seen.get(&b.file()) {
                        total += 1;
                        if reads - at < 60 {
                            short += 1;
                        }
                    }
                    last_seen.insert(b.file(), reads);
                }
                prev = Some(b.file());
            }
            short as f64 / total.max(1) as f64
        };
        let mut plain = FileSetPattern::new(2_000, 10_000, 1.0, 6);
        let mut bursty = FileSetPattern::new(2_000, 10_000, 1.0, 6).with_recency_bias(0.5, 40);
        assert!(
            gap_stats(&mut bursty) > gap_stats(&mut plain) + 0.2,
            "bias should concentrate re-reads"
        );
    }

    #[test]
    #[should_panic(expected = "bias must lie")]
    fn invalid_bias_rejected() {
        let _ = FileSetPattern::new(2, 4, 1.0, 1).with_recency_bias(1.5, 4);
    }
}
