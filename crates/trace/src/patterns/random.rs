//! Uniformly random access pattern (the paper's `random` trace).
//!
//! "Trace random has a spatially uniform distribution of references across
//! all the accessed blocks. This access pattern is common in database
//! applications" (§2.2). Under this pattern no policy can beat RANDOM
//! replacement: the hit rate of any cache is proportional to its size.

use super::Pattern;
use crate::{seeded_rng, BlockId};
use rand::rngs::StdRng;
use rand::Rng;

/// Draws blocks i.i.d. uniformly from `0..n`.
///
/// # Examples
///
/// ```
/// use ulc_trace::patterns::{Pattern, UniformPattern};
///
/// let mut p = UniformPattern::new(100, 42);
/// assert!(p.next_block().raw() < 100);
/// ```
#[derive(Clone, Debug)]
pub struct UniformPattern {
    n: u64,
    base: u64,
    rng: StdRng,
}

impl UniformPattern {
    /// Uniform references over blocks `0..n`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "block universe must be non-empty");
        UniformPattern {
            n,
            base: 0,
            rng: seeded_rng(seed),
        }
    }

    /// Offsets every generated block id by `base`.
    #[must_use]
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Number of distinct blocks that can be referenced.
    pub fn footprint(&self) -> u64 {
        self.n
    }
}

impl Pattern for UniformPattern {
    fn next_block(&mut self) -> BlockId {
        BlockId::new(self.base + self.rng.gen_range(0..self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range() {
        let mut p = UniformPattern::new(10, 1);
        for _ in 0..1000 {
            assert!(p.next_block().raw() < 10);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = UniformPattern::new(1000, 9).generate(200);
        let b = UniformPattern::new(1000, 9).generate(200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = UniformPattern::new(1000, 1).generate(50);
        let b = UniformPattern::new(1000, 2).generate(50);
        assert_ne!(a, b);
    }

    #[test]
    fn roughly_uniform_counts() {
        let t = UniformPattern::new(10, 3).generate(100_000);
        let mut counts = vec![0usize; 10];
        for r in &t {
            counts[r.block.raw() as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count = {c}");
        }
    }

    #[test]
    fn base_offsets_ids() {
        let mut p = UniformPattern::new(4, 0).with_base(1000);
        for _ in 0..100 {
            let b = p.next_block().raw();
            assert!((1000..1004).contains(&b));
        }
    }
}
