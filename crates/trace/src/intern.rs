//! Dense block-ID interning and flat-table block maps.
//!
//! Every hot loop in the simulation engine keys some table by [`BlockId`].
//! A `std::collections::HashMap<BlockId, V>` pays a SipHash of the full
//! 64-bit id on every probe; the engine, however, only ever sees a
//! bounded universe of blocks — the trace footprint — so the ids can be
//! *interned* once into dense `u32` indices and every subsequent table
//! access becomes a vector index.
//!
//! * [`BlockInterner`] assigns dense indices in first-seen order. Indices
//!   are **stable under incremental insertion**: interning a stream
//!   record-by-record (the online case) yields exactly the indices a
//!   whole-trace pass would (see the property tests).
//! * [`BlockMap`] is the flat `Vec`-indexed table the protocols use. The
//!   pre-existing map-backed path is retained behind
//!   [`TableMode::Hashed`] so the differential suite (and the E9
//!   benchmark) can run both representations through identical protocol
//!   code and prove bit-identical `SimStats`.
//! * [`next_use_times_interned`] routes the OPT forward-distance scan
//!   through the interner (one intern per reference, then pure array
//!   arithmetic), replacing the borrow-then-rehash double hashing the
//!   generic scan used to do.
//!
//! The dense representation is a two-tier flat table. Raw ids below
//! [`DIRECT_LIMIT`] — every looping/Zipf/temporal synthetic workload and
//! any real trace with compact block numbers — index a direct slot vector
//! with **no hashing at all**; sparse ids (file-set ids pack the file
//! index at bit 32) fall back to the vendored fast-hash map, one cheap
//! multiply-rotate hash instead of a SipHash. This is what buys the E9
//! throughput win: the hot path degenerates to a bounds check and a
//! vector load.
//!
//! Iteration over a [`BlockMap`] visits direct entries in raw-id order,
//! then fallback entries in fast-hash order, for [`TableMode::Dense`] but
//! SipHash order for [`TableMode::Hashed`]; callers must only iterate
//! where order is behaviourally irrelevant (the same rule the workspace
//! lint enforces for hash maps).

use crate::{BlockId, Trace};
use fxhash::FxHashMap;

/// A sentinel meaning "no next use" in the OPT forward scan; matches
/// `ulc_cache::opt::NEVER`.
const NEVER: u64 = u64::MAX;

/// Raw block ids below this bound are direct-indexed by a dense
/// [`BlockMap`]; ids at or above it (file-set ids pack the file index at
/// bit 32) go through the interner. Bounds the worst-case direct table at
/// 2 M slots per map.
pub const DIRECT_LIMIT: u64 = 1 << 21;

/// Maps [`BlockId`]s to dense `u32` indices in first-seen order.
///
/// # Examples
///
/// ```
/// use ulc_trace::{BlockId, BlockInterner};
///
/// let mut interner = BlockInterner::new();
/// let a = interner.intern(BlockId::new(700));
/// let b = interner.intern(BlockId::new(3));
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(interner.intern(BlockId::new(700)), 0); // stable
/// assert_eq!(interner.resolve(1), Some(BlockId::new(3)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlockInterner {
    index_of: FxHashMap<u64, u32>,
    blocks: Vec<BlockId>,
}

impl BlockInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        BlockInterner::default()
    }

    /// Creates an empty interner with room for `capacity` distinct blocks.
    pub fn with_capacity(capacity: usize) -> Self {
        BlockInterner {
            index_of: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            blocks: Vec::with_capacity(capacity),
        }
    }

    /// Builds an interner over a whole trace and returns it together with
    /// the trace's reference stream re-expressed as dense indices.
    pub fn from_trace(trace: &Trace) -> (Self, Vec<u32>) {
        let mut interner = BlockInterner::with_capacity(trace.len().min(1 << 20));
        let ids = trace.iter().map(|r| interner.intern(r.block)).collect();
        (interner, ids)
    }

    /// Interns `block`, returning its dense index. The first call for a
    /// given block assigns the next free index; later calls return the
    /// same index forever.
    #[inline]
    pub fn intern(&mut self, block: BlockId) -> u32 {
        match self.index_of.entry(block.raw()) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let idx = self.blocks.len() as u32;
                assert!(idx != u32::MAX, "block universe exceeds u32 indices");
                self.blocks.push(block);
                e.insert(idx);
                idx
            }
        }
    }

    /// Returns the dense index of `block` if it has been interned.
    #[inline]
    pub fn get(&self, block: BlockId) -> Option<u32> {
        self.index_of.get(&block.raw()).copied()
    }

    /// Returns the block behind a dense index, if `idx` was assigned.
    #[inline]
    pub fn resolve(&self, idx: u32) -> Option<BlockId> {
        self.blocks.get(idx as usize).copied()
    }

    /// Number of distinct blocks interned so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Which table representation a [`BlockMap`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableMode {
    /// Interned dense indices over a flat `Vec` — the default engine.
    Dense,
    /// The pre-existing `std::collections::HashMap` path, retained as the
    /// reference implementation for differential tests and benchmarks.
    Hashed,
}

/// A map from [`BlockId`] to `V` with a switchable representation.
///
/// [`TableMode::Dense`] stores values in a flat slot vector: raw ids
/// below [`DIRECT_LIMIT`] index the table directly with no hashing at
/// all; sparser ids fall back to the vendored fast-hash map.
/// [`TableMode::Hashed`] is the historical SipHash `HashMap`. Both
/// representations implement identical map semantics, which is exactly
/// what the differential suite asserts end-to-end through the protocols.
///
/// # Examples
///
/// ```
/// use ulc_trace::{BlockId, BlockMap, TableMode};
///
/// let mut m: BlockMap<u32> = BlockMap::new(TableMode::Dense);
/// assert_eq!(m.insert(BlockId::new(9), 1), None);
/// assert_eq!(m.insert(BlockId::new(9), 2), Some(1));
/// assert_eq!(m.get(BlockId::new(9)), Some(&2));
/// assert_eq!(m.remove(BlockId::new(9)), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct BlockMap<V> {
    repr: Repr<V>,
}

#[derive(Clone, Debug)]
enum Repr<V> {
    Dense {
        /// Slots for raw ids below [`DIRECT_LIMIT`], indexed by the raw id
        /// itself; grown on demand to the largest id seen.
        direct: Vec<Option<V>>,
        /// Occupied slots in `direct`.
        direct_len: usize,
        /// Fast-hash fallback for sparse raw ids (at or above
        /// [`DIRECT_LIMIT`]).
        sparse: FxHashMap<u64, V>,
    },
    // lint:allow(hot-path-map) this is the retained map-backed reference representation itself
    Hashed(std::collections::HashMap<BlockId, V>),
}

impl<V> Default for BlockMap<V> {
    fn default() -> Self {
        BlockMap::new(TableMode::Dense)
    }
}

impl<V> BlockMap<V> {
    /// Creates an empty map with the given representation.
    pub fn new(mode: TableMode) -> Self {
        let repr = match mode {
            TableMode::Dense => Repr::Dense {
                direct: Vec::new(),
                direct_len: 0,
                sparse: FxHashMap::default(),
            },
            TableMode::Hashed => Repr::Hashed(Default::default()),
        };
        BlockMap { repr }
    }

    /// The representation this map was built with.
    pub fn mode(&self) -> TableMode {
        match self.repr {
            Repr::Dense { .. } => TableMode::Dense,
            Repr::Hashed(_) => TableMode::Hashed,
        }
    }

    /// Returns a reference to the value for `block`, if present.
    #[inline]
    pub fn get(&self, block: BlockId) -> Option<&V> {
        match &self.repr {
            Repr::Dense { direct, sparse, .. } => {
                let raw = block.raw();
                if raw < DIRECT_LIMIT {
                    direct.get(raw as usize).and_then(Option::as_ref)
                } else {
                    sparse.get(&raw)
                }
            }
            Repr::Hashed(m) => m.get(&block),
        }
    }

    /// Returns a mutable reference to the value for `block`, if present.
    #[inline]
    pub fn get_mut(&mut self, block: BlockId) -> Option<&mut V> {
        match &mut self.repr {
            Repr::Dense { direct, sparse, .. } => {
                let raw = block.raw();
                if raw < DIRECT_LIMIT {
                    direct.get_mut(raw as usize).and_then(Option::as_mut)
                } else {
                    sparse.get_mut(&raw)
                }
            }
            Repr::Hashed(m) => m.get_mut(&block),
        }
    }

    /// Returns `true` if `block` has a value.
    #[inline]
    pub fn contains_key(&self, block: BlockId) -> bool {
        self.get(block).is_some()
    }

    /// Inserts `value` for `block`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, block: BlockId, value: V) -> Option<V> {
        match &mut self.repr {
            Repr::Dense {
                direct,
                direct_len,
                sparse,
            } => {
                let raw = block.raw();
                if raw < DIRECT_LIMIT {
                    let i = raw as usize;
                    if i >= direct.len() {
                        direct.resize_with(i + 1, || None);
                    }
                    let old = direct[i].replace(value);
                    if old.is_none() {
                        *direct_len += 1;
                    }
                    old
                } else {
                    sparse.insert(raw, value)
                }
            }
            Repr::Hashed(m) => m.insert(block, value),
        }
    }

    /// Removes and returns the value for `block`, if present.
    #[inline]
    pub fn remove(&mut self, block: BlockId) -> Option<V> {
        match &mut self.repr {
            Repr::Dense {
                direct,
                direct_len,
                sparse,
            } => {
                let raw = block.raw();
                if raw < DIRECT_LIMIT {
                    let old = direct.get_mut(raw as usize).and_then(Option::take);
                    if old.is_some() {
                        *direct_len -= 1;
                    }
                    old
                } else {
                    sparse.remove(&raw)
                }
            }
            Repr::Hashed(m) => m.remove(&block),
        }
    }

    /// Reserves room for `additional` more entries in the hashed tier.
    ///
    /// For [`TableMode::Dense`] this pre-sizes the sparse fallback (the
    /// tier file-set ids land in); the direct slot vector is left alone —
    /// it is grown to the largest sub-[`DIRECT_LIMIT`] id seen, which any
    /// warm-up phase discovers, while the fallback's occupancy high-water
    /// can be reached arbitrarily late in a run and would otherwise pay a
    /// rehash inside a measured steady phase (DESIGN.md §5f). For
    /// [`TableMode::Hashed`] the whole map is reserved.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.repr {
            Repr::Dense { sparse, .. } => sparse.reserve(additional),
            Repr::Hashed(m) => m.reserve(additional),
        }
    }

    /// Hints the CPU to pull the direct-table slot for `block` into
    /// cache. A no-op for out-of-range or sparse ids and on non-x86_64
    /// targets; never touches map contents, so calling it (or not) for
    /// any block is semantics-free — the batched access pipeline issues
    /// it a few references ahead of the access itself.
    #[inline]
    pub fn prefetch(&self, block: BlockId) {
        #[cfg(target_arch = "x86_64")]
        if let Repr::Dense { direct, .. } = &self.repr {
            let raw = block.raw();
            if raw < DIRECT_LIMIT {
                if let Some(slot) = direct.get(raw as usize) {
                    // SAFETY: `slot` is a live reference into `direct`;
                    // prefetch dereferences nothing, it only hints the
                    // cache about a valid address.
                    unsafe {
                        std::arch::x86_64::_mm_prefetch(
                            (slot as *const Option<V>).cast::<i8>(),
                            std::arch::x86_64::_MM_HINT_T0,
                        );
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = block;
    }

    /// Number of entries with a value.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Dense {
                direct_len, sparse, ..
            } => direct_len + sparse.len(),
            Repr::Hashed(m) => m.len(),
        }
    }

    /// Returns `true` if the map holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every value. The direct table keeps its slots allocated,
    /// so re-inserted blocks pay no regrowth.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Dense {
                direct,
                direct_len,
                sparse,
            } => {
                for s in direct.iter_mut() {
                    *s = None;
                }
                *direct_len = 0;
                sparse.clear();
            }
            Repr::Hashed(m) => m.clear(),
        }
    }

    /// Iterates over `(block, &value)` pairs.
    ///
    /// Order is raw-id order over the direct table, then fast-hash order
    /// over the sparse fallback, for [`TableMode::Dense`] and SipHash
    /// order for [`TableMode::Hashed`]; use only where order cannot
    /// influence behaviour.
    pub fn iter(&self) -> Iter<'_, V> {
        match &self.repr {
            Repr::Dense { direct, sparse, .. } => Iter::Dense {
                direct: direct.iter().enumerate(),
                sparse: sparse.iter(),
            },
            Repr::Hashed(m) => Iter::Hashed(m.iter()),
        }
    }
}

/// Iterator over a [`BlockMap`]; created by [`BlockMap::iter`].
#[derive(Debug)]
pub enum Iter<'a, V> {
    /// Dense walk: direct slots in raw-id order, then the sparse fallback
    /// in fast-hash order.
    Dense {
        /// Enumerated direct-slot cursor (index is the raw id).
        direct: std::iter::Enumerate<std::slice::Iter<'a, Option<V>>>,
        /// Sparse-fallback cursor.
        sparse: std::collections::hash_map::Iter<'a, u64, V>,
    },
    /// Hash-map walk (arbitrary order).
    Hashed(std::collections::hash_map::Iter<'a, BlockId, V>),
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (BlockId, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Iter::Dense { direct, sparse } => {
                for (raw, slot) in direct.by_ref() {
                    if let Some(v) = slot.as_ref() {
                        return Some((BlockId::new(raw as u64), v));
                    }
                }
                sparse.next().map(|(&raw, v)| (BlockId::new(raw), v))
            }
            Iter::Hashed(it) => it.next().map(|(b, v)| (*b, v)),
        }
    }
}

/// OPT forward distances, routed through the interner: for every position
/// `i`, the time of the next reference to the same block, or `u64::MAX`
/// if it is never referenced again.
///
/// This is the interned replacement for the generic
/// `ulc_cache::opt::next_use_times` scan, which kept a
/// `HashMap<&T, usize>` and hashed each key twice per step (a lookup
/// immediately followed by an insert). Here each reference is interned
/// once (one fast hash) and the scan itself is pure array arithmetic.
///
/// # Examples
///
/// ```
/// use ulc_trace::{intern::next_use_times_interned, BlockId};
///
/// let blocks: Vec<BlockId> = [1u64, 2, 1].map(BlockId::new).into();
/// assert_eq!(next_use_times_interned(&blocks), vec![2, u64::MAX, u64::MAX]);
/// ```
pub fn next_use_times_interned(blocks: &[BlockId]) -> Vec<u64> {
    let mut interner = BlockInterner::with_capacity(blocks.len().min(1 << 20));
    let ids: Vec<u32> = blocks.iter().map(|&b| interner.intern(b)).collect();
    let mut last_seen: Vec<u64> = vec![NEVER; interner.len()];
    let mut out = vec![NEVER; ids.len()];
    for (i, &id) in ids.iter().enumerate().rev() {
        out[i] = last_seen[id as usize];
        last_seen[id as usize] = i as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raws: &[u64]) -> Vec<BlockId> {
        raws.iter().copied().map(BlockId::new).collect()
    }

    #[test]
    fn intern_assigns_first_seen_order() {
        let mut it = BlockInterner::new();
        assert_eq!(it.intern(BlockId::new(50)), 0);
        assert_eq!(it.intern(BlockId::new(7)), 1);
        assert_eq!(it.intern(BlockId::new(50)), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.get(BlockId::new(7)), Some(1));
        assert_eq!(it.get(BlockId::new(8)), None);
        assert_eq!(it.resolve(0), Some(BlockId::new(50)));
        assert_eq!(it.resolve(2), None);
    }

    #[test]
    fn from_trace_matches_incremental() {
        let t = Trace::from_blocks(ids(&[5, 9, 5, 2, 9, 5]));
        let (interner, stream) = BlockInterner::from_trace(&t);
        assert_eq!(stream, vec![0, 1, 0, 2, 1, 0]);
        let mut inc = BlockInterner::new();
        let inc_stream: Vec<u32> = t.iter().map(|r| inc.intern(r.block)).collect();
        assert_eq!(stream, inc_stream);
        assert_eq!(interner.len(), inc.len());
    }

    #[test]
    fn block_map_semantics_match_between_modes() {
        for mode in [TableMode::Dense, TableMode::Hashed] {
            let mut m: BlockMap<u32> = BlockMap::new(mode);
            assert_eq!(m.mode(), mode);
            assert!(m.is_empty());
            assert_eq!(m.insert(BlockId::new(3), 30), None);
            assert_eq!(m.insert(BlockId::new(4), 40), None);
            assert_eq!(m.insert(BlockId::new(3), 31), Some(30));
            assert_eq!(m.len(), 2);
            assert_eq!(m.get(BlockId::new(3)), Some(&31));
            assert!(m.contains_key(BlockId::new(4)));
            *m.get_mut(BlockId::new(4)).unwrap() += 1;
            assert_eq!(m.remove(BlockId::new(4)), Some(41));
            assert_eq!(m.remove(BlockId::new(4)), None);
            assert_eq!(m.len(), 1);
            m.clear();
            assert!(m.is_empty());
            assert_eq!(m.get(BlockId::new(3)), None);
            // Reuse after clear.
            assert_eq!(m.insert(BlockId::new(3), 99), None);
            assert_eq!(m.get(BlockId::new(3)), Some(&99));
        }
    }

    #[test]
    fn dense_iter_is_raw_order_then_spill_order() {
        let mut m: BlockMap<u32> = BlockMap::new(TableMode::Dense);
        m.insert(BlockId::new(9), 1);
        m.insert(BlockId::new(2), 2);
        m.insert(BlockId::new(5), 3);
        m.insert(BlockId::new(DIRECT_LIMIT + 7), 4); // spills
        m.remove(BlockId::new(2));
        let got: Vec<(u64, u32)> = m.iter().map(|(b, &v)| (b.raw(), v)).collect();
        assert_eq!(got, vec![(5, 3), (9, 1), (DIRECT_LIMIT + 7, 4)]);
    }

    #[test]
    fn sparse_ids_use_the_fast_hash_fallback() {
        // File-set ids pack the file index at bit 32, far above
        // DIRECT_LIMIT; both tiers must obey identical map semantics.
        let lo = BlockId::new(3);
        let hi = BlockId::new((7u64 << 32) | 3);
        for mode in [TableMode::Dense, TableMode::Hashed] {
            let mut m: BlockMap<u32> = BlockMap::new(mode);
            assert_eq!(m.insert(lo, 1), None);
            assert_eq!(m.insert(hi, 2), None);
            assert_eq!(m.len(), 2);
            assert_eq!(m.get(lo), Some(&1));
            assert_eq!(m.get(hi), Some(&2));
            assert_eq!(m.insert(hi, 20), Some(2));
            assert_eq!(m.remove(hi), Some(20));
            assert_eq!(m.get(hi), None);
            assert_eq!(m.get(lo), Some(&1));
            m.clear();
            assert!(m.is_empty());
            assert_eq!(m.insert(hi, 9), None);
            assert_eq!(m.get(hi), Some(&9));
        }
    }

    #[test]
    fn hashed_iter_visits_every_entry() {
        let mut m: BlockMap<u32> = BlockMap::new(TableMode::Hashed);
        for i in 0..10u64 {
            m.insert(BlockId::new(i), i as u32);
        }
        let mut got: Vec<u64> = m.iter().map(|(b, _)| b.raw()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn interned_next_use_matches_naive() {
        let blocks = ids(&[1, 2, 1, 3, 2, 1, 4]);
        let got = next_use_times_interned(&blocks);
        // Naive O(n^2) oracle.
        let mut want = vec![NEVER; blocks.len()];
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                if blocks[j] == blocks[i] {
                    want[i] = j as u64;
                    break;
                }
            }
        }
        assert_eq!(got, want);
        assert!(next_use_times_interned(&[]).is_empty());
    }
}
