//! The paper's named workloads, rebuilt as seeded synthetic traces.
//!
//! We do not have the original trace files, so each constructor here
//! produces a stream whose *access-pattern class* matches the paper's own
//! description of that trace (§2.2 for the six small-scale traces, §4.2 for
//! the large single-client and multi-client traces). DESIGN.md §3 documents
//! every substitution.
//!
//! All constructors take the number of references to generate, so the
//! experiment harness can trade fidelity for speed; footprints (distinct
//! blocks) are fixed to the paper's values where the paper gives them.

use crate::multi::interleave;
use crate::patterns::{
    FileSetPattern, LoopingPattern, MixedPattern, Pattern, Phase, SequentialPattern,
    TemporalPattern, UniformPattern, WorkingSetDriftPattern, ZipfPattern,
};
use crate::{blocks_for_mib, Trace};

// ---------------------------------------------------------------------------
// The six small-scale traces of §2.2 (Figures 2 and 3).
// ---------------------------------------------------------------------------

/// Footprint of the small-scale `cs` stand-in, in blocks.
pub const CS_BLOCKS: u64 = 2_500;
/// Footprint of the small-scale `glimpse` stand-in, in blocks.
pub const GLIMPSE_BLOCKS: u64 = 400 + 1_600 + 3_000;
/// Footprint of the small-scale `zipf` stand-in, in blocks.
pub const ZIPF_SMALL_BLOCKS: u64 = 5_000;
/// Footprint of the small-scale `random` stand-in, in blocks.
pub const RANDOM_SMALL_BLOCKS: u64 = 5_000;
/// Footprint of the small-scale `sprite` stand-in, in blocks.
pub const SPRITE_BLOCKS: u64 = 4_000;

/// `cs`: a pure looping pattern — "all blocks are regularly and repeatedly
/// accessed".
pub fn cs(refs: usize) -> Trace {
    LoopingPattern::new(CS_BLOCKS).generate(refs)
}

/// `glimpse`: looping over several scopes of different lengths.
pub fn glimpse(refs: usize) -> Trace {
    LoopingPattern::with_scopes(vec![400, 1_600, 3_000]).generate(refs)
}

/// `zipf` (small scale): reference probability of the *i*th block ∝ 1/i.
pub fn zipf_small(refs: usize) -> Trace {
    ZipfPattern::new(ZIPF_SMALL_BLOCKS, 1.0, 0x5eed01).generate(refs)
}

/// `random` (small scale): spatially uniform references.
pub fn random_small(refs: usize) -> Trace {
    UniformPattern::new(RANDOM_SMALL_BLOCKS, 0x5eed02).generate(refs)
}

/// `sprite`: temporally-clustered, LRU-friendly references.
pub fn sprite(refs: usize) -> Trace {
    TemporalPattern::new(SPRITE_BLOCKS, 0.995, 0x5eed03).generate(refs)
}

/// `multi`: "mixed with sequential, looping and probabilistic references".
pub fn multi_small(refs: usize) -> Trace {
    MixedPattern::new(vec![
        Phase::new(Box::new(LoopingPattern::new(1_500)), 3_000),
        Phase::new(Box::new(SequentialPattern::new(100_000, 2_000)), 1_000),
        Phase::new(
            Box::new(ZipfPattern::new(3_000, 1.0, 0x5eed04).with_base(10_000)),
            3_000,
        ),
    ])
    .generate(refs)
}

/// Returns the six small-scale traces of §2.2 with their paper names.
pub fn small_suite(refs: usize) -> Vec<(&'static str, Trace)> {
    vec![
        ("cs", cs(refs)),
        ("glimpse", glimpse(refs)),
        ("zipf", zipf_small(refs)),
        ("random", random_small(refs)),
        ("sprite", sprite(refs)),
        ("multi", multi_small(refs)),
    ]
}

// ---------------------------------------------------------------------------
// The five large single-client traces of §4.2/§4.3 (Figure 6).
// ---------------------------------------------------------------------------

/// Footprint of the large `random` trace: 65,536 blocks = 512 MB (§4.2).
pub const RANDOM_LARGE_BLOCKS: u64 = 65_536;
/// Footprint of the large `zipf` trace: 98,304 blocks = 768 MB (§4.2).
pub const ZIPF_LARGE_BLOCKS: u64 = 98_304;
/// `httpd` file count (§4.2).
pub const HTTPD_FILES: u32 = 13_457;
/// `httpd` data-set size: 524 MB (§4.2).
pub const HTTPD_BLOCKS: u64 = blocks_for_mib(524);
/// `dev1` data-set size: ~600 MB (§4.2).
pub const DEV1_BLOCKS: u64 = blocks_for_mib(600);
/// `tpcc1` data-set size: ~256 MB (§4.2).
pub const TPCC1_BLOCKS: u64 = blocks_for_mib(256);

/// Large-scale `random`: uniform over 65,536 blocks (512 MB data set).
pub fn random_large(refs: usize) -> Trace {
    UniformPattern::new(RANDOM_LARGE_BLOCKS, 0x5eed10).generate(refs)
}

/// Large-scale `zipf`: Zipf over 98,304 blocks (768 MB data set).
pub fn zipf_large(refs: usize) -> Trace {
    ZipfPattern::new(ZIPF_LARGE_BLOCKS, 1.0, 0x5eed11)
        .scrambled(0x5eed12)
        .generate(refs)
}

/// How often `httpd` popularity churns: one hot/cold file swap per this
/// many file reads (web popularity drifts across a 24-hour trace).
pub const HTTPD_CHURN_INTERVAL: u64 = 100;

/// Flash-crowd recency of the `httpd` stand-ins: fraction of requests
/// re-reading a recently served file, and the recent-file window.
pub const HTTPD_RECENCY_BIAS: f64 = 0.0;
/// See [`HTTPD_RECENCY_BIAS`].
pub const HTTPD_RECENCY_WINDOW: usize = 40;

/// `httpd` as a single aggregated stream: Zipf-popular whole-file reads over
/// 13,457 files / 524 MB, with drifting popularity.
pub fn httpd_single(refs: usize) -> Trace {
    FileSetPattern::new(HTTPD_FILES, HTTPD_BLOCKS, 1.0, 0x5eed13)
        .with_popularity_churn(HTTPD_CHURN_INTERVAL)
        .with_recency_bias(HTTPD_RECENCY_BIAS, HTTPD_RECENCY_WINDOW)
        .generate(refs)
}

/// `dev1`: 15 days of desktop I/O — a broad concurrent working set
/// (editor + compiler + IDE + browser ≈ 125 MB) drifting slowly over a
/// 600 MB universe, with sequential bursts (builds, copies). The working
/// set exceeds a single 100 MB cache but fits the aggregate, the regime
/// where placement matters; the paper's trace has ~100 K references.
pub fn dev1(refs: usize) -> Trace {
    WorkingSetDriftPattern::new(DEV1_BLOCKS, 16_000, 0x5eed14)
        .with_depth_decay(0.9999)
        .with_rates(0.001, 0.005)
        .generate(refs)
}

/// Loop length of the dominant `tpcc1` loop, in blocks.
///
/// Chosen well under the paper's combined L1+L2 capacity for this workload
/// (two 50 MB caches = 12,800 blocks) so the loop's re-reference recency —
/// loop length plus interleaved index traffic — stays inside L2. This
/// reproduces the paper's signature behaviour: uniLRU serves almost every
/// `tpcc1` reference from L2 (92.5 %) with a 100 % demotion rate, while
/// ULC splits the loop across L1 and L2 with almost no demotions.
pub const TPCC1_LOOP_BLOCKS: u64 = 11_000;

/// `tpcc1`: TPC-C on Postgres — a dominant looping pattern (§4.3 observes a
/// 100 % uniLRU demotion rate, the looping signature) plus light uniform
/// index traffic over the rest of the 256 MB data set.
pub fn tpcc1(refs: usize) -> Trace {
    MixedPattern::new(vec![
        Phase::new(Box::new(LoopingPattern::new(TPCC1_LOOP_BLOCKS)), 9_500),
        Phase::new(
            Box::new(
                UniformPattern::new(TPCC1_BLOCKS - TPCC1_LOOP_BLOCKS, 0x5eed15)
                    .with_base(TPCC1_LOOP_BLOCKS),
            ),
            500,
        ),
    ])
    .generate(refs)
}

/// Returns the five large single-client traces of §4.3 with their paper
/// names.
pub fn single_client_suite(refs: usize) -> Vec<(&'static str, Trace)> {
    vec![
        ("random", random_large(refs)),
        ("zipf", zipf_large(refs)),
        ("httpd", httpd_single(refs)),
        ("dev1", dev1(refs)),
        ("tpcc1", tpcc1(refs)),
    ]
}

// ---------------------------------------------------------------------------
// The three multi-client traces of §4.4 (Figure 7).
// ---------------------------------------------------------------------------

/// Number of clients in the multi-client `httpd` workload.
pub const HTTPD_CLIENTS: usize = 7;
/// Number of clients in the `openmail` workload.
pub const OPENMAIL_CLIENTS: usize = 6;
/// Number of clients in the `db2` workload.
pub const DB2_CLIENTS: usize = 8;

/// `httpd` with its seven per-node request streams kept separate. All
/// clients share one file set (data sharing, as the paper notes), with
/// distinct request randomness.
pub fn httpd_multi(refs: usize) -> Trace {
    let patterns: Vec<Box<dyn Pattern>> = (0..HTTPD_CLIENTS)
        .map(|c| {
            Box::new(
                FileSetPattern::new(HTTPD_FILES, HTTPD_BLOCKS, 1.0, 0x5eed13)
                    .with_popularity_churn(HTTPD_CHURN_INTERVAL)
                    .with_recency_bias(HTTPD_RECENCY_BIAS, HTTPD_RECENCY_WINDOW)
                    .with_request_seed(0x5eed20 + c as u64),
            ) as Box<dyn Pattern>
        })
        .collect();
    interleave(patterns, None, refs, 0x5eed21)
}

/// `openmail`, scaled: six clients with temporally-clustered private
/// mailbox working sets and negligible sharing. `footprint_blocks` is the
/// total data-set size in blocks (the paper's system held 18.6 GB; pass a
/// scaled-down value and scale cache sizes by the same factor).
pub fn openmail(refs: usize, footprint_blocks: u64) -> Trace {
    let per_client = footprint_blocks / OPENMAIL_CLIENTS as u64;
    assert!(per_client > 0, "footprint too small for 6 clients");
    // Deep clustering: a mail working set reaches well past the client
    // cache (the server tier matters), with decay scaled to the footprint.
    let q = 1.0 - 3.0 / per_client as f64;
    let patterns: Vec<Box<dyn Pattern>> = (0..OPENMAIL_CLIENTS)
        .map(|c| {
            Box::new(
                TemporalPattern::new(per_client, q, 0x5eed30 + c as u64)
                    .with_base(c as u64 * per_client),
            ) as Box<dyn Pattern>
        })
        .collect();
    interleave(patterns, None, refs, 0x5eed31)
}

/// `db2`, scaled: eight clients running join/set/aggregation operations —
/// dominated by looping scans (§4.4 attributes uniLRU's 88.6 % demotion rate
/// to db2's looping pattern). `footprint_blocks` is the total data-set size
/// in blocks (paper: 5.2 GB).
pub fn db2_multi(refs: usize, footprint_blocks: u64) -> Trace {
    let per_client = footprint_blocks / DB2_CLIENTS as u64;
    assert!(per_client >= 10, "footprint too small for 8 clients");
    let patterns: Vec<Box<dyn Pattern>> = (0..DB2_CLIENTS)
        .map(|c| {
            // Each client loops over a large private scan range plus a
            // smaller repeatedly-joined table.
            let base = c as u64 * per_client;
            let small = per_client / 5;
            let large = per_client - small;
            Box::new(
                MixedPattern::new(vec![
                    Phase::new(
                        Box::new(LoopingPattern::with_scopes(vec![small]).with_base(base)),
                        2_000,
                    ),
                    Phase::new(
                        Box::new(LoopingPattern::with_scopes(vec![large]).with_base(base + small)),
                        8_000,
                    ),
                ]),
                // interleave() draws from patterns one reference at a time,
                // so phase alternation happens per client.
            ) as Box<dyn Pattern>
        })
        .collect();
    interleave(patterns, None, refs, 0x5eed41)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClientId;

    #[test]
    fn small_suite_has_six_named_traces() {
        let suite = small_suite(1_000);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["cs", "glimpse", "zipf", "random", "sprite", "multi"]
        );
        for (name, t) in &suite {
            assert_eq!(t.len(), 1_000, "{name}");
            assert_eq!(t.num_clients(), 1, "{name}");
        }
    }

    #[test]
    fn cs_is_a_pure_loop() {
        let t = cs(2 * CS_BLOCKS as usize);
        assert_eq!(t.unique_blocks(), CS_BLOCKS as usize);
        // Second cycle repeats the first exactly.
        let r = t.records();
        for i in 0..CS_BLOCKS as usize {
            assert_eq!(r[i].block, r[i + CS_BLOCKS as usize].block);
        }
    }

    #[test]
    fn glimpse_covers_all_scopes() {
        let t = glimpse(GLIMPSE_BLOCKS as usize);
        assert_eq!(t.unique_blocks(), GLIMPSE_BLOCKS as usize);
    }

    #[test]
    fn large_footprints_match_paper() {
        assert_eq!(RANDOM_LARGE_BLOCKS, 65_536);
        assert_eq!(ZIPF_LARGE_BLOCKS, 98_304);
        assert_eq!(HTTPD_BLOCKS, 67_072); // 524 MB of 8 KB blocks
        assert_eq!(TPCC1_BLOCKS, 32_768); // 256 MB
        assert_eq!(DEV1_BLOCKS, 76_800); // 600 MB
    }

    #[test]
    fn tpcc1_is_loop_dominated() {
        let t = tpcc1(100_000);
        let loop_refs = t
            .iter()
            .filter(|r| r.block.raw() < TPCC1_LOOP_BLOCKS)
            .count();
        let frac = loop_refs as f64 / t.len() as f64;
        assert!(frac > 0.85, "loop fraction = {frac}");
    }

    #[test]
    fn httpd_multi_has_seven_clients_with_sharing() {
        let t = httpd_multi(50_000);
        assert_eq!(t.num_clients(), 7);
        // Data sharing: some block is touched by more than one client.
        use std::collections::HashMap;
        let mut owners: HashMap<_, std::collections::HashSet<ClientId>> = HashMap::new();
        for r in &t {
            owners.entry(r.block).or_default().insert(r.client);
        }
        assert!(
            owners.values().any(|s| s.len() > 1),
            "expected shared blocks between httpd clients"
        );
    }

    #[test]
    fn openmail_clients_do_not_share() {
        let t = openmail(30_000, 60_000);
        assert_eq!(t.num_clients(), 6);
        use std::collections::HashMap;
        let mut owners: HashMap<_, std::collections::HashSet<ClientId>> = HashMap::new();
        for r in &t {
            owners.entry(r.block).or_default().insert(r.client);
        }
        assert!(owners.values().all(|s| s.len() == 1));
    }

    #[test]
    fn db2_has_eight_disjoint_looping_clients() {
        let t = db2_multi(40_000, 80_000);
        assert_eq!(t.num_clients(), 8);
        // Each client's stream touches only its own tenth-ish of the space.
        let s0 = t.client_stream(ClientId::new(0));
        assert!(s0.iter().all(|b| b.raw() < 10_000));
        let s7 = t.client_stream(ClientId::new(7));
        assert!(s7.iter().all(|b| b.raw() >= 70_000));
    }

    #[test]
    fn all_generators_are_deterministic() {
        assert_eq!(zipf_large(5_000), zipf_large(5_000));
        assert_eq!(dev1(5_000), dev1(5_000));
        assert_eq!(httpd_multi(5_000), httpd_multi(5_000));
        assert_eq!(db2_multi(5_000, 20_000), db2_multi(5_000, 20_000));
        assert_eq!(openmail(5_000, 6_000), openmail(5_000, 6_000));
    }
}
