//! Trace containers: sequences of block references.

use crate::{BlockId, ClientId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One block reference in a trace: client `client` requests `block`.
///
/// # Examples
///
/// ```
/// use ulc_trace::{BlockId, ClientId, TraceRecord};
///
/// let r = TraceRecord::new(ClientId::SINGLE, BlockId::new(5));
/// assert_eq!(r.block, BlockId::new(5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The client that issued the request.
    pub client: ClientId,
    /// The requested block.
    pub block: BlockId,
}

impl TraceRecord {
    /// Creates a record.
    #[inline]
    pub const fn new(client: ClientId, block: BlockId) -> Self {
        TraceRecord { client, block }
    }

    /// Creates a record for the single-client structure.
    #[inline]
    pub const fn single(block: BlockId) -> Self {
        TraceRecord {
            client: ClientId::SINGLE,
            block,
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.client, self.block)
    }
}

/// An in-memory block reference trace.
///
/// A `Trace` is an ordered sequence of [`TraceRecord`]s plus the number of
/// clients that appear in it. The paper's simulation methodology (§4.2) uses
/// the first tenth of each trace to warm the caches; [`Trace::warmup_len`]
/// exposes that split point.
///
/// # Examples
///
/// ```
/// use ulc_trace::{BlockId, Trace};
///
/// let t = Trace::from_blocks([1u64, 2, 3, 1].map(BlockId::new));
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.unique_blocks(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
    num_clients: u32,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace from records, inferring the client count as
    /// `max client index + 1` (0 for an empty trace).
    pub fn from_records<I: IntoIterator<Item = TraceRecord>>(records: I) -> Self {
        let records: Vec<TraceRecord> = records.into_iter().collect();
        let num_clients = records
            .iter()
            .map(|r| r.client.index() + 1)
            .max()
            .unwrap_or(0);
        Trace {
            records,
            num_clients,
        }
    }

    /// Creates a single-client trace from a sequence of block ids.
    pub fn from_blocks<I: IntoIterator<Item = BlockId>>(blocks: I) -> Self {
        Trace::from_records(blocks.into_iter().map(TraceRecord::single))
    }

    /// Appends one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.num_clients = self.num_clients.max(record.client.index() + 1);
        self.records.push(record);
    }

    /// Returns the number of references in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns the number of clients issuing requests (max index + 1).
    pub fn num_clients(&self) -> u32 {
        self.num_clients
    }

    /// Returns the records as a slice.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Returns the number of distinct blocks referenced.
    pub fn unique_blocks(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.block)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Returns the number of references used for cache warm-up: the first
    /// tenth of the trace, following §4.2 of the paper.
    pub fn warmup_len(&self) -> usize {
        self.records.len() / 10
    }

    /// Splits the trace into the warm-up prefix and the measured remainder.
    pub fn split_warmup(&self) -> (&[TraceRecord], &[TraceRecord]) {
        self.records.split_at(self.warmup_len())
    }

    /// Returns the references issued by a single client, preserving order.
    pub fn client_stream(&self, client: ClientId) -> Vec<BlockId> {
        self.records
            .iter()
            .filter(|r| r.client == client)
            .map(|r| r.block)
            .collect()
    }

    /// Truncates the trace to at most `max_len` references.
    pub fn truncate(&mut self, max_len: usize) {
        self.records.truncate(max_len);
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace::from_records(iter)
    }
}

impl FromIterator<BlockId> for Trace {
    fn from_iter<I: IntoIterator<Item = BlockId>>(iter: I) -> Self {
        Trace::from_blocks(iter)
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord::new(ClientId::new(0), BlockId::new(1)),
            TraceRecord::new(ClientId::new(2), BlockId::new(2)),
            TraceRecord::new(ClientId::new(1), BlockId::new(1)),
        ])
    }

    #[test]
    fn infers_client_count_from_max_index() {
        assert_eq!(sample().num_clients(), 3);
        assert_eq!(Trace::new().num_clients(), 0);
    }

    #[test]
    fn unique_blocks_deduplicates() {
        assert_eq!(sample().unique_blocks(), 2);
    }

    #[test]
    fn warmup_is_first_tenth() {
        let t = Trace::from_blocks((0..100).map(BlockId::new));
        assert_eq!(t.warmup_len(), 10);
        let (w, m) = t.split_warmup();
        assert_eq!(w.len(), 10);
        assert_eq!(m.len(), 90);
        assert_eq!(w[0].block, BlockId::new(0));
        assert_eq!(m[0].block, BlockId::new(10));
    }

    #[test]
    fn warmup_of_tiny_trace_is_empty() {
        let t = Trace::from_blocks((0..9).map(BlockId::new));
        assert_eq!(t.warmup_len(), 0);
    }

    #[test]
    fn client_stream_filters_and_preserves_order() {
        let t = Trace::from_records(vec![
            TraceRecord::new(ClientId::new(0), BlockId::new(1)),
            TraceRecord::new(ClientId::new(1), BlockId::new(9)),
            TraceRecord::new(ClientId::new(0), BlockId::new(3)),
        ]);
        assert_eq!(
            t.client_stream(ClientId::new(0)),
            vec![BlockId::new(1), BlockId::new(3)]
        );
        assert_eq!(t.client_stream(ClientId::new(1)), vec![BlockId::new(9)]);
        assert!(t.client_stream(ClientId::new(7)).is_empty());
    }

    #[test]
    fn push_updates_client_count() {
        let mut t = Trace::new();
        t.push(TraceRecord::new(ClientId::new(4), BlockId::new(0)));
        assert_eq!(t.num_clients(), 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn collect_from_block_iterator() {
        let t: Trace = (0..5).map(BlockId::new).collect();
        assert_eq!(t.len(), 5);
        assert_eq!(t.num_clients(), 1);
    }

    #[test]
    fn extend_appends() {
        let mut t = sample();
        t.extend(vec![TraceRecord::new(ClientId::new(6), BlockId::new(7))]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_clients(), 7);
    }

    #[test]
    fn truncate_shortens() {
        let mut t = Trace::from_blocks((0..100).map(BlockId::new));
        t.truncate(7);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
