//! Deterministic random sampling helpers for workload generation.
//!
//! Every synthetic workload in this workspace is seeded, so a given trace
//! constructor always produces the same reference stream. This module also
//! hosts the in-repo Zipf sampler (the paper's `zipf` trace references block
//! `i` with probability proportional to `1/i`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used by all generators in this crate.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = ulc_trace::seeded_rng(42);
/// let mut b = ulc_trace::seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^theta`.
///
/// Sampling is inverse-CDF over a precomputed cumulative table, O(log n) per
/// draw. `theta = 1.0` gives the classic Zipf distribution used by the
/// paper's `zipf` trace, "typical for file references in Web servers".
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let zipf = ulc_trace::Zipf::new(100, 1.0);
/// let mut rng = ulc_trace::seeded_rng(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift: the last entry must be 1.0 so
        // every uniform draw lands inside the table.
        *cdf.last_mut().expect("non-empty cdf") = 1.0;
        Zipf { cdf }
    }

    /// Returns the number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has exactly one rank (degenerate).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..self.len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Returns the probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Samples a geometric-like stack depth in `0..n`: depth `d` has weight
/// `q^d`. Used by the temporally-clustered (LRU-friendly, `sprite`-like)
/// generator where recently used blocks are most likely to be reused.
///
/// The sample is produced by inverse transform on the truncated geometric
/// distribution, O(1) per draw.
#[derive(Clone, Copy, Debug)]
pub struct TruncatedGeometric {
    n: usize,
    q: f64,
}

impl TruncatedGeometric {
    /// Builds a sampler over depths `0..n` with decay `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `q` is outside `(0, 1)`.
    pub fn new(n: usize, q: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(q > 0.0 && q < 1.0, "decay must lie in (0, 1)");
        TruncatedGeometric { n, q }
    }

    /// Draws one depth in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // CDF(d) = (1 - q^(d+1)) / (1 - q^n); invert for uniform u.
        let u: f64 = rng.gen();
        let scale = 1.0 - self.q.powi(self.n as i32);
        let d = ((1.0 - u * scale).ln() / self.q.ln()).floor() as usize;
        d.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_under_seed() {
        let z = Zipf::new(1000, 1.0);
        let a: Vec<usize> = {
            let mut rng = seeded_rng(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded_rng(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_rank_zero_is_hottest() {
        let z = Zipf::new(100, 1.0);
        let mut rng = seeded_rng(11);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let hottest = counts[0];
        assert!(hottest > counts[10]);
        assert!(hottest > counts[99]);
        // 1/H(100) ~ 0.19; allow broad tolerance.
        let p0 = hottest as f64 / 20_000.0;
        assert!((0.12..0.27).contains(&p0), "p0 = {p0}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let sum: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn geometric_prefers_small_depths() {
        let g = TruncatedGeometric::new(100, 0.9);
        let mut rng = seeded_rng(5);
        let mut small = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if g.sample(&mut rng) < 10 {
                small += 1;
            }
        }
        // P(depth < 10) = (1 - 0.9^10)/(1 - 0.9^100) ~ 0.65.
        let frac = small as f64 / n as f64;
        assert!((0.55..0.75).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn geometric_samples_stay_in_range() {
        let g = TruncatedGeometric::new(5, 0.5);
        let mut rng = seeded_rng(9);
        for _ in 0..1000 {
            assert!(g.sample(&mut rng) < 5);
        }
    }
}
