//! Multi-client trace construction.
//!
//! The paper's multi-client structure (§3.2.2, §4.4) has several clients
//! sharing one server. A multi-client trace is built by interleaving one
//! reference stream per client into a single global request order.

use crate::patterns::Pattern;
use crate::{seeded_rng, ClientId, Trace, TraceRecord};
use rand::Rng;

/// Interleaves one pattern per client into a multi-client [`Trace`].
///
/// At every step a client is drawn (uniformly, or by `weights`) and its next
/// reference is appended, tagged with the client's id. The interleaving is
/// deterministic under `seed`.
///
/// # Panics
///
/// Panics if `patterns` is empty, or `weights` is given with a different
/// length than `patterns`, or all weights are zero.
///
/// # Examples
///
/// ```
/// use ulc_trace::multi::interleave;
/// use ulc_trace::patterns::{LoopingPattern, Pattern};
///
/// let patterns: Vec<Box<dyn Pattern>> = vec![
///     Box::new(LoopingPattern::new(4)),
///     Box::new(LoopingPattern::new(4).with_base(100)),
/// ];
/// let t = interleave(patterns, None, 1000, 7);
/// assert_eq!(t.num_clients(), 2);
/// assert_eq!(t.len(), 1000);
/// ```
pub fn interleave(
    mut patterns: Vec<Box<dyn Pattern>>,
    weights: Option<&[f64]>,
    len: usize,
    seed: u64,
) -> Trace {
    assert!(!patterns.is_empty(), "at least one client is required");
    let cum: Vec<f64> = match weights {
        Some(w) => {
            assert_eq!(w.len(), patterns.len(), "one weight per client");
            let total: f64 = w.iter().sum();
            assert!(total > 0.0, "weights must not all be zero");
            let mut acc = 0.0;
            w.iter()
                .map(|&x| {
                    acc += x / total;
                    acc
                })
                .collect()
        }
        None => (1..=patterns.len())
            .map(|i| i as f64 / patterns.len() as f64)
            .collect(),
    };
    let mut rng = seeded_rng(seed);
    let mut trace = Trace::new();
    // Touch every client once so num_clients is correct even for tiny
    // traces: the first `patterns.len()` references are round-robin.
    for i in 0..patterns.len().min(len) {
        let block = patterns[i].next_block();
        trace.push(TraceRecord::new(ClientId::new(i as u32), block));
    }
    for _ in patterns.len().min(len)..len {
        let u: f64 = rng.gen();
        let c = cum.partition_point(|&p| p < u).min(patterns.len() - 1);
        let block = patterns[c].next_block();
        trace.push(TraceRecord::new(ClientId::new(c as u32), block));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::LoopingPattern;

    fn two_loops() -> Vec<Box<dyn Pattern>> {
        vec![
            Box::new(LoopingPattern::new(3)),
            Box::new(LoopingPattern::new(3).with_base(10)),
        ]
    }

    #[test]
    fn every_client_appears() {
        let t = interleave(two_loops(), None, 100, 1);
        for c in 0..2u32 {
            assert!(
                !t.client_stream(ClientId::new(c)).is_empty(),
                "client {c} missing"
            );
        }
    }

    #[test]
    fn per_client_streams_preserve_pattern_order() {
        let t = interleave(two_loops(), None, 300, 2);
        let s0 = t.client_stream(ClientId::new(0));
        for (i, b) in s0.iter().enumerate() {
            assert_eq!(b.raw(), (i % 3) as u64);
        }
        let s1 = t.client_stream(ClientId::new(1));
        for (i, b) in s1.iter().enumerate() {
            assert_eq!(b.raw(), 10 + (i % 3) as u64);
        }
    }

    #[test]
    fn weights_bias_the_interleave() {
        let t = interleave(two_loops(), Some(&[9.0, 1.0]), 10_000, 3);
        let c0 = t.client_stream(ClientId::new(0)).len();
        let c1 = t.client_stream(ClientId::new(1)).len();
        assert!(c0 > 5 * c1, "c0 = {c0}, c1 = {c1}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = interleave(two_loops(), None, 500, 4);
        let b = interleave(two_loops(), None, 500, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_trace_still_valid() {
        let t = interleave(two_loops(), None, 1, 5);
        assert_eq!(t.len(), 1);
        assert_eq!(t.num_clients(), 1);
    }

    #[test]
    #[should_panic(expected = "one weight per client")]
    fn mismatched_weights_rejected() {
        let _ = interleave(two_loops(), Some(&[1.0]), 10, 6);
    }
}
