//! The inter-level message plane: how `Retrieve` requests/replies,
//! `Demote` instructions, eviction notifications and reload orders travel
//! between the levels of the hierarchy.
//!
//! The paper's client-directed protocol (§3) silently assumes a perfect
//! interconnect: every message arrives, exactly once, in order, at once.
//! This module makes that assumption an explicit, swappable component.
//! [`MessagePlane`] is the transport interface; [`ReliablePlane`] is the
//! perfect transport (bit-identical to the historical in-line behaviour,
//! proven by the differential suite in `tests/plane_differential.rs`);
//! [`FaultyPlane`] is a deterministic chaos transport driven by the
//! vendored seeded RNG that can **drop**, **duplicate**, **delay**
//! (bounded reorder) or **burst-delay** messages per link, and inject
//! **level crash-and-cold-restart** events on a fixed schedule.
//!
//! ## Topology and time
//!
//! Links are star-shaped and indexed by a small integer: for single-client
//! hierarchies link `i` carries the traffic between the client side and
//! shared level `i`; for the multi-client ULC protocol link `c` is client
//! `c`'s connection to the server. Each link has a `Down` (toward the
//! deeper level) and an `Up` (toward the client) direction. Time is the
//! simulation's logical clock: one [`MessagePlane::tick`] per reference.
//!
//! Demand reads stay on the critical path, so they are modelled as a
//! synchronous RPC ([`MessagePlane::rpc`]) whose request or reply leg can
//! be lost; placement/demotion instructions and notifications are
//! asynchronous messages ([`MessagePlane::send`]) drained by the receiving
//! side with [`MessagePlane::deliver`].
//!
//! Determinism: [`FaultyPlane`] draws every fault decision from the
//! vendored `rand::rngs::StdRng` seeded by [`FaultScenario::seed`] — the
//! `ulc-lint` determinism rule rejects any other randomness source here —
//! so a scenario replays bit-identically.

use crate::stats::FaultSummary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::str::FromStr;
use ulc_trace::BlockId;

/// Direction of travel on a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Toward the deeper level (requests, demotes, reload orders).
    Down,
    /// Toward the client side (replies, eviction notifications).
    Up,
}

/// One inter-level protocol message.
// lint:exhaustive
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Message {
    /// `Demote(b, i, i+1)`: physically ship a replacement victim down
    /// across a boundary. `mru` selects the insertion end at the receiver
    /// (the uniLRU insertion variants); `owner` is the demoting client.
    Demote {
        /// The demoted block.
        block: BlockId,
        /// Insert at the receiver's MRU end (`false` = LRU end).
        mru: bool,
        /// The client whose eviction produced the block.
        owner: u32,
    },
    /// ULC `Retrieve(b, ·, 2)`/`Demote(b, 1, 2)` directive: cache `block`
    /// at the server on behalf of `requester`.
    CacheRequest {
        /// The block to cache (or refresh) at the server.
        block: BlockId,
        /// The directing client, which becomes the block's owner.
        requester: u32,
    },
    /// Replacement notification travelling up: the receiver's share of the
    /// sending level shrank by `block`.
    EvictNotice {
        /// The replaced block.
        block: BlockId,
    },
    /// Eviction-based placement: the lower level should reload `block`
    /// from disk (instead of receiving a demotion).
    Reload {
        /// The block to reload.
        block: BlockId,
    },
}

/// Outcome of a synchronous demand-read RPC across one link.
// lint:exhaustive
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcFate {
    /// Request and reply both arrived.
    Delivered,
    /// The request leg was lost: the lower level never saw it.
    RequestLost,
    /// The lower level processed the request but the reply was lost.
    ReplyLost,
}

/// Transport-level counters, maintained identically by both planes so a
/// zero-fault [`FaultyPlane`] run produces the exact same numbers as a
/// [`ReliablePlane`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneAccounting {
    /// Messages handed to [`MessagePlane::send`].
    pub sent: u64,
    /// Messages handed back by [`MessagePlane::deliver`].
    pub delivered: u64,
    /// Messages lost (fault drops, crash purges and queue overflow).
    pub dropped: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages that were assigned a delivery delay.
    pub delayed: u64,
    /// Messages delivered after a message sent later than them.
    pub reordered: u64,
    /// Messages dropped because a link queue hit its configured bound.
    pub overflow_drops: u64,
    /// Synchronous RPCs issued.
    pub rpcs: u64,
    /// RPCs that lost a leg.
    pub rpc_failures: u64,
    /// Crash events delivered to the protocol.
    pub crashes: u64,
    /// [`MessagePlane::deliver`] calls that handed back at least one
    /// message. Maintained identically by every plane regardless of its
    /// queue representation, so a zero-fault run on any plane produces
    /// the same count — the regression witness for the allocation-reuse
    /// rework of the queue internals.
    pub delivery_batches: u64,
}

impl PlaneAccounting {
    /// Folds the transport counters into a [`FaultSummary`].
    pub fn fold_into(&self, s: &mut FaultSummary) {
        s.messages_sent += self.sent;
        s.messages_delivered += self.delivered;
        s.messages_dropped += self.dropped;
        s.messages_duplicated += self.duplicated;
        s.messages_reordered += self.reordered;
        s.overflow_drops += self.overflow_drops;
        s.rpc_failures += self.rpc_failures;
        s.crashes += self.crashes;
        s.delivery_batches += self.delivery_batches;
    }

    /// Folds the transport-fault tallies into an observability handle's
    /// `plane_faults` counter (DESIGN.md §5h). Kept separate from the
    /// protocol-level `Fault` events so transport faults are not counted
    /// twice.
    pub fn observe_into(&self, obs: &mut ulc_obs::ObsHandle) {
        obs.add_plane_faults(
            self.dropped
                + self.duplicated
                + self.reordered
                + self.overflow_drops
                + self.rpc_failures
                + self.crashes,
        );
    }
}

/// A caller-owned, reusable buffer of delivered messages.
///
/// [`MessagePlane::deliver_into`] drains a link queue into one of these
/// in place; clearing keeps the capacity, so a protocol that pumps its
/// inbox through a pooled batch every access stops touching the allocator
/// once the batch has grown to the busiest delivery it has seen
/// (DESIGN.md §5f).
#[derive(Clone, Debug, Default)]
pub struct DeliveryBatch {
    msgs: Vec<Message>,
}

impl DeliveryBatch {
    /// An empty batch. Never allocates.
    pub fn new() -> Self {
        DeliveryBatch::default()
    }

    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` when the batch holds no messages.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Empties the batch, retaining its capacity for reuse.
    pub fn clear(&mut self) {
        self.msgs.clear();
    }

    /// Appends one message (for [`MessagePlane::deliver_into`]
    /// implementations).
    pub fn push(&mut self, msg: Message) {
        self.msgs.push(msg);
    }

    /// The delivered messages, in delivery order.
    pub fn as_slice(&self) -> &[Message] {
        &self.msgs
    }

    /// Consumes the batch into a plain `Vec` (the by-value
    /// [`MessagePlane::deliver`] compatibility path).
    pub fn into_vec(self) -> Vec<Message> {
        self.msgs
    }
}

impl Extend<Message> for DeliveryBatch {
    fn extend<I: IntoIterator<Item = Message>>(&mut self, iter: I) {
        self.msgs.extend(iter);
    }
}

impl<'a> IntoIterator for &'a DeliveryBatch {
    type Item = &'a Message;
    type IntoIter = std::slice::Iter<'a, Message>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

/// The transport every inter-level message crosses.
///
/// Implementations must be deterministic: the same call sequence on the
/// same configuration must produce the same fates, orders and counters.
pub trait MessagePlane: std::fmt::Debug {
    /// Advances the logical clock by one reference.
    fn tick(&mut self);

    /// The current logical time (references since construction).
    fn now(&self) -> u64;

    /// Levels that crash-and-cold-restart at the current tick. The caller
    /// wipes the level; in-flight traffic should be purged with
    /// [`MessagePlane::purge_link`] as appropriate.
    ///
    /// By-value wrapper over [`MessagePlane::take_crashes_into`]. An empty
    /// `Vec` never allocates, so on healthy ticks this is free; pooled
    /// callers still prefer the `_into` form for a uniform hot path.
    fn take_crashes(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        self.take_crashes_into(&mut out);
        out
    }

    /// Pooled variant of [`MessagePlane::take_crashes`]: clears `out` and
    /// appends the levels crashing at the current tick. Implementations
    /// must not allocate when no crash is due (the steady-state case).
    fn take_crashes_into(&mut self, out: &mut Vec<usize>);

    /// Enqueues an asynchronous message on `(link, dir)`.
    fn send(&mut self, link: usize, dir: Direction, msg: Message);

    /// Returns every message currently deliverable on `(link, dir)`, in
    /// delivery order.
    ///
    /// By-value wrapper over [`MessagePlane::deliver_into`]; allocates a
    /// fresh buffer per call, so steady-state hot paths should pool a
    /// [`DeliveryBatch`] and use the `_into` form instead.
    fn deliver(&mut self, link: usize, dir: Direction) -> Vec<Message> {
        let mut batch = DeliveryBatch::new();
        self.deliver_into(link, dir, &mut batch);
        batch.into_vec()
    }

    /// Drains every message currently deliverable on `(link, dir)`, in
    /// delivery order, into the caller-pooled `out` (cleared first). The
    /// `delivery_batches` counter is bumped exactly when at least one
    /// message is handed back, identically across implementations.
    fn deliver_into(&mut self, link: usize, dir: Direction, out: &mut DeliveryBatch);

    /// Messages queued on `(link, dir)` (deliverable or still in flight),
    /// in queue order — for invariant checks, not for protocol use.
    fn queued(&self, link: usize, dir: Direction) -> Vec<Message>;

    /// Number of messages queued on `(link, dir)`, deliverable or still
    /// in flight — always equal to `self.queued(link, dir).len()`, which
    /// is what the default computes. Implementations override it with an
    /// O(1), allocation-free count: the sharded commit walk consults it
    /// per consumed access to decide whether a delivery round is due, so
    /// it must be as cheap as an empty-queue check.
    // lint:cold-path fallback only; every shipped plane overrides this with an O(1) allocation-free count
    fn queued_len(&self, link: usize, dir: Direction) -> usize {
        self.queued(link, dir).len()
    }

    /// Issues a synchronous demand-read RPC across `link`.
    fn rpc(&mut self, link: usize) -> RpcFate;

    /// Drops everything queued on both directions of `link` (used when an
    /// endpoint crashes), counting the losses.
    fn purge_link(&mut self, link: usize);

    /// Total messages still queued across all links.
    fn in_flight(&self) -> usize;

    /// Whether this plane can ever lose, duplicate, delay or crash —
    /// protocols gate their recovery machinery on this so a lossless plane
    /// stays bit-identical to the historical in-line behaviour.
    fn lossy(&self) -> bool;

    /// The transport counters so far.
    fn accounting(&self) -> PlaneAccounting;
}

/// The perfect transport: every message is delivered exactly once, in
/// send order, within the access that queued it.
///
/// Queues live in one dense table indexed by `link * 2 + direction`,
/// grown on demand (the plane learns its link count from traffic). The
/// queues are recycled in place: a drained slot keeps its buffer, so a
/// steady-state run allocates nothing per access. The previous ordered-map
/// representation is retained as
/// [`crate::reference::MapReliablePlane`] for the differential suite.
#[derive(Clone, Debug, Default)]
pub struct ReliablePlane {
    queues: Vec<VecDeque<Message>>,
    now: u64,
    acct: PlaneAccounting,
}

/// Dense queue-table slot for `(link, dir)`.
#[inline]
fn slot(link: usize, dir: Direction) -> usize {
    link * 2 + dir as usize
}

impl ReliablePlane {
    /// A fresh reliable plane.
    pub fn new() -> Self {
        ReliablePlane::default()
    }
}

impl MessagePlane for ReliablePlane {
    fn tick(&mut self) {
        self.now += 1;
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn take_crashes_into(&mut self, out: &mut Vec<usize>) {
        // A reliable plane never crashes; just hand back an empty slice.
        out.clear();
    }

    fn send(&mut self, link: usize, dir: Direction, msg: Message) {
        self.acct.sent += 1;
        let s = slot(link, dir);
        if s >= self.queues.len() {
            // lint:allow(hot-path-alloc) first send on a link grows the queue table once; steady state reuses it
            self.queues.resize_with(s + 1, VecDeque::new);
        }
        self.queues[s].push_back(msg);
    }

    fn deliver_into(&mut self, link: usize, dir: Direction, out: &mut DeliveryBatch) {
        out.clear();
        let Some(q) = self.queues.get_mut(slot(link, dir)) else {
            return;
        };
        if q.is_empty() {
            return;
        }
        out.extend(q.drain(..));
        self.acct.delivered += out.len() as u64;
        self.acct.delivery_batches += 1;
    }

    fn queued(&self, link: usize, dir: Direction) -> Vec<Message> {
        self.queues
            .get(slot(link, dir))
            .map(|q| q.iter().copied().collect())
            .unwrap_or_default()
    }

    fn queued_len(&self, link: usize, dir: Direction) -> usize {
        self.queues.get(slot(link, dir)).map_or(0, VecDeque::len)
    }

    fn rpc(&mut self, _link: usize) -> RpcFate {
        self.acct.rpcs += 1;
        RpcFate::Delivered
    }

    fn purge_link(&mut self, link: usize) {
        for dir in [Direction::Down, Direction::Up] {
            if let Some(q) = self.queues.get_mut(slot(link, dir)) {
                self.acct.dropped += q.len() as u64;
                q.clear();
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn lossy(&self) -> bool {
        false
    }

    fn accounting(&self) -> PlaneAccounting {
        self.acct
    }
}

/// Per-link fault rates for a [`FaultyPlane`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability an asynchronous message (or an RPC leg) is lost.
    pub drop: f64,
    /// Probability an asynchronous message is duplicated.
    pub duplicate: f64,
    /// Probability an asynchronous message is delayed.
    pub delay: f64,
    /// Maximum extra delivery delay in ticks (bounded reorder horizon).
    pub max_delay: u64,
    /// Every `burst_period` ticks the link stalls for `burst_len` ticks;
    /// messages sent during the stall are held until it ends. `0` = off.
    pub burst_period: u64,
    /// Length of each stall window in ticks.
    pub burst_len: u64,
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        max_delay: 0,
        burst_period: 0,
        burst_len: 0,
    };

    /// Whether this link can ever misbehave.
    pub fn lossy(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || (self.delay > 0.0 && self.max_delay > 0)
            || (self.burst_period > 0 && self.burst_len > 0)
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// One scheduled crash-and-cold-restart event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// Logical tick at which the level crashes.
    pub at: u64,
    /// Hierarchy level that crashes (0 = the client level).
    pub level: usize,
}

/// A deterministic fault scenario: seed, per-link fault rates and a crash
/// schedule. This is the unit the degradation sweeps and the chaos tests
/// are parameterised over.
///
/// # Examples
///
/// ```
/// use ulc_hierarchy::plane::FaultScenario;
///
/// let s: FaultScenario = "seed=7,drop=0.01,dup=0.005,delay=0.02,max_delay=8"
///     .parse()
///     .expect("well-formed scenario");
/// assert_eq!(s.seed, 7);
/// assert!((s.faults.drop - 0.01).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultScenario {
    /// Seed for the plane's deterministic RNG stream.
    pub seed: u64,
    /// Fault rates applied to every link without an override.
    pub faults: LinkFaults,
    /// Per-link overrides, as `(link, faults)` pairs.
    pub overrides: Vec<(usize, LinkFaults)>,
    /// Scheduled crash-and-cold-restart events.
    pub crashes: Vec<CrashEvent>,
    /// Bound on each `(link, direction)` queue; a send finding the queue
    /// full is dropped and counted as an overflow drop.
    pub queue_bound: usize,
}

impl FaultScenario {
    /// A scenario with no faults at all — [`FaultyPlane`] under this is
    /// bit-identical to [`ReliablePlane`].
    pub fn zero(seed: u64) -> Self {
        FaultScenario {
            seed,
            faults: LinkFaults::NONE,
            overrides: Vec::new(),
            crashes: Vec::new(),
            queue_bound: DEFAULT_QUEUE_BOUND,
        }
    }

    /// The standard mild scenario: 1% drop, 0.5% duplication, 2% delayed
    /// by up to 8 ticks — the regime the golden degradation test pins.
    pub fn mild(seed: u64) -> Self {
        FaultScenario {
            seed,
            faults: LinkFaults {
                drop: 0.01,
                duplicate: 0.005,
                delay: 0.02,
                max_delay: 8,
                burst_period: 0,
                burst_len: 0,
            },
            overrides: Vec::new(),
            crashes: Vec::new(),
            queue_bound: DEFAULT_QUEUE_BOUND,
        }
    }

    /// Sets the uniform drop rate.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        self.faults.drop = p;
        self
    }

    /// Sets the uniform duplication rate.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.faults.duplicate = p;
        self
    }

    /// Sets the uniform delay rate and reorder horizon.
    #[must_use]
    pub fn with_delay(mut self, p: f64, max_delay: u64) -> Self {
        self.faults.delay = p;
        self.faults.max_delay = max_delay;
        self
    }

    /// Adds a crash-and-cold-restart of `level` at tick `at`.
    #[must_use]
    pub fn with_crash(mut self, at: u64, level: usize) -> Self {
        self.crashes.push(CrashEvent { at, level });
        self
    }

    /// Overrides the fault rates of one link.
    #[must_use]
    pub fn with_link(mut self, link: usize, faults: LinkFaults) -> Self {
        self.overrides.push((link, faults));
        self
    }

    /// The fault rates in force on `link`.
    pub fn faults_for(&self, link: usize) -> LinkFaults {
        self.overrides
            .iter()
            .rev()
            .find(|(l, _)| *l == link)
            .map(|(_, f)| *f)
            .unwrap_or(self.faults)
    }

    /// Whether the scenario can perturb anything.
    pub fn lossy(&self) -> bool {
        self.faults.lossy()
            || self.overrides.iter().any(|(_, f)| f.lossy())
            || !self.crashes.is_empty()
    }
}

/// Default per-queue bound: far above anything a healthy run queues, low
/// enough to keep burst-delayed backlogs finite.
pub const DEFAULT_QUEUE_BOUND: usize = 4096;

impl FromStr for FaultScenario {
    type Err = String;

    /// Parses the compact scenario DSL used on the `sweep` command line:
    ///
    /// ```text
    /// seed=7,drop=0.01,dup=0.005,delay=0.02,max_delay=8,burst=1000/50,crash=5000@1;9000@1,queue=4096
    /// ```
    ///
    /// Every key is optional; unknown keys are an error.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = FaultScenario::zero(0);
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}`: expected key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("`{part}`: {e}");
            match key {
                "seed" => out.seed = value.parse().map_err(|e| bad(&e))?,
                "drop" => out.faults.drop = value.parse().map_err(|e| bad(&e))?,
                "dup" => out.faults.duplicate = value.parse().map_err(|e| bad(&e))?,
                "delay" => out.faults.delay = value.parse().map_err(|e| bad(&e))?,
                "max_delay" => out.faults.max_delay = value.parse().map_err(|e| bad(&e))?,
                "queue" => out.queue_bound = value.parse().map_err(|e| bad(&e))?,
                "burst" => {
                    let (p, l) = value
                        .split_once('/')
                        .ok_or_else(|| format!("`{part}`: expected burst=period/len"))?;
                    out.faults.burst_period = p.parse().map_err(|e| bad(&e))?;
                    out.faults.burst_len = l.parse().map_err(|e| bad(&e))?;
                }
                "crash" => {
                    for ev in value.split(';') {
                        let (at, level) = ev
                            .split_once('@')
                            .ok_or_else(|| format!("`{part}`: expected crash=tick@level"))?;
                        out.crashes.push(CrashEvent {
                            at: at.parse().map_err(|e| bad(&e))?,
                            level: level.parse().map_err(|e| bad(&e))?,
                        });
                    }
                }
                other => return Err(format!("unknown scenario key `{other}`")),
            }
        }
        let rates = [out.faults.drop, out.faults.duplicate, out.faults.delay];
        if rates.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("fault rates must lie in [0, 1]".to_string());
        }
        Ok(out)
    }
}

/// The deterministic chaos transport.
///
/// All randomness comes from the vendored seeded `StdRng`; queues are
/// `BTreeMap`s keyed by `(due_tick, sequence)`, so delivery order is a
/// pure function of the scenario.
#[derive(Clone, Debug)]
pub struct FaultyPlane {
    scenario: FaultScenario,
    rng: StdRng,
    now: u64,
    next_seq: u64,
    queues: BTreeMap<(usize, Direction), BTreeMap<(u64, u64), Message>>,
    /// Highest sequence number delivered so far per queue, for reorder
    /// detection.
    delivered_high: BTreeMap<(usize, Direction), u64>,
    crash_cursor: usize,
    acct: PlaneAccounting,
}

impl FaultyPlane {
    /// Builds the plane for `scenario`.
    pub fn new(mut scenario: FaultScenario) -> Self {
        scenario.crashes.sort_by_key(|c| c.at);
        let rng = StdRng::seed_from_u64(scenario.seed);
        FaultyPlane {
            rng,
            now: 0,
            next_seq: 0,
            queues: BTreeMap::new(),
            delivered_high: BTreeMap::new(),
            crash_cursor: 0,
            acct: PlaneAccounting::default(),
            scenario,
        }
    }

    /// The scenario this plane replays.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Delivery time for a message sent now on a link with `faults`.
    /// Also updates the delayed counter.
    fn due_time(&mut self, faults: &LinkFaults) -> u64 {
        let mut due = self.now;
        if faults.burst_period > 0 && faults.burst_len > 0 {
            let phase = self.now % faults.burst_period;
            if phase < faults.burst_len {
                // Stalled link: held until the burst window closes.
                due = self.now - phase + faults.burst_len;
            }
        }
        if faults.delay > 0.0 && faults.max_delay > 0 && self.rng.gen_bool(faults.delay) {
            due += 1 + self.rng.gen_range(0..faults.max_delay);
        }
        if due > self.now {
            self.acct.delayed += 1;
        }
        due
    }

    fn enqueue(&mut self, link: usize, dir: Direction, due: u64, msg: Message) {
        let q = self.queues.entry((link, dir)).or_default();
        if q.len() >= self.scenario.queue_bound {
            self.acct.overflow_drops += 1;
            self.acct.dropped += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        q.insert((due, seq), msg);
    }
}

impl MessagePlane for FaultyPlane {
    fn tick(&mut self) {
        self.now += 1;
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn take_crashes_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
        while let Some(ev) = self.scenario.crashes.get(self.crash_cursor) {
            if ev.at > self.now {
                break;
            }
            out.push(ev.level);
            self.crash_cursor += 1;
            self.acct.crashes += 1;
        }
    }

    fn send(&mut self, link: usize, dir: Direction, msg: Message) {
        self.acct.sent += 1;
        let faults = self.scenario.faults_for(link);
        if faults.drop > 0.0 && self.rng.gen_bool(faults.drop) {
            self.acct.dropped += 1;
            return;
        }
        let due = self.due_time(&faults);
        self.enqueue(link, dir, due, msg);
        if faults.duplicate > 0.0 && self.rng.gen_bool(faults.duplicate) {
            self.acct.duplicated += 1;
            let dup_due = self.due_time(&faults);
            self.enqueue(link, dir, dup_due, msg);
        }
    }

    fn deliver_into(&mut self, link: usize, dir: Direction, out: &mut DeliveryBatch) {
        out.clear();
        let Some(q) = self.queues.get_mut(&(link, dir)) else {
            return;
        };
        // Everything due at or before `now` is deliverable. Due entries
        // are popped off the front in place: the still-queued tail keeps
        // its nodes, where the previous split_off + replace rebuilt the
        // map and reallocated every surviving entry on every call. The
        // popped messages land in the caller's recycled batch.
        let high = self.delivered_high.entry((link, dir)).or_insert(0);
        while q.first_key_value().is_some_and(|(&(due, _), _)| due <= self.now) {
            let ((_, seq), msg) = q.pop_first().expect("peeked entry is present");
            if seq < *high {
                self.acct.reordered += 1;
            }
            *high = (*high).max(seq);
            self.acct.delivered += 1;
            out.push(msg);
        }
        if !out.is_empty() {
            self.acct.delivery_batches += 1;
        }
    }

    fn queued(&self, link: usize, dir: Direction) -> Vec<Message> {
        self.queues
            .get(&(link, dir))
            .map(|q| q.values().copied().collect())
            .unwrap_or_default()
    }

    fn queued_len(&self, link: usize, dir: Direction) -> usize {
        self.queues.get(&(link, dir)).map_or(0, BTreeMap::len)
    }

    fn rpc(&mut self, link: usize) -> RpcFate {
        self.acct.rpcs += 1;
        let faults = self.scenario.faults_for(link);
        if faults.drop > 0.0 {
            if self.rng.gen_bool(faults.drop) {
                self.acct.rpc_failures += 1;
                return RpcFate::RequestLost;
            }
            if self.rng.gen_bool(faults.drop) {
                self.acct.rpc_failures += 1;
                return RpcFate::ReplyLost;
            }
        }
        RpcFate::Delivered
    }

    fn purge_link(&mut self, link: usize) {
        for dir in [Direction::Down, Direction::Up] {
            if let Some(q) = self.queues.get_mut(&(link, dir)) {
                self.acct.dropped += q.len() as u64;
                q.clear();
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    fn lossy(&self) -> bool {
        self.scenario.lossy()
    }

    fn accounting(&self) -> PlaneAccounting {
        self.acct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    fn demote(i: u64) -> Message {
        Message::Demote {
            block: b(i),
            mru: true,
            owner: 0,
        }
    }

    #[test]
    fn reliable_plane_is_fifo_and_instant() {
        let mut p = ReliablePlane::new();
        p.tick();
        p.send(0, Direction::Down, demote(1));
        p.send(0, Direction::Down, demote(2));
        assert_eq!(p.in_flight(), 2);
        let out = p.deliver(0, Direction::Down);
        assert_eq!(out, vec![demote(1), demote(2)]);
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.accounting().sent, 2);
        assert_eq!(p.accounting().delivered, 2);
        assert_eq!(p.rpc(0), RpcFate::Delivered);
        assert!(!p.lossy());
    }

    #[test]
    fn zero_fault_faulty_plane_matches_reliable_counters() {
        let mut r = ReliablePlane::new();
        let mut f = FaultyPlane::new(FaultScenario::zero(9));
        for tick in 0..200u64 {
            r.tick();
            f.tick();
            assert!(f.take_crashes().is_empty());
            for m in 0..(tick % 3) {
                r.send(0, Direction::Down, demote(m));
                f.send(0, Direction::Down, demote(m));
            }
            assert_eq!(r.rpc(0), f.rpc(0));
            assert_eq!(
                r.deliver(0, Direction::Down),
                f.deliver(0, Direction::Down)
            );
        }
        assert_eq!(r.accounting(), f.accounting());
        assert!(!f.lossy());
    }

    #[test]
    fn drop_rate_one_loses_everything() {
        let mut f = FaultyPlane::new(FaultScenario::zero(1).with_drop(1.0));
        f.tick();
        for i in 0..50 {
            f.send(0, Direction::Down, demote(i));
        }
        assert!(f.deliver(0, Direction::Down).is_empty());
        assert_eq!(f.accounting().dropped, 50);
        assert!(matches!(
            f.rpc(0),
            RpcFate::RequestLost | RpcFate::ReplyLost
        ));
        assert!(f.lossy());
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let mut f = FaultyPlane::new(FaultScenario::zero(2).with_duplicate(1.0));
        f.tick();
        f.send(0, Direction::Down, demote(7));
        let out = f.deliver(0, Direction::Down);
        assert_eq!(out, vec![demote(7), demote(7)]);
        assert_eq!(f.accounting().duplicated, 1);
    }

    #[test]
    fn delay_is_bounded_and_reorders() {
        let mut f = FaultyPlane::new(FaultScenario::zero(3).with_delay(1.0, 4));
        f.tick();
        f.send(0, Direction::Down, demote(1));
        f.send(0, Direction::Down, demote(2));
        // Nothing is deliverable at the send tick (delay >= 1).
        assert!(f.deliver(0, Direction::Down).is_empty());
        let mut got = Vec::new();
        for _ in 0..6 {
            f.tick();
            got.extend(f.deliver(0, Direction::Down));
        }
        got.sort_by_key(|m| match m {
            Message::Demote { block, .. } => block.raw(),
            _ => 0,
        });
        assert_eq!(got, vec![demote(1), demote(2)], "bounded delay delivers");
        assert_eq!(f.accounting().delayed, 2);
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn burst_window_holds_messages_until_it_closes() {
        let mut s = FaultScenario::zero(4);
        s.faults.burst_period = 10;
        s.faults.burst_len = 5;
        let mut f = FaultyPlane::new(s);
        // tick -> now = 1: inside the first burst window [0, 5).
        f.tick();
        f.send(0, Direction::Down, demote(1));
        assert!(f.deliver(0, Direction::Down).is_empty());
        for _ in 0..3 {
            f.tick();
            assert!(f.deliver(0, Direction::Down).is_empty());
        }
        f.tick(); // now = 5: window closed
        assert_eq!(f.deliver(0, Direction::Down), vec![demote(1)]);
    }

    #[test]
    fn queue_bound_drops_overflow() {
        let mut s = FaultScenario::zero(5).with_delay(1.0, 1000);
        s.queue_bound = 8;
        let mut f = FaultyPlane::new(s);
        f.tick();
        for i in 0..20 {
            f.send(0, Direction::Down, demote(i));
        }
        assert_eq!(f.in_flight(), 8);
        assert_eq!(f.accounting().overflow_drops, 12);
    }

    #[test]
    fn crash_schedule_fires_once_in_order() {
        let s = FaultScenario::zero(6).with_crash(3, 1).with_crash(1, 0);
        let mut f = FaultyPlane::new(s);
        f.tick();
        assert_eq!(f.take_crashes(), vec![0]);
        assert!(f.take_crashes().is_empty());
        f.tick();
        assert!(f.take_crashes().is_empty());
        f.tick();
        assert_eq!(f.take_crashes(), vec![1]);
        assert_eq!(f.accounting().crashes, 2);
    }

    #[test]
    fn purge_counts_drops() {
        let mut f = FaultyPlane::new(FaultScenario::zero(7).with_delay(1.0, 50));
        f.tick();
        f.send(2, Direction::Down, demote(1));
        f.send(2, Direction::Up, Message::EvictNotice { block: b(9) });
        f.purge_link(2);
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.accounting().dropped, 2);
    }

    #[test]
    fn scenario_dsl_round_trip() {
        let s: FaultScenario =
            "seed=11,drop=0.01,dup=0.005,delay=0.02,max_delay=8,burst=1000/50,crash=500@1;900@0,queue=128"
                .parse()
                .expect("well-formed");
        assert_eq!(s.seed, 11);
        assert!((s.faults.drop - 0.01).abs() < 1e-12);
        assert!((s.faults.duplicate - 0.005).abs() < 1e-12);
        assert_eq!(s.faults.max_delay, 8);
        assert_eq!(s.faults.burst_period, 1000);
        assert_eq!(s.faults.burst_len, 50);
        assert_eq!(s.crashes.len(), 2);
        assert_eq!(s.queue_bound, 128);
        assert!(s.lossy());
    }

    #[test]
    fn scenario_dsl_rejects_garbage() {
        assert!("frobnicate=1".parse::<FaultScenario>().is_err());
        assert!("drop=1.5".parse::<FaultScenario>().is_err());
        assert!("crash=oops".parse::<FaultScenario>().is_err());
        assert!("seed".parse::<FaultScenario>().is_err());
    }

    #[test]
    fn same_seed_same_fates() {
        let run = |seed: u64| {
            let mut f = FaultyPlane::new(FaultScenario::mild(seed));
            let mut log = Vec::new();
            for i in 0..500 {
                f.tick();
                f.send(0, Direction::Down, demote(i));
                log.push(f.deliver(0, Direction::Down).len());
                log.push(match f.rpc(0) {
                    RpcFate::Delivered => 0,
                    RpcFate::RequestLost => 1,
                    RpcFate::ReplyLost => 2,
                });
            }
            log
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn link_overrides_take_precedence() {
        let s = FaultScenario::zero(8).with_link(3, LinkFaults {
            drop: 1.0,
            ..LinkFaults::NONE
        });
        let mut f = FaultyPlane::new(s);
        f.tick();
        f.send(0, Direction::Down, demote(1));
        f.send(3, Direction::Down, demote(2));
        assert_eq!(f.deliver(0, Direction::Down).len(), 1);
        assert!(f.deliver(3, Direction::Down).is_empty());
    }
}
