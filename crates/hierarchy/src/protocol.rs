//! The interface every multi-level caching protocol implements.

use crate::stats::FaultSummary;
use ulc_trace::{BlockId, ClientId};

/// What one reference did, as reported by a protocol.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The level that satisfied the reference (0-indexed), or `None` for a
    /// miss served from disk.
    pub hit_level: Option<usize>,
    /// Number of blocks demoted across each boundary while handling this
    /// reference (`levels - 1` entries; entry `i` is the level `i` →
    /// `i+1` boundary). Only *actual transfers* count — a block discarded
    /// instead of moved is not a demotion.
    pub demotions: Vec<u32>,
}

impl AccessOutcome {
    /// A hit at `level` with no demotions, for `boundaries` boundaries.
    pub fn hit(level: usize, boundaries: usize) -> Self {
        AccessOutcome {
            hit_level: Some(level),
            demotions: vec![0; boundaries],
        }
    }

    /// A miss with no demotions, for `boundaries` boundaries.
    pub fn miss(boundaries: usize) -> Self {
        AccessOutcome {
            hit_level: None,
            demotions: vec![0; boundaries],
        }
    }

    /// Resets a pooled outcome in place: a miss with `boundaries` zeroed
    /// demotion counters. Reuses the demotion buffer's capacity, so a
    /// caller that keeps one outcome across accesses never reallocates —
    /// the [`MultiLevelPolicy::access_into`] contract.
    pub fn reset(&mut self, boundaries: usize) {
        self.hit_level = None;
        self.demotions.clear();
        self.demotions.resize(boundaries, 0);
    }
}

/// A block placement and replacement protocol over a multi-level buffer
/// cache hierarchy.
///
/// Implementations: [`crate::IndLru`] (independent per-level LRU),
/// [`crate::UniLru`] (the Wong & Wilkes unified LRU / DEMOTE scheme),
/// [`crate::LruMqServer`] (LRU client over an MQ server) and `ulc_core`'s
/// ULC protocol.
pub trait MultiLevelPolicy {
    /// Handles one reference by `client` to `block`.
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome;

    /// Handles one reference by `client` to `block`, writing the result
    /// into a caller-pooled `out` instead of returning a fresh
    /// allocation. `out` is reset first (any previous contents are
    /// ignored), so one outcome can be reused across every access of a
    /// simulation — the zero-allocation steady-state driver
    /// [`crate::simulate`] relies on this.
    ///
    /// The default forwards to [`MultiLevelPolicy::access`]; engines with
    /// an allocation-free path override it.
    // lint:cold-path by-value fallback; zero-alloc engines override this and are checked via their overrides
    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        *out = self.access(client, block);
    }

    /// Hints that `client` will reference `block` a few accesses from
    /// now, so the engine may pull the block's table rows toward the CPU
    /// cache. MUST be semantics-free: calling it (for any argument, in
    /// any order, or not at all) never changes a subsequent access's
    /// outcome — the batched pipeline in [`crate::simulate`] issues it
    /// speculatively ahead of the decode cursor. The default does
    /// nothing; engines with direct-indexed tables override it.
    #[inline]
    fn prefetch(&self, client: ClientId, block: BlockId) {
        let _ = (client, block);
    }

    /// Number of cache levels.
    fn num_levels(&self) -> usize;

    /// Short scheme name for reports (e.g. `"indLRU"`).
    fn name(&self) -> &'static str;

    /// Graceful-degradation counters accumulated so far: message-plane
    /// perturbations plus the protocol's recovery work. The default is
    /// all-zero, correct for protocols that do not route their traffic
    /// through a message plane.
    fn fault_summary(&self) -> FaultSummary {
        FaultSummary::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_size_demotion_vector() {
        assert_eq!(AccessOutcome::hit(1, 2).demotions, vec![0, 0]);
        assert_eq!(AccessOutcome::miss(1).hit_level, None);
        assert_eq!(AccessOutcome::miss(1).demotions.len(), 1);
    }
}
