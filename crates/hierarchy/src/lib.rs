//! Multi-level buffer-cache hierarchy simulator and baseline protocols for
//! the ULC reproduction.
//!
//! This crate provides the substrate §4 of the paper evaluates protocols
//! on:
//!
//! * [`MultiLevelPolicy`] — the protocol interface (one `access` per
//!   reference, reporting the hit level and any demotion transfers);
//! * [`simulate`] — the trace-driven driver with the paper's
//!   first-tenth warm-up convention;
//! * [`CostModel`] / [`SimStats`] — the §4.1 timing model
//!   (`T_ave = Σ hᵢTᵢ + h_miss·T_m + Σ T_dᵢ·h_dᵢ`) and its counters;
//! * the baselines: [`IndLru`] (independent LRU), [`UniLru`] (Wong &
//!   Wilkes unified LRU / DEMOTE, with multi-client insertion variants),
//!   [`LruMqServer`] (LRU clients over a Multi-Queue server) and
//!   [`EvictionBased`] (Chen et al.'s reload-from-disk placement);
//! * [`DemotionBuffer`] — a wrapper quantifying §4.1's delayed-demotion
//!   argument for any protocol.
//!
//! The ULC protocol itself lives in the `ulc-core` crate and implements
//! the same [`MultiLevelPolicy`] trait.
//!
//! # Examples
//!
//! ```
//! use ulc_hierarchy::{simulate, CostModel, IndLru, UniLru};
//! use ulc_trace::synthetic;
//!
//! let trace = synthetic::cs(30_000);
//! let costs = CostModel::paper_three_level();
//! let caps = vec![1000, 1000, 1000];
//!
//! let mut ind = IndLru::single_client(caps.clone());
//! let mut uni = UniLru::single_client(caps);
//! let si = simulate(&mut ind, &trace, trace.warmup_len());
//! let su = simulate(&mut uni, &trace, trace.warmup_len());
//!
//! // The loop fits the aggregate but no single level: only the unified
//! // scheme hits.
//! assert!(su.total_hit_rate() > 0.9);
//! assert!(si.total_hit_rate() < 0.1);
//! assert!(su.average_access_time(&costs) < si.average_access_time(&costs));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bound;
mod cost;
mod demotion_buffer;
mod eviction_based;
mod ind_lru;
mod mq_server;
pub mod plane;
mod protocol;
pub mod reference;
mod sim;
mod stats;
mod uni_lru;

pub use cost::CostModel;
pub use demotion_buffer::DemotionBuffer;
pub use eviction_based::EvictionBased;
pub use ind_lru::IndLru;
pub use mq_server::LruMqServer;
pub use plane::{DeliveryBatch, FaultScenario, FaultyPlane, MessagePlane, ReliablePlane};
pub use protocol::{AccessOutcome, MultiLevelPolicy};
pub use sim::{simulate, simulate_with_paper_warmup, PREFETCH_DISTANCE};
pub use stats::{FaultSummary, SimStats, TimeBreakdown};
pub use uni_lru::{UniLru, UniLruVariant};
