//! The timing model of §4.1–4.2.
//!
//! `T_ave = Σ hᵢTᵢ + h_miss·T_m + Σ T_dᵢ·h_dᵢ` — per-level hit times, the
//! miss penalty and per-boundary demotion costs. Demotions are charged on
//! the critical path; §4.1 argues that hiding them is unrealistic (they
//! burst, and reserving buffers to absorb them costs hit rate).

use serde::{Deserialize, Serialize};

/// Per-level access times, miss penalty and per-boundary demotion costs,
/// all in milliseconds per 8 KB block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `T_i`: time to satisfy a hit at level `i` (0-indexed).
    pub hit_time_ms: Vec<f64>,
    /// `T_m`: time to satisfy a miss from disk.
    pub miss_time_ms: f64,
    /// `T_di`: time to demote one block across boundary `i` (level `i` →
    /// `i+1`, 0-indexed; `levels - 1` entries).
    pub demote_time_ms: Vec<f64>,
}

impl CostModel {
    /// The paper's three-level environment (§4.3): client, server and
    /// disk-array RAM cache. LAN transfer 1 ms, SAN transfer 0.2 ms, disk
    /// read 10 ms per 8 KB block; a client hit is free.
    ///
    /// Hit times accumulate along the retrieval route: `T_1 = 0`,
    /// `T_2 = 1`, `T_3 = 1.2`, `T_m = 11.2`.
    pub fn paper_three_level() -> Self {
        CostModel {
            hit_time_ms: vec![0.0, 1.0, 1.2],
            miss_time_ms: 11.2,
            demote_time_ms: vec![1.0, 0.2],
        }
    }

    /// A two-level client/server environment for the multi-client study
    /// (§4.4): LAN transfer 1 ms, disk read 10 ms.
    pub fn paper_two_level() -> Self {
        CostModel {
            hit_time_ms: vec![0.0, 1.0],
            miss_time_ms: 11.0,
            demote_time_ms: vec![1.0],
        }
    }

    /// Number of cache levels the model covers.
    pub fn levels(&self) -> usize {
        self.hit_time_ms.len()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the demotion vector is not one shorter than the hit
    /// vector, or any time is negative.
    pub fn validate(&self) {
        assert_eq!(
            self.demote_time_ms.len() + 1,
            self.hit_time_ms.len(),
            "one demotion boundary per adjacent level pair"
        );
        assert!(
            self.hit_time_ms.iter().all(|&t| t >= 0.0)
                && self.demote_time_ms.iter().all(|&t| t >= 0.0)
                && self.miss_time_ms >= 0.0,
            "times must be non-negative"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_three_level_constants() {
        let m = CostModel::paper_three_level();
        m.validate();
        assert_eq!(m.levels(), 3);
        assert_eq!(m.hit_time_ms, vec![0.0, 1.0, 1.2]);
        assert_eq!(m.miss_time_ms, 11.2);
        assert_eq!(m.demote_time_ms, vec![1.0, 0.2]);
    }

    #[test]
    fn paper_two_level_constants() {
        let m = CostModel::paper_two_level();
        m.validate();
        assert_eq!(m.levels(), 2);
        assert_eq!(m.miss_time_ms, 11.0);
    }

    #[test]
    #[should_panic(expected = "boundary")]
    fn validate_rejects_mismatched_lengths() {
        CostModel {
            hit_time_ms: vec![0.0, 1.0],
            miss_time_ms: 10.0,
            demote_time_ms: vec![],
        }
        .validate();
    }
}
