//! Unified LRU (`uniLRU`) — the Wong & Wilkes DEMOTE scheme [12].
//!
//! The hierarchy behaves as one long LRU stack: the client cache is the
//! first portion, each lower cache the next. Caching is *exclusive*: a
//! block promoted to the client leaves the lower level, and every block
//! evicted from level `i` is **demoted** — physically transferred — into
//! level `i+1`'s MRU position. This recovers the aggregate-size hit rate
//! but, as §4.3 shows, at the price of a demotion accompanying nearly
//! every reference on loop-heavy workloads.
//!
//! For the multi-client structure Wong & Wilkes supplement the basic
//! scheme with adaptive insertion policies; [`UniLruVariant`] provides the
//! basic MRU insertion, the LRU-insertion variant (demotions into a full
//! server are dropped instead of transferred) and a per-client adaptive
//! switch between them driven by observed demotion utility. The Figure 7
//! harness runs every variant and reports the best, as the paper does.

use crate::{AccessOutcome, MultiLevelPolicy};
use std::collections::HashMap;
use ulc_cache::LruCache;
use ulc_trace::{BlockId, ClientId};

/// Server insertion policy for demoted blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UniLruVariant {
    /// Demoted blocks enter the next level at its MRU end — the basic
    /// DEMOTE scheme.
    MruInsert,
    /// Demoted blocks enter at the LRU end. Into a full cache this is a
    /// no-op, so the demotion transfer is skipped entirely — useful when a
    /// client's demoted blocks are never re-read from the server.
    LruInsert,
    /// Per-client adaptive choice between the two, re-evaluated every
    /// epoch from the server-hit utility of that client's demotions
    /// (our rendering of Wong & Wilkes' adaptive cache insertion).
    Adaptive,
}

/// Per-client adaptive state.
#[derive(Clone, Debug, Default)]
struct AdaptiveState {
    demotions: u64,
    demoted_hits: u64,
    mru_mode: bool,
    accesses: u64,
}

/// The unified LRU protocol.
#[derive(Clone, Debug)]
pub struct UniLru {
    clients: Vec<LruCache<BlockId>>,
    shared: Vec<LruCache<BlockId>>,
    variant: UniLruVariant,
    /// Which client last demoted each block resident in `shared[0]`
    /// (adaptive bookkeeping).
    demoted_by: HashMap<BlockId, u32>,
    adaptive: Vec<AdaptiveState>,
    epoch_len: u64,
    #[cfg(feature = "debug_invariants")]
    tick: u64,
}

impl UniLru {
    /// A single-client hierarchy with basic MRU insertion:
    /// `capacities[0]` is the client cache, the rest the lower levels.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is zero.
    pub fn single_client(capacities: Vec<usize>) -> Self {
        assert!(!capacities.is_empty(), "at least one level is required");
        UniLru::multi_client(
            vec![capacities[0]],
            capacities[1..].to_vec(),
            UniLruVariant::MruInsert,
        )
    }

    /// A multi-client hierarchy under `variant`.
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn multi_client(
        client_capacities: Vec<usize>,
        shared_capacities: Vec<usize>,
        variant: UniLruVariant,
    ) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        let n = client_capacities.len();
        UniLru {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            shared: shared_capacities.into_iter().map(LruCache::new).collect(),
            variant,
            demoted_by: HashMap::new(),
            adaptive: vec![
                AdaptiveState {
                    mru_mode: true,
                    ..AdaptiveState::default()
                };
                n
            ],
            epoch_len: 5_000,
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }

    /// Deep structural validation of the DEMOTE hierarchy: per-level
    /// capacity bounds, single-residency across the shared levels (a
    /// block is demoted *into* exactly one place), full exclusivity for
    /// single-client hierarchies (a promoted block has left every lower
    /// level), and adaptive bookkeeping that tracks exactly the blocks
    /// resident in the first shared level.
    ///
    /// Two *different* clients may both privately cache a block — each
    /// read it through its own miss path — so cross-client exclusivity is
    /// intentionally not asserted.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        for (i, c) in self.clients.iter().enumerate() {
            assert!(c.len() <= c.capacity(), "client {i} over capacity");
        }
        for (i, s) in self.shared.iter().enumerate() {
            assert!(s.len() <= s.capacity(), "shared level {i} over capacity");
            for b in s.iter() {
                for (j, deeper) in self.shared.iter().enumerate().skip(i + 1) {
                    assert!(
                        !deeper.contains(b),
                        "{b:?} resident in shared levels {i} and {j}"
                    );
                }
                if self.clients.len() == 1 {
                    assert!(
                        !self.clients[0].contains(b),
                        "exclusive caching: {b:?} at the client and in shared level {i}"
                    );
                }
            }
        }
        // lint:allow(determinism) order-insensitive membership checks
        for (b, &owner) in self.demoted_by.iter() {
            assert!(
                (owner as usize) < self.clients.len(),
                "demoted_by owner {owner} out of range"
            );
            assert!(
                self.shared.first().is_some_and(|s| s.contains(b)),
                "demoted_by tracks {b:?} which is not in the first shared level"
            );
        }
    }

    /// Amortised feature-gated self-check; see DESIGN.md §5c.
    #[cfg(feature = "debug_invariants")]
    fn debug_validate(&mut self) {
        self.tick += 1;
        let total: usize = self.shared.iter().map(|s| s.len()).sum();
        if total < 64 || self.tick.is_multiple_of(256) {
            self.check_invariants();
        }
    }

    /// The active variant.
    pub fn variant(&self) -> UniLruVariant {
        self.variant
    }

    /// Whether client `c` currently inserts demoted blocks at the MRU end.
    fn mru_mode(&self, c: usize) -> bool {
        match self.variant {
            UniLruVariant::MruInsert => true,
            UniLruVariant::LruInsert => false,
            UniLruVariant::Adaptive => self.adaptive[c].mru_mode,
        }
    }

    /// Demotes `victim` (evicted from the client of `c`) into the shared
    /// levels, cascading. Returns the per-boundary transfer counts.
    fn demote_chain(&mut self, c: usize, victim: BlockId, demotions: &mut [u32]) {
        if self.shared.is_empty() {
            return; // single-level hierarchy: eviction is a discard
        }
        let mru = self.mru_mode(c);
        let incoming = if mru {
            demotions[0] += 1;
            self.demoted_by.insert(victim, c as u32);
            self.shared[0].insert_mru(victim)
        } else {
            let evicted = self.shared[0].insert_lru(victim);
            if evicted != Some(victim) {
                // The block actually entered the server.
                demotions[0] += 1;
                self.demoted_by.insert(victim, c as u32);
            }
            evicted
        };
        if let Some(mut w) = incoming {
            if w != victim {
                self.demoted_by.remove(&w);
            }
            // Cascade down the remaining levels with MRU insertion.
            for (j, level) in self.shared.iter_mut().enumerate().skip(1) {
                demotions[j] += 1;
                match level.insert_mru(w) {
                    Some(next) => w = next,
                    None => return,
                }
            }
            // Evicted from the last level: dropped.
        }
    }

    fn maybe_flip_epoch(&mut self, c: usize) {
        if self.variant != UniLruVariant::Adaptive {
            return;
        }
        let st = &mut self.adaptive[c];
        st.accesses += 1;
        if st.accesses.is_multiple_of(self.epoch_len) {
            // Keep MRU insertion only if demoted blocks earn server hits.
            let utility = if st.demotions == 0 {
                1.0
            } else {
                st.demoted_hits as f64 / st.demotions as f64
            };
            st.mru_mode = utility >= 0.05;
            st.demotions = 0;
            st.demoted_hits = 0;
        }
    }
}

impl MultiLevelPolicy for UniLru {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        let boundaries = self.num_levels() - 1;
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        self.maybe_flip_epoch(c);
        let mut outcome = AccessOutcome::miss(boundaries);

        if self.clients[c].contains(&block) {
            self.clients[c].access(block); // refresh recency only
            outcome.hit_level = Some(0);
            return outcome;
        }
        // Search the lower levels; promotion is exclusive.
        for i in 0..self.shared.len() {
            if self.shared[i].contains(&block) {
                self.shared[i].remove(&block);
                if i == 0 {
                    if let Some(owner) = self.demoted_by.remove(&block) {
                        if self.variant == UniLruVariant::Adaptive {
                            self.adaptive[owner as usize].demoted_hits += 1;
                        }
                    }
                }
                outcome.hit_level = Some(i + 1);
                break;
            }
        }
        // Install at the client; the client's victim is demoted.
        if let Some(victim) = self.clients[c].insert_mru(block) {
            if self.variant == UniLruVariant::Adaptive {
                self.adaptive[c].demotions += 1;
            }
            self.demote_chain(c, victim, &mut outcome.demotions);
        }
        #[cfg(feature = "debug_invariants")]
        self.debug_validate();
        outcome
    }

    fn num_levels(&self) -> usize {
        1 + self.shared.len()
    }

    fn name(&self) -> &'static str {
        "uniLRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, IndLru};
    use ulc_trace::synthetic;

    #[test]
    fn behaves_like_one_big_lru_stack() {
        // A loop over L blocks with aggregate capacity >= L hits fully
        // (after warm-up), even though no single level can hold the loop.
        let t = synthetic::cs(50_000); // 2500-block loop
        let mut p = UniLru::single_client(vec![1000, 1000, 1000]);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(
            stats.total_hit_rate() > 0.99,
            "aggregate hit rate = {:.3}",
            stats.total_hit_rate()
        );
        // The hits land exactly where recency 2499 falls: level 3.
        let h = stats.hit_rates();
        assert!(h[0] < 0.01 && h[1] < 0.01 && h[2] > 0.98, "h = {h:?}");
    }

    #[test]
    fn loop_demotion_rate_is_total() {
        // §4.3's tpcc1 signature: on a looping workload every reference
        // incurs a first-boundary demotion under uniLRU.
        let t = synthetic::cs(50_000);
        let mut p = UniLru::single_client(vec![1000, 1000, 1000]);
        let stats = simulate(&mut p, &t, t.warmup_len());
        let d = stats.demotion_rates();
        assert!(d[0] > 0.99, "b1 demotion rate = {:.3}", d[0]);
    }

    #[test]
    fn beats_ind_lru_hit_rate_on_random() {
        // §4.3: uniLRU makes low levels contribute their full share on the
        // random workload.
        let t = synthetic::random_small(100_000);
        let caps = vec![1000usize, 1000, 1000];
        let mut uni = UniLru::single_client(caps.clone());
        let mut ind = IndLru::single_client(caps);
        let su = simulate(&mut uni, &t, t.warmup_len());
        let si = simulate(&mut ind, &t, t.warmup_len());
        // uniLRU: each level's hit rate ~ capacity/universe = 20%.
        let h = su.hit_rates();
        for (i, &hi) in h.iter().enumerate() {
            assert!(
                (hi - 0.2).abs() < 0.03,
                "uniLRU level {} hit rate = {:.3}",
                i + 1,
                hi
            );
        }
        assert!(su.total_hit_rate() > si.total_hit_rate() + 0.2);
    }

    #[test]
    fn exclusive_promotion_removes_from_server() {
        let mut p = UniLru::single_client(vec![1, 2]);
        let a = BlockId::new(1);
        let b = BlockId::new(2);
        p.access(ClientId::SINGLE, a); // a at client
        p.access(ClientId::SINGLE, b); // b at client, a demoted to server
        let out = p.access(ClientId::SINGLE, a); // server hit, promoted
        assert_eq!(out.hit_level, Some(1));
        assert_eq!(out.demotions, vec![1]); // b demoted to make room
        // a must now be gone from the server (exclusive).
        let out = p.access(ClientId::SINGLE, a);
        assert_eq!(out.hit_level, Some(0));
    }

    #[test]
    fn lru_insert_variant_cuts_demotion_traffic_on_a_big_loop() {
        // Loop (2500) ≫ client+server (1000): MRU insertion demotes on
        // every reference for zero hits; LRU insertion self-evicts most
        // demotions (no transfer) and freezes a protected set in the
        // server that even earns hits.
        let t = synthetic::cs(30_000);
        let mut mru = UniLru::multi_client(vec![500], vec![500], UniLruVariant::MruInsert);
        let mut lru = UniLru::multi_client(vec![500], vec![500], UniLruVariant::LruInsert);
        let sm = simulate(&mut mru, &t, t.warmup_len());
        let sl = simulate(&mut lru, &t, t.warmup_len());
        assert!(sm.demotion_rates()[0] > 0.9, "mru = {:?}", sm.demotion_rates());
        assert!(
            sl.demotion_rates()[0] < 0.5 * sm.demotion_rates()[0],
            "lru-insert rate = {:.3}",
            sl.demotion_rates()[0]
        );
        assert!(sl.hit_rates()[1] >= sm.hit_rates()[1]);
    }

    #[test]
    fn adaptive_converges_to_lru_insert_on_useless_demotions() {
        // A loop far larger than client+server: demoted blocks never hit.
        let t = synthetic::cs(60_000);
        let mut p = UniLru::multi_client(vec![100], vec![100], UniLruVariant::Adaptive);
        let stats = simulate(&mut p, &t, 30_000);
        assert!(
            stats.demotion_rates()[0] < 0.05,
            "adaptive should stop demoting, rate = {:.3}",
            stats.demotion_rates()[0]
        );
    }

    #[test]
    fn adaptive_keeps_mru_when_demotions_pay() {
        // sprite re-reads demoted blocks from the server constantly.
        let t = synthetic::sprite(40_000);
        let mut p = UniLru::multi_client(vec![200], vec![1500], UniLruVariant::Adaptive);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(stats.hit_rates()[1] > 0.2, "server should earn hits");
        assert!(stats.demotion_rates()[0] > 0.3);
    }
}
