//! Unified LRU (`uniLRU`) — the Wong & Wilkes DEMOTE scheme [12].
//!
//! The hierarchy behaves as one long LRU stack: the client cache is the
//! first portion, each lower cache the next. Caching is *exclusive*: a
//! block promoted to the client leaves the lower level, and every block
//! evicted from level `i` is **demoted** — physically transferred — into
//! level `i+1`'s MRU position. This recovers the aggregate-size hit rate
//! but, as §4.3 shows, at the price of a demotion accompanying nearly
//! every reference on loop-heavy workloads.
//!
//! For the multi-client structure Wong & Wilkes supplement the basic
//! scheme with adaptive insertion policies; [`UniLruVariant`] provides the
//! basic MRU insertion, the LRU-insertion variant (demotions into a full
//! server are dropped instead of transferred) and a per-client adaptive
//! switch between them driven by observed demotion utility. The Figure 7
//! harness runs every variant and reports the best, as the paper does.
//!
//! ## Message plane
//!
//! All inter-level traffic crosses a [`MessagePlane`]: each demotion is a
//! [`Message::Demote`] on the boundary link it crosses (link `j` joins
//! level `j` to level `j+1`), applied when the plane delivers it, and
//! each probe of a lower level is a demand-read RPC on that boundary.
//! Under the default [`ReliablePlane`] everything is delivered in order
//! within the access that produced it, which reproduces the historical
//! in-line behaviour bit for bit (`tests/plane_differential.rs`). Under a
//! lossy [`crate::FaultyPlane`] demotes can arrive late, twice or never;
//! the receiver tolerates redundant demotes naturally (re-insertion is a
//! refresh), drops late demotes that would break exclusivity, and
//! [`UniLru::reconcile`] repairs any residual duplicate residency.

use crate::plane::{DeliveryBatch, Direction, Message, MessagePlane, ReliablePlane, RpcFate};
use crate::stats::FaultSummary;
use crate::{AccessOutcome, MultiLevelPolicy};
use ulc_cache::LruCache;
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, BlockMap, ClientId, TableMode};

/// Server insertion policy for demoted blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UniLruVariant {
    /// Demoted blocks enter the next level at its MRU end — the basic
    /// DEMOTE scheme.
    MruInsert,
    /// Demoted blocks enter at the LRU end. Into a full cache this is a
    /// no-op, so the demotion transfer is skipped entirely — useful when a
    /// client's demoted blocks are never re-read from the server.
    LruInsert,
    /// Per-client adaptive choice between the two, re-evaluated every
    /// epoch from the server-hit utility of that client's demotions
    /// (our rendering of Wong & Wilkes' adaptive cache insertion).
    Adaptive,
}

/// Per-client adaptive state.
#[derive(Clone, Debug, Default)]
struct AdaptiveState {
    demotions: u64,
    demoted_hits: u64,
    mru_mode: bool,
    accesses: u64,
}

/// The unified LRU protocol, generic over the transport its demotion and
/// retrieval traffic crosses (default: the perfect [`ReliablePlane`]).
#[derive(Clone, Debug)]
pub struct UniLru<P: MessagePlane = ReliablePlane> {
    clients: Vec<LruCache<BlockId>>,
    shared: Vec<LruCache<BlockId>>,
    variant: UniLruVariant,
    /// Which client last demoted each block resident in `shared[0]`
    /// (adaptive bookkeeping).
    demoted_by: BlockMap<u32>,
    adaptive: Vec<AdaptiveState>,
    epoch_len: u64,
    plane: P,
    /// Protocol-side recovery counters (the plane keeps the transport
    /// counters itself).
    recovery: FaultSummary,
    /// Pooled delivery and crash buffers, recycled across accesses so the
    /// steady-state pump performs no heap allocation (DESIGN.md §5f).
    batch: DeliveryBatch,
    crash_buf: Vec<usize>,
    /// Observability hooks (no-op unless the `obs` feature is on and a
    /// recorder has been attached; DESIGN.md §5h).
    obs: ObsHandle,
    #[cfg(feature = "debug_invariants")]
    tick: u64,
}

impl UniLru {
    /// A single-client hierarchy with basic MRU insertion:
    /// `capacities[0]` is the client cache, the rest the lower levels.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is zero.
    pub fn single_client(capacities: Vec<usize>) -> Self {
        assert!(!capacities.is_empty(), "at least one level is required");
        UniLru::multi_client(
            vec![capacities[0]],
            capacities[1..].to_vec(),
            UniLruVariant::MruInsert,
        )
    }

    /// A multi-client hierarchy under `variant`.
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn multi_client(
        client_capacities: Vec<usize>,
        shared_capacities: Vec<usize>,
        variant: UniLruVariant,
    ) -> Self {
        UniLru::multi_client_with_mode(
            client_capacities,
            shared_capacities,
            variant,
            TableMode::Dense,
        )
    }

    /// [`UniLru::multi_client`] with an explicit block-table
    /// representation: `TableMode::Dense` (the default interned flat
    /// tables) or `TableMode::Hashed` (the retained map-backed reference
    /// path used by the differential suite and throughput baselines).
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn multi_client_with_mode(
        client_capacities: Vec<usize>,
        shared_capacities: Vec<usize>,
        variant: UniLruVariant,
        mode: TableMode,
    ) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        let n = client_capacities.len();
        UniLru {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            shared: shared_capacities.into_iter().map(LruCache::new).collect(),
            variant,
            demoted_by: BlockMap::new(mode),
            adaptive: vec![
                AdaptiveState {
                    mru_mode: true,
                    ..AdaptiveState::default()
                };
                n
            ],
            epoch_len: 5_000,
            plane: ReliablePlane::new(),
            recovery: FaultSummary::default(),
            batch: DeliveryBatch::new(),
            crash_buf: Vec::new(),
            obs: ObsHandle::default(),
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }
}

impl<P: MessagePlane> UniLru<P> {
    /// Moves the hierarchy onto a different message plane (used to swap
    /// in a [`crate::FaultyPlane`] before a run starts).
    pub fn with_plane<Q: MessagePlane>(self, plane: Q) -> UniLru<Q> {
        UniLru {
            clients: self.clients,
            shared: self.shared,
            variant: self.variant,
            demoted_by: self.demoted_by,
            adaptive: self.adaptive,
            epoch_len: self.epoch_len,
            plane,
            recovery: self.recovery,
            batch: self.batch,
            crash_buf: self.crash_buf,
            obs: self.obs,
            #[cfg(feature = "debug_invariants")]
            tick: self.tick,
        }
    }

    /// The message plane the hierarchy runs on.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    /// Deep structural validation of the DEMOTE hierarchy: per-level
    /// capacity bounds, single-residency across the shared levels (a
    /// block is demoted *into* exactly one place), full exclusivity for
    /// single-client hierarchies (a promoted block has left every lower
    /// level), and adaptive bookkeeping that tracks exactly the blocks
    /// resident in the first shared level.
    ///
    /// Two *different* clients may both privately cache a block — each
    /// read it through its own miss path — so cross-client exclusivity is
    /// intentionally not asserted.
    ///
    /// On a lossy plane these guarantees only hold once traffic has
    /// settled and [`UniLru::reconcile`] has run; mid-run, use
    /// [`UniLru::check_recoverable_invariants`].
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.check_recoverable_invariants();
        for (i, s) in self.shared.iter().enumerate() {
            for b in s.iter() {
                for (j, deeper) in self.shared.iter().enumerate().skip(i + 1) {
                    assert!(
                        !deeper.contains(b),
                        "{b:?} resident in shared levels {i} and {j}"
                    );
                }
                if self.clients.len() == 1 {
                    assert!(
                        !self.clients[0].contains(b),
                        "exclusive caching: {b:?} at the client and in shared level {i}"
                    );
                }
            }
        }
        for (b, &owner) in self.demoted_by.iter() {
            assert!(
                (owner as usize) < self.clients.len(),
                "demoted_by owner {owner} out of range"
            );
            assert!(
                self.shared.first().is_some_and(|s| s.contains(&b)),
                "demoted_by tracks {b:?} which is not in the first shared level"
            );
        }
    }

    /// The invariants that hold at *every* instant even under message
    /// loss, duplication, reordering and crashes: per-level capacity
    /// bounds and in-range adaptive bookkeeping. The chaos suite asserts
    /// these mid-run; the full [`UniLru::check_invariants`] set is only
    /// guaranteed after [`UniLru::settle`] + [`UniLru::reconcile`].
    ///
    /// # Panics
    ///
    /// Panics if a recoverable invariant is violated.
    pub fn check_recoverable_invariants(&self) {
        for (i, c) in self.clients.iter().enumerate() {
            assert!(c.len() <= c.capacity(), "client {i} over capacity");
        }
        for (i, s) in self.shared.iter().enumerate() {
            assert!(s.len() <= s.capacity(), "shared level {i} over capacity");
        }
    }

    /// Amortised feature-gated self-check; see DESIGN.md §5c/§5d.
    #[cfg(feature = "debug_invariants")]
    fn debug_validate(&mut self) {
        self.tick += 1;
        let total: usize = self.shared.iter().map(|s| s.len()).sum();
        if total < 64 || self.tick.is_multiple_of(256) {
            if self.plane.lossy() {
                self.check_recoverable_invariants();
            } else {
                self.check_invariants();
            }
        }
    }

    /// The active variant.
    pub fn variant(&self) -> UniLruVariant {
        self.variant
    }

    /// Whether client `c` currently inserts demoted blocks at the MRU end.
    fn mru_mode(&self, c: usize) -> bool {
        match self.variant {
            UniLruVariant::MruInsert => true,
            UniLruVariant::LruInsert => false,
            UniLruVariant::Adaptive => self.adaptive[c].mru_mode,
        }
    }

    /// Applies one demote arriving at boundary `j` (into `shared[j]`).
    ///
    /// Redundant demotes — the block already resides at the level, from a
    /// duplicated message or a stale retry — degrade to a recency refresh
    /// inside the insert, exactly like the in-line scheme handled a
    /// cross-client re-demotion. A *late* demote whose block has since
    /// been promoted back into a sole client would break exclusivity; it
    /// is detected, dropped and counted as a repaired violation.
    fn apply_demote(
        &mut self,
        j: usize,
        block: BlockId,
        mru: bool,
        owner: u32,
        demotions: &mut [u32],
    ) {
        if self.clients.len() == 1 && self.clients[0].contains(&block) {
            self.recovery.residency_violations_detected += 1;
            self.recovery.residency_violations_repaired += 1;
            self.obs.on_fault(j + 1, block.raw());
            return;
        }
        let incoming = if j == 0 {
            if mru {
                demotions[0] += 1;
                self.obs.on_demote(0, block.raw());
                self.demoted_by.insert(block, owner);
                self.shared[0].insert_mru(block)
            } else {
                let evicted = self.shared[0].insert_lru(block);
                if evicted != Some(block) {
                    // The block actually entered the server.
                    demotions[0] += 1;
                    self.obs.on_demote(0, block.raw());
                    self.demoted_by.insert(block, owner);
                }
                evicted
            }
        } else {
            demotions[j] += 1;
            self.obs.on_demote(j, block.raw());
            self.shared[j].insert_mru(block)
        };
        if let Some(w) = incoming {
            if j == 0 && w != block {
                self.demoted_by.remove(w);
            }
            // Cascade down the next boundary with MRU insertion; evicted
            // from the last level means dropped.
            if j + 1 < self.shared.len() {
                self.plane.send(
                    j + 1,
                    Direction::Down,
                    Message::Demote {
                        block: w,
                        mru: true,
                        owner,
                    },
                );
            } else {
                self.obs.on_evict(j + 1, w.raw());
            }
        }
    }

    /// Delivers and applies every deliverable message, boundary by
    /// boundary from the top, until the plane has nothing due. A cascade
    /// send lands on a higher-numbered link, so on the reliable plane one
    /// ascending pass drains a whole demotion chain in the historical
    /// in-line order.
    fn pump(&mut self, demotions: &mut [u32]) {
        // The delivery batch is pooled on the protocol and taken out for
        // the duration of the pump (applying a demote needs `&mut self`).
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            let mut any = false;
            for j in 0..self.shared.len() {
                self.plane.deliver_into(j, Direction::Down, &mut batch);
                for k in 0..batch.len() {
                    any = true;
                    // uniLRU's links carry only demotes; anything else is
                    // a foreign duplicate — ignore it.
                    // lint:allow(plane-exhaustive) demotion is the only Down traffic in the uni-LRU hierarchy; foreign kinds are dropped by design
                    if let Message::Demote { block, mru, owner } = batch.as_slice()[k] {
                        self.apply_demote(j, block, mru, owner, demotions);
                    }
                }
            }
            if !any {
                break;
            }
        }
        self.batch = batch;
    }

    /// Wipes crashed levels (cold restart) and purges traffic destined
    /// for them.
    // lint:cold-path crash recovery rebuilds whole caches; allocation is by design
    fn apply_crashes(&mut self) {
        let mut crashes = std::mem::take(&mut self.crash_buf);
        self.plane.take_crashes_into(&mut crashes);
        for &level in &crashes {
            if level == 0 {
                for cl in &mut self.clients {
                    *cl = LruCache::new(cl.capacity());
                }
                // In-flight demotes already left the clients; they survive.
            } else if level - 1 < self.shared.len() {
                let s = level - 1;
                self.shared[s] = LruCache::new(self.shared[s].capacity());
                if s == 0 {
                    self.demoted_by.clear();
                }
                self.plane.purge_link(s);
            }
        }
        self.crash_buf = crashes;
    }

    /// Runs the plane forward until no message is in flight, applying
    /// everything that arrives. Demotion counts accrued while settling
    /// are protocol-internal (no reference is being served).
    ///
    /// # Panics
    ///
    /// Panics if the plane fails to drain (a plane bug: delays are
    /// bounded and cascades strictly descend).
    pub fn settle(&mut self) {
        let mut scratch = vec![0u32; self.shared.len()];
        let mut guard = 0u64;
        loop {
            self.pump(&mut scratch);
            if self.plane.in_flight() == 0 {
                break;
            }
            self.plane.tick();
            self.apply_crashes();
            guard += 1;
            assert!(guard < 1_000_000, "message plane failed to settle");
        }
    }

    /// One reconciliation round: restores single residency after faults by
    /// purging duplicate copies bottom-up from the authoritative top copy
    /// (the fastest level keeps the block; deeper duplicates are evicted).
    /// Violations found are counted as detected and repaired.
    pub fn reconcile(&mut self) {
        self.recovery.reconciliation_rounds += 1;
        self.obs.on_reconcile(0);
        if self.clients.len() == 1 {
            let cached: Vec<BlockId> = self.clients[0].iter().copied().collect();
            for b in cached {
                for s in 0..self.shared.len() {
                    if self.shared[s].remove(&b) {
                        if s == 0 {
                            self.demoted_by.remove(b);
                        }
                        self.recovery.residency_violations_detected += 1;
                        self.recovery.residency_violations_repaired += 1;
                    }
                }
            }
        }
        for i in 0..self.shared.len() {
            let here: Vec<BlockId> = self.shared[i].iter().copied().collect();
            for b in here {
                for j in i + 1..self.shared.len() {
                    if self.shared[j].remove(&b) {
                        self.recovery.residency_violations_detected += 1;
                        self.recovery.residency_violations_repaired += 1;
                    }
                }
            }
        }
    }

    fn maybe_flip_epoch(&mut self, c: usize) {
        if self.variant != UniLruVariant::Adaptive {
            return;
        }
        let st = &mut self.adaptive[c];
        st.accesses += 1;
        if st.accesses.is_multiple_of(self.epoch_len) {
            // Keep MRU insertion only if demoted blocks earn server hits.
            let utility = if st.demotions == 0 {
                1.0
            } else {
                st.demoted_hits as f64 / st.demotions as f64
            };
            st.mru_mode = utility >= 0.05;
            st.demotions = 0;
            st.demoted_hits = 0;
        }
    }
}

impl<P: MessagePlane> MultiLevelPolicy for UniLru<P> {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(self.num_levels() - 1);
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        let boundaries = self.num_levels() - 1;
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        out.reset(boundaries);
        self.obs.begin_access();
        self.plane.tick();
        self.apply_crashes();
        self.maybe_flip_epoch(c);
        // Apply traffic that became due since the previous reference
        // (no-op on the reliable plane: its queues drain within an access).
        self.pump(&mut out.demotions);

        if self.clients[c].contains(&block) {
            self.clients[c].access(block); // refresh recency only
            out.hit_level = Some(0);
            self.obs.on_hit(0, block.raw());
            return;
        }
        // Search the lower levels; promotion is exclusive. Each probe is a
        // demand read crossing boundary `i`.
        for i in 0..self.shared.len() {
            let fate = self.plane.rpc(i);
            self.obs.on_rpc(i + 1);
            match fate {
                RpcFate::RequestLost => {
                    // The level never saw it.
                    self.obs.on_fault(i + 1, block.raw());
                    continue;
                }
                fate => {
                    if self.shared[i].contains(&block) {
                        self.shared[i].remove(&block);
                        if i == 0 {
                            if let Some(owner) = self.demoted_by.remove(block) {
                                if self.variant == UniLruVariant::Adaptive {
                                    self.adaptive[owner as usize].demoted_hits += 1;
                                }
                            }
                        }
                        if fate == RpcFate::ReplyLost {
                            // The level gave the block up but the reply
                            // vanished: the copy is lost in transit and
                            // the reference falls through to disk.
                            self.obs.on_fault(i + 1, block.raw());
                            continue;
                        }
                        out.hit_level = Some(i + 1);
                        break;
                    }
                }
            }
        }
        match out.hit_level {
            Some(level) => self.obs.on_hit(level, block.raw()),
            None => self.obs.on_miss(block.raw()),
        }
        // The block always lands at the requesting client (exclusive
        // promotion on a hit, demand load on a miss).
        self.obs.on_retrieve(0, block.raw());
        // Install at the client; the client's victim is demoted.
        if let Some(victim) = self.clients[c].insert_mru(block) {
            if self.variant == UniLruVariant::Adaptive {
                self.adaptive[c].demotions += 1;
            }
            let mru = self.mru_mode(c);
            self.plane.send(
                0,
                Direction::Down,
                Message::Demote {
                    block: victim,
                    mru,
                    owner: c as u32,
                },
            );
            self.pump(&mut out.demotions);
        }
        #[cfg(feature = "debug_invariants")]
        self.debug_validate();
    }

    fn num_levels(&self) -> usize {
        1 + self.shared.len()
    }

    fn name(&self) -> &'static str {
        "uniLRU"
    }

    fn fault_summary(&self) -> FaultSummary {
        let mut s = self.recovery;
        self.plane.accounting().fold_into(&mut s);
        s
    }
}

impl<P: MessagePlane> Observe for UniLru<P> {
    fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        &mut self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{FaultScenario, FaultyPlane};
    use crate::{simulate, IndLru};
    use ulc_trace::synthetic;

    #[test]
    fn behaves_like_one_big_lru_stack() {
        // A loop over L blocks with aggregate capacity >= L hits fully
        // (after warm-up), even though no single level can hold the loop.
        let t = synthetic::cs(50_000); // 2500-block loop
        let mut p = UniLru::single_client(vec![1000, 1000, 1000]);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(
            stats.total_hit_rate() > 0.99,
            "aggregate hit rate = {:.3}",
            stats.total_hit_rate()
        );
        // The hits land exactly where recency 2499 falls: level 3.
        let h = stats.hit_rates();
        assert!(h[0] < 0.01 && h[1] < 0.01 && h[2] > 0.98, "h = {h:?}");
    }

    #[test]
    fn loop_demotion_rate_is_total() {
        // §4.3's tpcc1 signature: on a looping workload every reference
        // incurs a first-boundary demotion under uniLRU.
        let t = synthetic::cs(50_000);
        let mut p = UniLru::single_client(vec![1000, 1000, 1000]);
        let stats = simulate(&mut p, &t, t.warmup_len());
        let d = stats.demotion_rates();
        assert!(d[0] > 0.99, "b1 demotion rate = {:.3}", d[0]);
    }

    #[test]
    fn beats_ind_lru_hit_rate_on_random() {
        // §4.3: uniLRU makes low levels contribute their full share on the
        // random workload.
        let t = synthetic::random_small(100_000);
        let caps = vec![1000usize, 1000, 1000];
        let mut uni = UniLru::single_client(caps.clone());
        let mut ind = IndLru::single_client(caps);
        let su = simulate(&mut uni, &t, t.warmup_len());
        let si = simulate(&mut ind, &t, t.warmup_len());
        // uniLRU: each level's hit rate ~ capacity/universe = 20%.
        let h = su.hit_rates();
        for (i, &hi) in h.iter().enumerate() {
            assert!(
                (hi - 0.2).abs() < 0.03,
                "uniLRU level {} hit rate = {:.3}",
                i + 1,
                hi
            );
        }
        assert!(su.total_hit_rate() > si.total_hit_rate() + 0.2);
    }

    #[test]
    fn exclusive_promotion_removes_from_server() {
        let mut p = UniLru::single_client(vec![1, 2]);
        let a = BlockId::new(1);
        let b = BlockId::new(2);
        p.access(ClientId::SINGLE, a); // a at client
        p.access(ClientId::SINGLE, b); // b at client, a demoted to server
        let out = p.access(ClientId::SINGLE, a); // server hit, promoted
        assert_eq!(out.hit_level, Some(1));
        assert_eq!(out.demotions, vec![1]); // b demoted to make room
        // a must now be gone from the server (exclusive).
        let out = p.access(ClientId::SINGLE, a);
        assert_eq!(out.hit_level, Some(0));
    }

    #[test]
    fn lru_insert_variant_cuts_demotion_traffic_on_a_big_loop() {
        // Loop (2500) ≫ client+server (1000): MRU insertion demotes on
        // every reference for zero hits; LRU insertion self-evicts most
        // demotions (no transfer) and freezes a protected set in the
        // server that even earns hits.
        let t = synthetic::cs(30_000);
        let mut mru = UniLru::multi_client(vec![500], vec![500], UniLruVariant::MruInsert);
        let mut lru = UniLru::multi_client(vec![500], vec![500], UniLruVariant::LruInsert);
        let sm = simulate(&mut mru, &t, t.warmup_len());
        let sl = simulate(&mut lru, &t, t.warmup_len());
        assert!(sm.demotion_rates()[0] > 0.9, "mru = {:?}", sm.demotion_rates());
        assert!(
            sl.demotion_rates()[0] < 0.5 * sm.demotion_rates()[0],
            "lru-insert rate = {:.3}",
            sl.demotion_rates()[0]
        );
        assert!(sl.hit_rates()[1] >= sm.hit_rates()[1]);
    }

    #[test]
    fn adaptive_converges_to_lru_insert_on_useless_demotions() {
        // A loop far larger than client+server: demoted blocks never hit.
        let t = synthetic::cs(60_000);
        let mut p = UniLru::multi_client(vec![100], vec![100], UniLruVariant::Adaptive);
        let stats = simulate(&mut p, &t, 30_000);
        assert!(
            stats.demotion_rates()[0] < 0.05,
            "adaptive should stop demoting, rate = {:.3}",
            stats.demotion_rates()[0]
        );
    }

    #[test]
    fn adaptive_keeps_mru_when_demotions_pay() {
        // sprite re-reads demoted blocks from the server constantly.
        let t = synthetic::sprite(40_000);
        let mut p = UniLru::multi_client(vec![200], vec![1500], UniLruVariant::Adaptive);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(stats.hit_rates()[1] > 0.2, "server should earn hits");
        assert!(stats.demotion_rates()[0] > 0.3);
    }

    #[test]
    fn zero_fault_plane_is_bit_identical() {
        let t = synthetic::cs(30_000);
        let mut reliable = UniLru::single_client(vec![500, 500, 500]);
        let mut faulty = UniLru::single_client(vec![500, 500, 500])
            .with_plane(FaultyPlane::new(FaultScenario::zero(17)));
        let sr = simulate(&mut reliable, &t, t.warmup_len());
        let sf = simulate(&mut faulty, &t, t.warmup_len());
        assert_eq!(sr.hits_by_level, sf.hits_by_level);
        assert_eq!(sr.misses, sf.misses);
        assert_eq!(sr.demotions_by_boundary, sf.demotions_by_boundary);
        assert_eq!(sr.faults, sf.faults, "transport counters must agree");
        assert!(sf.faults.is_clean());
    }

    #[test]
    fn dropped_demotes_degrade_hits_but_preserve_bounds() {
        // Aggregate capacity (3000) holds the 2500-block loop, so the
        // clean run hits ~fully; every dropped demote leaks a block out of
        // the hierarchy and turns a would-be hit into a disk read.
        let t = synthetic::cs(30_000);
        let mut clean = UniLru::single_client(vec![1000, 1000, 1000]);
        let mut lossy = UniLru::single_client(vec![1000, 1000, 1000])
            .with_plane(FaultyPlane::new(FaultScenario::zero(5).with_drop(0.3)));
        let sc = simulate(&mut clean, &t, t.warmup_len());
        let sl = simulate(&mut lossy, &t, t.warmup_len());
        assert!(sl.faults.messages_dropped > 0);
        assert!(
            sl.total_hit_rate() < sc.total_hit_rate(),
            "losing demotes must cost aggregate hits: {:.3} vs {:.3}",
            sl.total_hit_rate(),
            sc.total_hit_rate()
        );
        lossy.check_recoverable_invariants();
        lossy.settle();
        lossy.reconcile();
        lossy.check_invariants();
    }

    #[test]
    fn duplicated_and_delayed_demotes_are_tolerated() {
        let t = synthetic::zipf_small(20_000);
        let scenario = FaultScenario::zero(3)
            .with_duplicate(0.2)
            .with_delay(0.3, 6);
        let mut p =
            UniLru::single_client(vec![300, 300]).with_plane(FaultyPlane::new(scenario));
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(stats.faults.messages_duplicated > 0);
        p.settle();
        p.reconcile();
        p.check_invariants();
    }

    #[test]
    fn server_crash_wipes_level_and_recovers() {
        let t = synthetic::zipf_small(20_000);
        let scenario = FaultScenario::zero(8).with_crash(10_000, 1);
        let mut p =
            UniLru::single_client(vec![300, 300]).with_plane(FaultyPlane::new(scenario));
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.faults.crashes, 1);
        p.settle();
        p.reconcile();
        p.check_invariants();
        // The hierarchy keeps serving after the crash.
        assert!(stats.total_hit_rate() > 0.0);
    }
}
