//! The trace-driven simulation driver.

use crate::{AccessOutcome, MultiLevelPolicy, SimStats};
use ulc_trace::Trace;

/// How far ahead of the access cursor the driver issues
/// [`MultiLevelPolicy::prefetch`] hints: far enough that the hinted
/// cache line arrives before the access, near enough that it is not
/// evicted again first. Behaviour-neutral by the `prefetch` contract.
pub const PREFETCH_DISTANCE: usize = 8;

/// Runs `trace` through `policy`, warming with the first `warmup`
/// references (not measured) and measuring the rest.
///
/// # Panics
///
/// Panics if `warmup` exceeds the trace length.
///
/// # Examples
///
/// ```
/// use ulc_hierarchy::{simulate, IndLru};
/// use ulc_trace::synthetic;
///
/// let trace = synthetic::sprite(20_000);
/// let mut policy = IndLru::single_client(vec![200, 200]);
/// let stats = simulate(&mut policy, &trace, trace.warmup_len());
/// assert_eq!(stats.references as usize, trace.len() - trace.warmup_len());
/// ```
pub fn simulate<P: MultiLevelPolicy + ?Sized>(
    policy: &mut P,
    trace: &Trace,
    warmup: usize,
) -> SimStats {
    assert!(warmup <= trace.len(), "warm-up longer than the trace");
    let mut stats = SimStats::new(policy.num_levels());
    // One pooled outcome for the whole run: `access_into` resets it per
    // reference and reuses its demotion buffer, keeping the measured loop
    // allocation-free for engines with pooled paths (DESIGN.md §5f).
    let mut outcome = AccessOutcome::miss(policy.num_levels().saturating_sub(1));
    // Batched pipeline: decode PREFETCH_DISTANCE records ahead and hint
    // the engine's block tables before the access itself runs. Hints are
    // semantics-free, so the stats are bit-identical with or without them.
    let records = trace.records();
    for (i, r) in records.iter().enumerate() {
        if let Some(ahead) = records.get(i + PREFETCH_DISTANCE) {
            policy.prefetch(ahead.client, ahead.block);
        }
        policy.access_into(r.client, r.block, &mut outcome);
        if i >= warmup {
            stats.record(&outcome);
        }
    }
    stats.faults = policy.fault_summary();
    stats
}

/// Runs `trace` through `policy` using the paper's warm-up convention:
/// the first tenth of the references warm the caches (§4.2).
pub fn simulate_with_paper_warmup<P: MultiLevelPolicy + ?Sized>(
    policy: &mut P,
    trace: &Trace,
) -> SimStats {
    simulate(policy, trace, trace.warmup_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndLru;
    use ulc_trace::{BlockId, Trace};

    #[test]
    fn warmup_references_are_not_measured() {
        let t = Trace::from_blocks((0..100u64).map(BlockId::new));
        let mut p = IndLru::single_client(vec![10]);
        let stats = simulate(&mut p, &t, 40);
        assert_eq!(stats.references, 60);
    }

    #[test]
    fn zero_warmup_measures_everything() {
        let t = Trace::from_blocks((0..10u64).map(BlockId::new));
        let mut p = IndLru::single_client(vec![4]);
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.references, 10);
        assert_eq!(stats.misses, 10); // all cold
    }

    #[test]
    #[should_panic(expected = "warm-up longer")]
    fn oversized_warmup_rejected() {
        let t = Trace::from_blocks((0..5u64).map(BlockId::new));
        let mut p = IndLru::single_client(vec![4]);
        let _ = simulate(&mut p, &t, 6);
    }
}
