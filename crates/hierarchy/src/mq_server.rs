//! LRU clients over a Multi-Queue server — the §4.4 `MQ` baseline.
//!
//! "In the client-server caching hierarchy, the environment that MQ is
//! designed for, we use MQ in the server and use LRU in the client
//! independently." Caching is independent (inclusive): the server inserts
//! every block that misses in a client, with MQ deciding replacement, and
//! nothing is demoted.

use crate::{AccessOutcome, MultiLevelPolicy};
use ulc_cache::{LruCache, MqConfig, MultiQueue};
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, ClientId};

/// Independent LRU clients over one shared MQ server (two levels).
#[derive(Clone, Debug)]
pub struct LruMqServer {
    clients: Vec<LruCache<BlockId>>,
    server: MultiQueue<BlockId>,
    /// Observability hooks (no-op unless the `obs` feature is on and a
    /// recorder has been attached; DESIGN.md §5h).
    obs: ObsHandle,
}

impl LruMqServer {
    /// One private LRU cache per entry of `client_capacities`, over an MQ
    /// server of `server_capacity` blocks with the MQ paper's default
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn new(client_capacities: Vec<usize>, server_capacity: usize) -> Self {
        LruMqServer::with_config(
            client_capacities,
            server_capacity,
            MqConfig::for_capacity(server_capacity),
        )
    }

    /// Same as [`LruMqServer::new`] with explicit MQ parameters.
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn with_config(
        client_capacities: Vec<usize>,
        server_capacity: usize,
        config: MqConfig,
    ) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        LruMqServer {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            server: MultiQueue::new(server_capacity, config),
            obs: ObsHandle::default(),
        }
    }
}

impl MultiLevelPolicy for LruMqServer {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(1);
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        out.reset(1);
        self.obs.begin_access();
        if self.clients[c].access(block).is_hit() {
            out.hit_level = Some(0);
            self.obs.on_hit(0, block.raw());
            return;
        }
        // The client miss installed the block there (inclusive caching).
        self.obs.on_retrieve(0, block.raw());
        // The server sees the client's miss stream, MQ-managed.
        if self.server.access(block).is_hit() {
            out.hit_level = Some(1);
            self.obs.on_hit(1, block.raw());
        } else {
            self.obs.on_retrieve(1, block.raw());
            self.obs.on_miss(block.raw());
        }
    }

    fn num_levels(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "MQ"
    }
}

impl Observe for LruMqServer {
    fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        &mut self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, IndLru};
    use ulc_trace::synthetic;

    #[test]
    fn no_demotions() {
        let t = synthetic::zipf_small(30_000);
        let mut p = LruMqServer::new(vec![300], 1000);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert_eq!(stats.demotions_by_boundary, vec![0]);
    }

    #[test]
    fn server_mq_beats_server_lru_on_filtered_zipf() {
        // The MQ paper's core claim: below an LRU client, frequency-aware
        // replacement extracts more from the weak-locality miss stream
        // than LRU does.
        let t = synthetic::zipf_small(150_000);
        let client = 250;
        let server = 500;
        let mut mq = LruMqServer::new(vec![client], server);
        let mut ind = IndLru::single_client(vec![client, server]);
        let sm = simulate(&mut mq, &t, t.warmup_len());
        let si = simulate(&mut ind, &t, t.warmup_len());
        assert!(
            sm.hit_rates()[1] > si.hit_rates()[1],
            "MQ server {:.3} should beat LRU server {:.3}",
            sm.hit_rates()[1],
            si.hit_rates()[1]
        );
    }

    #[test]
    fn clients_are_private() {
        let mut p = LruMqServer::new(vec![4, 4], 16);
        let b = BlockId::new(9);
        p.access(ClientId::new(0), b);
        let out = p.access(ClientId::new(1), b);
        assert_eq!(out.hit_level, Some(1), "shared server serves client 1");
        let out = p.access(ClientId::new(1), b);
        assert_eq!(out.hit_level, Some(0));
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn unknown_client_rejected() {
        let mut p = LruMqServer::new(vec![2], 4);
        let _ = p.access(ClientId::new(3), BlockId::new(0));
    }
}
