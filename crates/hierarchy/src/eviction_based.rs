//! Eviction-based placement (Chen, Zhou & Li, USENIX 2003) — the §5
//! alternative for taming uniLRU's demotion traffic.
//!
//! Contents evolve exactly as under unified LRU, but a block evicted from
//! the client is *reloaded into the server from disk* instead of being
//! shipped over the network: zero demotion traffic on the client link, at
//! the price of a reload *window* during which the block is in neither
//! cache. A re-reference landing in the window goes to disk (and cancels
//! the pending reload, since the block returns to the client).

use crate::{AccessOutcome, MultiLevelPolicy};
use std::collections::{HashMap, VecDeque};
use ulc_cache::LruCache;
use ulc_trace::{BlockId, ClientId};

/// Two-level eviction-based placement: LRU client over an LRU server,
/// exclusive like DEMOTE, with disk reloads instead of demotions.
#[derive(Clone, Debug)]
pub struct EvictionBased {
    clients: Vec<LruCache<BlockId>>,
    server: LruCache<BlockId>,
    /// Blocks being fetched from disk into the server: block → ready
    /// time. Drained as simulated time (one unit per reference) passes.
    pending: HashMap<BlockId, u64>,
    order: VecDeque<(u64, BlockId)>,
    /// References a disk reload takes to complete.
    reload_latency: u64,
    now: u64,
    reloads: u64,
    window_misses: u64,
}

impl EvictionBased {
    /// Builds the scheme with per-client capacities, a shared server, and
    /// a reload latency in references (≈ disk time / inter-arrival time).
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn new(
        client_capacities: Vec<usize>,
        server_capacity: usize,
        reload_latency: u64,
    ) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        EvictionBased {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            server: LruCache::new(server_capacity),
            pending: HashMap::new(),
            order: VecDeque::new(),
            reload_latency,
            now: 0,
            reloads: 0,
            window_misses: 0,
        }
    }

    /// Disk reloads issued so far (the traffic demotions would have been).
    pub fn reloads(&self) -> u64 {
        self.reloads
    }

    /// References that missed only because they fell into a reload window.
    pub fn window_misses(&self) -> u64 {
        self.window_misses
    }

    /// Completes reloads whose window has passed.
    fn drain_pending(&mut self) {
        while let Some(&(ready, block)) = self.order.front() {
            if ready > self.now {
                break;
            }
            self.order.pop_front();
            // Cancelled reloads have been removed from `pending`.
            if self.pending.remove(&block).is_some() {
                self.server.insert_mru(block);
            }
        }
    }
}

impl MultiLevelPolicy for EvictionBased {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        self.now += 1;
        self.drain_pending();
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        let mut outcome = AccessOutcome::miss(1);

        if self.clients[c].contains(&block) {
            self.clients[c].access(block);
            outcome.hit_level = Some(0);
            return outcome;
        }
        if self.server.contains(&block) {
            // Exclusive promotion, like DEMOTE.
            self.server.remove(&block);
            outcome.hit_level = Some(1);
        } else if self.pending.remove(&block).is_some() {
            // Reload window: the block is on its way from disk but not
            // usable yet; the reference goes to disk, and the reload is
            // cancelled (the block will live at the client instead).
            self.window_misses += 1;
        }
        if let Some(victim) = self.clients[c].insert_mru(block) {
            // Reload from disk instead of demoting: no transfer counted.
            self.reloads += 1;
            self.pending
                .insert(victim, self.now + self.reload_latency);
            self.order
                .push_back((self.now + self.reload_latency, victim));
        }
        outcome
    }

    fn num_levels(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "evict-reload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, UniLru, UniLruVariant};
    use ulc_trace::synthetic;

    #[test]
    fn no_demotion_transfers_ever() {
        let t = synthetic::cs(30_000);
        let mut p = EvictionBased::new(vec![500], 1000, 5);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert_eq!(stats.demotions_by_boundary, vec![0]);
        assert!(p.reloads() > 0, "evictions must trigger reloads");
    }

    #[test]
    fn with_zero_latency_matches_uni_lru_hit_rates() {
        // Instant reloads reproduce exactly the DEMOTE content dynamics.
        let t = synthetic::zipf_small(40_000);
        let mut eb = EvictionBased::new(vec![300], 600, 0);
        let mut uni = UniLru::multi_client(vec![300], vec![600], UniLruVariant::MruInsert);
        let se = simulate(&mut eb, &t, t.warmup_len());
        let su = simulate(&mut uni, &t, t.warmup_len());
        assert_eq!(se.hits_by_level, su.hits_by_level);
        assert_eq!(se.misses, su.misses);
    }

    #[test]
    fn reload_window_costs_hits() {
        // A loop that fits client+server exactly: with DEMOTE it hits
        // fully. On a loop, an evicted block is re-referenced ~2000
        // references after its eviction; a reload window longer than that
        // turns the server hits into misses.
        let t = synthetic::cs(50_000); // 2500-block loop
        let mut fast = EvictionBased::new(vec![500], 2000, 0);
        let mut slow = EvictionBased::new(vec![500], 2000, 2_100);
        let sf = simulate(&mut fast, &t, t.warmup_len());
        let ss = simulate(&mut slow, &t, t.warmup_len());
        assert!(
            ss.total_hit_rate() < sf.total_hit_rate(),
            "window should cost hits: {:.3} vs {:.3}",
            ss.total_hit_rate(),
            sf.total_hit_rate()
        );
        assert!(slow.window_misses() > 0);
    }

    #[test]
    fn multi_client_structure_is_supported() {
        let t = synthetic::httpd_multi(20_000);
        let mut p = EvictionBased::new(vec![256; 7], 2048, 10);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(stats.total_hit_rate() > 0.0);
    }
}
