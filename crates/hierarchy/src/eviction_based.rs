//! Eviction-based placement (Chen, Zhou & Li, USENIX 2003) — the §5
//! alternative for taming uniLRU's demotion traffic.
//!
//! Contents evolve exactly as under unified LRU, but a block evicted from
//! the client is *reloaded into the server from disk* instead of being
//! shipped over the network: zero demotion traffic on the client link, at
//! the price of a reload *window* during which the block is in neither
//! cache. A re-reference landing in the window goes to disk (and cancels
//! the pending reload, since the block returns to the client).
//!
//! ## Message plane
//!
//! The client's reload *order* is itself a message — [`Message::Reload`]
//! on link 0 — and the demand read of the server is an RPC on the same
//! link. On the default [`ReliablePlane`] the order arrives within the
//! access that issued it, reproducing the historical in-line timing bit
//! for bit; on a lossy plane a dropped order simply never starts the disk
//! fetch (the block is re-read from disk on its next reference), and a
//! duplicated order degrades to a refresh of the pending entry.

use crate::plane::{DeliveryBatch, Direction, Message, MessagePlane, ReliablePlane, RpcFate};
use crate::stats::FaultSummary;
use crate::{AccessOutcome, MultiLevelPolicy};
use std::collections::VecDeque;
use ulc_cache::LruCache;
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, BlockMap, ClientId, TableMode};

/// Two-level eviction-based placement: LRU client over an LRU server,
/// exclusive like DEMOTE, with disk reloads instead of demotions. Generic
/// over the transport its reload orders and demand reads cross.
#[derive(Clone, Debug)]
pub struct EvictionBased<P: MessagePlane = ReliablePlane> {
    clients: Vec<LruCache<BlockId>>,
    server: LruCache<BlockId>,
    /// Blocks being fetched from disk into the server: block → ready
    /// time. Drained as simulated time (one unit per reference) passes.
    pending: BlockMap<u64>,
    order: VecDeque<(u64, BlockId)>,
    /// References a disk reload takes to complete.
    reload_latency: u64,
    now: u64,
    reloads: u64,
    window_misses: u64,
    plane: P,
    /// Pooled delivery and crash buffers, recycled across accesses so the
    /// steady-state order drain performs no heap allocation (DESIGN.md §5f).
    batch: DeliveryBatch,
    crash_buf: Vec<usize>,
    /// Observability hooks (no-op unless the `obs` feature is on and a
    /// recorder has been attached; DESIGN.md §5h).
    obs: ObsHandle,
}

impl EvictionBased {
    /// Builds the scheme with per-client capacities, a shared server, and
    /// a reload latency in references (≈ disk time / inter-arrival time).
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn new(
        client_capacities: Vec<usize>,
        server_capacity: usize,
        reload_latency: u64,
    ) -> Self {
        EvictionBased::new_with_mode(
            client_capacities,
            server_capacity,
            reload_latency,
            TableMode::Dense,
        )
    }

    /// [`EvictionBased::new`] with an explicit block-table representation:
    /// `TableMode::Dense` (the default interned flat tables) or
    /// `TableMode::Hashed` (the retained map-backed reference path used by
    /// the differential suite and throughput baselines).
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn new_with_mode(
        client_capacities: Vec<usize>,
        server_capacity: usize,
        reload_latency: u64,
        mode: TableMode,
    ) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        EvictionBased {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            server: LruCache::new(server_capacity),
            pending: BlockMap::new(mode),
            order: VecDeque::new(),
            reload_latency,
            now: 0,
            reloads: 0,
            window_misses: 0,
            plane: ReliablePlane::new(),
            batch: DeliveryBatch::new(),
            crash_buf: Vec::new(),
            obs: ObsHandle::default(),
        }
    }
}

impl<P: MessagePlane> EvictionBased<P> {
    /// Moves the scheme onto a different message plane.
    pub fn with_plane<Q: MessagePlane>(self, plane: Q) -> EvictionBased<Q> {
        EvictionBased {
            clients: self.clients,
            server: self.server,
            pending: self.pending,
            order: self.order,
            reload_latency: self.reload_latency,
            now: self.now,
            reloads: self.reloads,
            window_misses: self.window_misses,
            plane,
            batch: self.batch,
            crash_buf: self.crash_buf,
            obs: self.obs,
        }
    }

    /// Disk reloads issued so far (the traffic demotions would have been).
    pub fn reloads(&self) -> u64 {
        self.reloads
    }

    /// References that missed only because they fell into a reload window.
    pub fn window_misses(&self) -> u64 {
        self.window_misses
    }

    /// Completes reloads whose window has passed.
    fn drain_pending(&mut self) {
        while let Some(&(ready, block)) = self.order.front() {
            if ready > self.now {
                break;
            }
            self.order.pop_front();
            // Cancelled reloads have been removed from `pending`.
            if self.pending.remove(block).is_some() {
                self.obs.on_retrieve(1, block.raw());
                if let Some(victim) = self.server.insert_mru(block) {
                    self.obs.on_evict(1, victim.raw());
                }
            }
        }
    }

    /// Applies reload orders the plane has delivered: the server starts a
    /// disk fetch completing `reload_latency` references from now. A
    /// duplicated order refreshes the pending entry; its stale `order`
    /// row is skipped by `drain_pending`'s cancelled-check.
    fn apply_reload_orders(&mut self) {
        let mut batch = std::mem::take(&mut self.batch);
        self.plane.deliver_into(0, Direction::Down, &mut batch);
        for &msg in &batch {
            // lint:allow(plane-exhaustive) eviction-based placement sends only Reload orders downstream; foreign kinds are dropped by design
            if let Message::Reload { block } = msg {
                self.reloads += 1;
                self.pending.insert(block, self.now + self.reload_latency);
                self.order.push_back((self.now + self.reload_latency, block));
            }
        }
        self.batch = batch;
    }

    /// Wipes crashed levels; a server crash also forgets every in-flight
    /// disk fetch.
    // lint:cold-path crash recovery rebuilds whole caches; allocation is by design
    fn apply_crashes(&mut self) {
        let mut crashes = std::mem::take(&mut self.crash_buf);
        self.plane.take_crashes_into(&mut crashes);
        for &level in &crashes {
            if level == 0 {
                for cl in &mut self.clients {
                    *cl = LruCache::new(cl.capacity());
                }
            } else if level == 1 {
                self.server = LruCache::new(self.server.capacity());
                self.pending.clear();
                self.order.clear();
                self.plane.purge_link(0);
            }
        }
        self.crash_buf = crashes;
    }
}

impl<P: MessagePlane> MultiLevelPolicy for EvictionBased<P> {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(1);
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        self.now += 1;
        out.reset(1);
        self.obs.begin_access();
        self.plane.tick();
        self.apply_crashes();
        self.apply_reload_orders();
        self.drain_pending();
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");

        if self.clients[c].contains(&block) {
            self.clients[c].access(block);
            out.hit_level = Some(0);
            self.obs.on_hit(0, block.raw());
            return;
        }
        let fate = self.plane.rpc(0);
        self.obs.on_rpc(1);
        match fate {
            RpcFate::RequestLost => {
                // The server never saw the read.
                self.obs.on_fault(1, block.raw());
            }
            fate => {
                if self.server.contains(&block) {
                    // Exclusive promotion, like DEMOTE. On a lost reply the
                    // server still gives the block up but the copy vanishes
                    // in transit; the reference falls through to disk.
                    self.server.remove(&block);
                    if fate == RpcFate::Delivered {
                        out.hit_level = Some(1);
                    } else {
                        self.obs.on_fault(1, block.raw());
                    }
                } else if self.pending.remove(block).is_some() {
                    // Reload window: the block is on its way from disk but
                    // not usable yet; the reference goes to disk, and the
                    // reload is cancelled (the block will live at the
                    // client instead).
                    self.window_misses += 1;
                }
            }
        }
        match out.hit_level {
            Some(level) => self.obs.on_hit(level, block.raw()),
            None => self.obs.on_miss(block.raw()),
        }
        // The block always ends up at the requesting client.
        self.obs.on_retrieve(0, block.raw());
        if let Some(victim) = self.clients[c].insert_mru(block) {
            // Reload from disk instead of demoting: no transfer counted —
            // only the reload order crosses the wire.
            self.plane
                .send(0, Direction::Down, Message::Reload { block: victim });
            self.apply_reload_orders();
        }
    }

    fn num_levels(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "evict-reload"
    }

    fn fault_summary(&self) -> FaultSummary {
        let mut s = FaultSummary::default();
        self.plane.accounting().fold_into(&mut s);
        s
    }
}

impl<P: MessagePlane> Observe for EvictionBased<P> {
    fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        &mut self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{FaultScenario, FaultyPlane};
    use crate::{simulate, UniLru, UniLruVariant};
    use ulc_trace::synthetic;

    #[test]
    fn no_demotion_transfers_ever() {
        let t = synthetic::cs(30_000);
        let mut p = EvictionBased::new(vec![500], 1000, 5);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert_eq!(stats.demotions_by_boundary, vec![0]);
        assert!(p.reloads() > 0, "evictions must trigger reloads");
    }

    #[test]
    fn with_zero_latency_matches_uni_lru_hit_rates() {
        // Instant reloads reproduce exactly the DEMOTE content dynamics.
        let t = synthetic::zipf_small(40_000);
        let mut eb = EvictionBased::new(vec![300], 600, 0);
        let mut uni = UniLru::multi_client(vec![300], vec![600], UniLruVariant::MruInsert);
        let se = simulate(&mut eb, &t, t.warmup_len());
        let su = simulate(&mut uni, &t, t.warmup_len());
        assert_eq!(se.hits_by_level, su.hits_by_level);
        assert_eq!(se.misses, su.misses);
    }

    #[test]
    fn reload_window_costs_hits() {
        // A loop that fits client+server exactly: with DEMOTE it hits
        // fully. On a loop, an evicted block is re-referenced ~2000
        // references after its eviction; a reload window longer than that
        // turns the server hits into misses.
        let t = synthetic::cs(50_000); // 2500-block loop
        let mut fast = EvictionBased::new(vec![500], 2000, 0);
        let mut slow = EvictionBased::new(vec![500], 2000, 2_100);
        let sf = simulate(&mut fast, &t, t.warmup_len());
        let ss = simulate(&mut slow, &t, t.warmup_len());
        assert!(
            ss.total_hit_rate() < sf.total_hit_rate(),
            "window should cost hits: {:.3} vs {:.3}",
            ss.total_hit_rate(),
            sf.total_hit_rate()
        );
        assert!(slow.window_misses() > 0);
    }

    #[test]
    fn multi_client_structure_is_supported() {
        let t = synthetic::httpd_multi(20_000);
        let mut p = EvictionBased::new(vec![256; 7], 2048, 10);
        let stats = simulate(&mut p, &t, t.warmup_len());
        assert!(stats.total_hit_rate() > 0.0);
    }

    #[test]
    fn zero_fault_plane_is_bit_identical() {
        let t = synthetic::cs(30_000);
        let mut reliable = EvictionBased::new(vec![500], 1000, 5);
        let mut faulty = EvictionBased::new(vec![500], 1000, 5)
            .with_plane(FaultyPlane::new(FaultScenario::zero(13)));
        let sr = simulate(&mut reliable, &t, t.warmup_len());
        let sf = simulate(&mut faulty, &t, t.warmup_len());
        assert_eq!(sr, sf);
        assert!(sf.faults.is_clean());
    }

    #[test]
    fn dropped_reload_orders_cost_server_hits() {
        let t = synthetic::cs(50_000);
        let mut clean = EvictionBased::new(vec![500], 2000, 0);
        let mut lossy = EvictionBased::new(vec![500], 2000, 0)
            .with_plane(FaultyPlane::new(FaultScenario::zero(9).with_drop(0.5)));
        let sc = simulate(&mut clean, &t, t.warmup_len());
        let sl = simulate(&mut lossy, &t, t.warmup_len());
        assert!(sl.faults.messages_dropped > 0);
        assert!(sl.hit_rates()[1] < sc.hit_rates()[1]);
    }

    #[test]
    fn server_crash_forgets_pending_reloads() {
        let t = synthetic::zipf_small(20_000);
        let scenario = FaultScenario::zero(2).with_crash(10_000, 1);
        let mut p = EvictionBased::new(vec![300], 600, 50)
            .with_plane(FaultyPlane::new(scenario));
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.faults.crashes, 1);
        assert!(stats.total_hit_rate() > 0.0);
    }
}
