//! Simulation statistics: hit rates, demotion rates and average access
//! time — the three panels of Figure 6.

use crate::{AccessOutcome, CostModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters accumulated over the measured portion of a simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// References measured (after warm-up).
    pub references: u64,
    /// Hits per level (0-indexed).
    pub hits_by_level: Vec<u64>,
    /// Misses served from disk.
    pub misses: u64,
    /// Demotions per boundary.
    pub demotions_by_boundary: Vec<u64>,
    /// Graceful-degradation accounting: what the message plane did to the
    /// protocol's traffic and how the protocol recovered. All-zero on a
    /// reliable plane.
    pub faults: FaultSummary,
}

/// Graceful-degradation counters: message-plane perturbations and the
/// protocol's recovery work. Every field is a plain count over the whole
/// run (warm-up included — faults do not pause for warm-up).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Asynchronous messages handed to the plane.
    pub messages_sent: u64,
    /// Asynchronous messages the receiving level actually saw.
    pub messages_delivered: u64,
    /// Messages lost (fault drops, crash purges, queue overflow).
    pub messages_dropped: u64,
    /// Extra copies injected by duplication faults.
    pub messages_duplicated: u64,
    /// Messages delivered after a message sent later than them.
    pub messages_reordered: u64,
    /// Messages dropped because a bounded queue was full (subset of
    /// `messages_dropped`; also counts [`crate::DemotionBuffer`] overflow).
    pub overflow_drops: u64,
    /// Demand-read RPCs that lost their request or reply leg.
    pub rpc_failures: u64,
    /// Level crash-and-cold-restart events delivered.
    pub crashes: u64,
    /// Status-table reconciliation passes the client ran.
    pub reconciliation_rounds: u64,
    /// Accesses directed by a status-table entry that turned out stale
    /// (the believed level did not hold the block).
    pub stale_status_hits: u64,
    /// Single-residency violations detected (a block found cached at two
    /// levels at once).
    pub residency_violations_detected: u64,
    /// Single-residency violations repaired by evicting the redundant
    /// copy.
    pub residency_violations_repaired: u64,
    /// Plane `deliver` calls that handed back at least one message.
    /// Representation-independent: every queue implementation (dense
    /// array, ordered map) counts it the same way, so it witnesses that
    /// queue-internal allocation reuse changed no delivery behaviour.
    /// Nonzero on healthy runs, hence excluded from
    /// [`FaultSummary::is_clean`].
    pub delivery_batches: u64,
}

impl FaultSummary {
    /// `true` when nothing was perturbed and no recovery work ran —
    /// the reliable-plane signature.
    pub fn is_clean(&self) -> bool {
        self.messages_dropped == 0
            && self.messages_duplicated == 0
            && self.messages_reordered == 0
            && self.overflow_drops == 0
            && self.rpc_failures == 0
            && self.crashes == 0
            && self.reconciliation_rounds == 0
            && self.stale_status_hits == 0
            && self.residency_violations_detected == 0
            && self.residency_violations_repaired == 0
    }
}

impl SimStats {
    /// Creates zeroed counters for a hierarchy of `levels` levels.
    pub fn new(levels: usize) -> Self {
        SimStats {
            references: 0,
            hits_by_level: vec![0; levels],
            misses: 0,
            demotions_by_boundary: vec![0; levels.saturating_sub(1)],
            faults: FaultSummary::default(),
        }
    }

    /// Folds one access outcome into the counters.
    pub fn record(&mut self, outcome: &AccessOutcome) {
        self.references += 1;
        match outcome.hit_level {
            Some(l) => self.hits_by_level[l] += 1,
            None => self.misses += 1,
        }
        for (b, &d) in outcome.demotions.iter().enumerate() {
            self.demotions_by_boundary[b] += d as u64;
        }
    }

    /// `h_i`: per-level hit rates.
    pub fn hit_rates(&self) -> Vec<f64> {
        let t = self.references.max(1) as f64;
        self.hits_by_level.iter().map(|&h| h as f64 / t).collect()
    }

    /// `h_miss`: the hierarchy miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.misses as f64 / self.references.max(1) as f64
    }

    /// Total hit rate across all levels.
    pub fn total_hit_rate(&self) -> f64 {
        1.0 - self.miss_rate()
    }

    /// `h_di`: per-boundary demotion rates (demotions per reference).
    pub fn demotion_rates(&self) -> Vec<f64> {
        let t = self.references.max(1) as f64;
        self.demotions_by_boundary
            .iter()
            .map(|&d| d as f64 / t)
            .collect()
    }

    /// `T_ave` under `costs` (§4.1), in milliseconds.
    pub fn average_access_time(&self, costs: &CostModel) -> f64 {
        let b = self.breakdown(costs);
        b.hit_ms + b.miss_ms + b.demotion_ms
    }

    /// The three components of `T_ave`, for the stacked breakdown in the
    /// third panel of Figure 6.
    pub fn breakdown(&self, costs: &CostModel) -> TimeBreakdown {
        costs.validate();
        assert_eq!(
            costs.levels(),
            self.hits_by_level.len(),
            "cost model and stats must agree on level count"
        );
        let hit_ms = self
            .hit_rates()
            .iter()
            .zip(&costs.hit_time_ms)
            .map(|(h, t)| h * t)
            .sum();
        let miss_ms = self.miss_rate() * costs.miss_time_ms;
        let demotion_ms = self
            .demotion_rates()
            .iter()
            .zip(&costs.demote_time_ms)
            .map(|(d, t)| d * t)
            .sum();
        TimeBreakdown {
            hit_ms,
            miss_ms,
            demotion_ms,
        }
    }
}

/// `T_ave` split into its three components (all in ms per reference).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Time spent on cache hits.
    pub hit_ms: f64,
    /// Time spent on disk misses.
    pub miss_ms: f64,
    /// Time spent demoting blocks between levels.
    pub demotion_ms: f64,
}

impl TimeBreakdown {
    /// The demotion share of the total access time.
    pub fn demotion_fraction(&self) -> f64 {
        let total = self.hit_ms + self.miss_ms + self.demotion_ms;
        if total == 0.0 {
            0.0
        } else {
            self.demotion_ms / total
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} refs; hits", self.references)?;
        for (i, h) in self.hit_rates().iter().enumerate() {
            write!(f, " L{}={:.1}%", i + 1, 100.0 * h)?;
        }
        write!(f, "; miss={:.1}%; demotions", 100.0 * self.miss_rate())?;
        for (i, d) in self.demotion_rates().iter().enumerate() {
            write!(f, " b{}={:.1}%", i + 1, 100.0 * d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        let mut s = SimStats::new(3);
        // 2 L1 hits, 1 L2 hit, 1 miss; 3 demotions at b1, 1 at b2.
        s.record(&AccessOutcome::hit(0, 2));
        s.record(&AccessOutcome::hit(0, 2));
        s.record(&AccessOutcome::hit(1, 2));
        let mut miss = AccessOutcome::miss(2);
        miss.demotions = vec![3, 1];
        s.record(&miss);
        s
    }

    #[test]
    fn rates() {
        let s = stats();
        assert_eq!(s.hit_rates(), vec![0.5, 0.25, 0.0]);
        assert_eq!(s.miss_rate(), 0.25);
        assert_eq!(s.total_hit_rate(), 0.75);
        assert_eq!(s.demotion_rates(), vec![0.75, 0.25]);
    }

    #[test]
    fn average_time_formula() {
        let s = stats();
        let costs = CostModel::paper_three_level();
        // 0.5*0 + 0.25*1 + 0*1.2 + 0.25*11.2 + 0.75*1 + 0.25*0.2
        let expect = 0.25 + 2.8 + 0.75 + 0.05;
        assert!((s.average_access_time(&costs) - expect).abs() < 1e-12);
    }

    #[test]
    fn breakdown_components() {
        let s = stats();
        let b = s.breakdown(&CostModel::paper_three_level());
        assert!((b.hit_ms - 0.25).abs() < 1e-12);
        assert!((b.miss_ms - 2.8).abs() < 1e-12);
        assert!((b.demotion_ms - 0.8).abs() < 1e-12);
        assert!((b.demotion_fraction() - 0.8 / 3.85).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::new(2);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(
            s.average_access_time(&CostModel::paper_two_level()),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "agree on level count")]
    fn mismatched_cost_model_rejected() {
        let s = SimStats::new(2);
        let _ = s.breakdown(&CostModel::paper_three_level());
    }

    #[test]
    fn display_mentions_all_levels() {
        let text = format!("{}", stats());
        assert!(text.contains("L1="));
        assert!(text.contains("L3="));
        assert!(text.contains("b2="));
    }
}
