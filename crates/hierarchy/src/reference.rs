//! Retained reference implementations for differential testing.
//!
//! When a hot-path structure is reworked for throughput, the structure it
//! replaced moves here so the differential suites can keep proving the
//! rework bit-identical. [`MapReliablePlane`] is the original
//! [`ReliablePlane`](crate::ReliablePlane) with its per-link
//! `BTreeMap<(link, direction), VecDeque>` queue table, replaced in the
//! live plane by a dense array indexed by `link * 2 + direction`.
//! (`FaultyPlane` keeps its ordered maps in the live implementation —
//! reorder semantics need the `(due, seq)` ordering — so it needs no
//! retained twin.)

use crate::plane::{DeliveryBatch, Direction, Message, MessagePlane, PlaneAccounting, RpcFate};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// The original map-backed perfect transport: every message is delivered
/// exactly once, in send order, within the access that queued it.
///
/// Behaviour (including every [`PlaneAccounting`] counter) is identical to
/// the dense-array [`ReliablePlane`](crate::ReliablePlane); the
/// differential suite runs protocols over both and asserts bit-identical
/// statistics.
#[derive(Clone, Debug, Default)]
pub struct MapReliablePlane {
    queues: BTreeMap<(usize, Direction), VecDeque<Message>>,
    now: u64,
    acct: PlaneAccounting,
}

impl MapReliablePlane {
    /// A fresh map-backed reliable plane.
    pub fn new() -> Self {
        MapReliablePlane::default()
    }
}

impl MessagePlane for MapReliablePlane {
    fn tick(&mut self) {
        self.now += 1;
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn take_crashes_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
    }

    fn send(&mut self, link: usize, dir: Direction, msg: Message) {
        self.acct.sent += 1;
        self.queues.entry((link, dir)).or_default().push_back(msg);
    }

    fn deliver_into(&mut self, link: usize, dir: Direction, out: &mut DeliveryBatch) {
        out.clear();
        let Some(q) = self.queues.get_mut(&(link, dir)) else {
            return;
        };
        if q.is_empty() {
            return;
        }
        out.extend(q.drain(..));
        self.acct.delivered += out.len() as u64;
        self.acct.delivery_batches += 1;
    }

    fn queued(&self, link: usize, dir: Direction) -> Vec<Message> {
        self.queues
            .get(&(link, dir))
            .map(|q| q.iter().copied().collect())
            .unwrap_or_default()
    }

    fn queued_len(&self, link: usize, dir: Direction) -> usize {
        self.queues.get(&(link, dir)).map_or(0, VecDeque::len)
    }

    fn rpc(&mut self, _link: usize) -> RpcFate {
        self.acct.rpcs += 1;
        RpcFate::Delivered
    }

    fn purge_link(&mut self, link: usize) {
        for dir in [Direction::Down, Direction::Up] {
            if let Some(q) = self.queues.get_mut(&(link, dir)) {
                self.acct.dropped += q.len() as u64;
                q.clear();
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    fn lossy(&self) -> bool {
        false
    }

    fn accounting(&self) -> PlaneAccounting {
        self.acct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReliablePlane;
    use ulc_trace::BlockId;

    fn demote(i: u64) -> Message {
        Message::Demote {
            block: BlockId::new(i),
            mru: true,
            owner: 0,
        }
    }

    #[test]
    fn matches_dense_reliable_plane_exactly() {
        let mut dense = ReliablePlane::new();
        let mut map = MapReliablePlane::new();
        for tick in 0..300u64 {
            dense.tick();
            map.tick();
            for m in 0..(tick % 4) {
                let link = (tick % 3) as usize;
                dense.send(link, Direction::Down, demote(m));
                map.send(link, Direction::Down, demote(m));
                dense.send(link, Direction::Up, demote(m + 100));
                map.send(link, Direction::Up, demote(m + 100));
            }
            assert_eq!(dense.rpc(0), map.rpc(0));
            for link in 0..3 {
                assert_eq!(
                    dense.queued(link, Direction::Down),
                    map.queued(link, Direction::Down)
                );
                assert_eq!(
                    dense.deliver(link, Direction::Down),
                    map.deliver(link, Direction::Down)
                );
            }
            assert_eq!(dense.in_flight(), map.in_flight());
            if tick == 150 {
                dense.purge_link(1);
                map.purge_link(1);
            }
        }
        for link in 0..3 {
            assert_eq!(
                dense.deliver(link, Direction::Up),
                map.deliver(link, Direction::Up)
            );
        }
        assert_eq!(dense.accounting(), map.accounting());
    }
}
