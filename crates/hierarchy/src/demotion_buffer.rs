//! Delayed-demotion modelling — quantifying the §4.1 argument.
//!
//! §4.1 declines to hide demotion costs behind dedicated buffers:
//! "Demotions are highly possible to occur in a bursting fashion … A
//! small number of dedicated buffers have difficulty in buffering the
//! delayed blocks." [`DemotionBuffer`] wraps any protocol and models
//! exactly that: each boundary gets a queue of `buffer_capacity` pending
//! demotions drained by the link's spare bandwidth; a demotion finding
//! the queue full stays on the critical path. The exposed fraction is
//! what the §4.1 formula should charge.

use crate::stats::FaultSummary;
use crate::{AccessOutcome, MultiLevelPolicy};
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, ClientId};

/// Wraps a protocol, absorbing demotions into per-boundary buffers.
#[derive(Clone, Debug)]
pub struct DemotionBuffer<P> {
    inner: P,
    /// Pending demotions per boundary.
    queues: Vec<f64>,
    buffer_capacity: f64,
    /// Spare link bandwidth: demotions drained per reference interval.
    drain_per_ref: f64,
    hidden: u64,
    exposed: u64,
}

impl<P: MultiLevelPolicy> DemotionBuffer<P> {
    /// Wraps `inner` with `buffer_capacity` demotion buffers per boundary
    /// and `drain_per_ref` blocks of spare bandwidth per reference.
    ///
    /// # Panics
    ///
    /// Panics if `drain_per_ref` is negative.
    pub fn new(inner: P, buffer_capacity: usize, drain_per_ref: f64) -> Self {
        assert!(drain_per_ref >= 0.0, "bandwidth must be non-negative");
        let boundaries = inner.num_levels().saturating_sub(1);
        DemotionBuffer {
            inner,
            queues: vec![0.0; boundaries],
            buffer_capacity: buffer_capacity as f64,
            drain_per_ref,
            hidden: 0,
            exposed: 0,
        }
    }

    /// Demotions absorbed off the critical path.
    pub fn hidden(&self) -> u64 {
        self.hidden
    }

    /// Demotions that stayed on the critical path (buffers full).
    pub fn exposed(&self) -> u64 {
        self.exposed
    }

    /// Fraction of demotions hidden so far (1.0 when there were none).
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.hidden + self.exposed;
        if total == 0 {
            1.0
        } else {
            self.hidden as f64 / total as f64
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: MultiLevelPolicy + Observe> MultiLevelPolicy for DemotionBuffer<P> {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(self.num_levels().saturating_sub(1));
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        for q in &mut self.queues {
            *q = (*q - self.drain_per_ref).max(0.0);
        }
        self.inner.access_into(client, block, out);
        for (b, d) in out.demotions.iter_mut().enumerate() {
            let mut kept = 0u32;
            for _ in 0..*d {
                if self.queues[b] + 1.0 <= self.buffer_capacity {
                    self.queues[b] += 1.0;
                    self.hidden += 1;
                    // The inner engine already recorded the Demote event;
                    // mark it as absorbed so the conservation ledger can
                    // balance events against the surfaced SimStats count.
                    self.inner.obs_mut().on_demote_buffered(b);
                } else {
                    kept += 1;
                    self.exposed += 1;
                }
            }
            *d = kept;
            debug_assert!(
                self.queues[b] <= self.buffer_capacity,
                "boundary {b} queue exceeds its configured bound"
            );
        }
    }

    fn num_levels(&self) -> usize {
        self.inner.num_levels()
    }

    fn name(&self) -> &'static str {
        "buffered"
    }

    fn fault_summary(&self) -> FaultSummary {
        // Demotions that found their buffer full are overflow drops of
        // this bounded queue, on top of whatever the inner protocol's
        // message plane counted.
        let mut s = self.inner.fault_summary();
        s.overflow_drops += self.exposed;
        s
    }
}

impl<P: Observe> Observe for DemotionBuffer<P> {
    fn obs(&self) -> &ObsHandle {
        self.inner.obs()
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        self.inner.obs_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, UniLru};
    use ulc_trace::synthetic;

    #[test]
    fn ample_bandwidth_hides_everything() {
        let t = synthetic::cs(30_000);
        let uni = UniLru::single_client(vec![500, 500, 500]);
        let mut buffered = DemotionBuffer::new(uni, 64, 2.0);
        let stats = simulate(&mut buffered, &t, t.warmup_len());
        assert_eq!(stats.demotion_rates(), vec![0.0, 0.0]);
        assert!(buffered.hidden() > 0);
        assert_eq!(buffered.exposed(), 0);
    }

    #[test]
    fn saturated_link_exposes_most_demotions() {
        // The §4.1 case: uniLRU on a loop demotes ~1 block per reference;
        // with only 0.1 blocks/ref of spare bandwidth, buffers fill and
        // ~90 % of demotions stay on the critical path.
        let t = synthetic::cs(30_000);
        let uni = UniLru::single_client(vec![500, 500, 500]);
        let mut buffered = DemotionBuffer::new(uni, 16, 0.1);
        let stats = simulate(&mut buffered, &t, t.warmup_len());
        assert!(
            stats.demotion_rates()[0] > 0.8,
            "exposed rate = {:?}",
            stats.demotion_rates()
        );
        assert!(buffered.hidden_fraction() < 0.2);
    }

    #[test]
    fn hit_accounting_is_unaffected() {
        let t = synthetic::zipf_small(20_000);
        let mut plain = UniLru::single_client(vec![300, 300]);
        let s1 = simulate(&mut plain, &t, t.warmup_len());
        let mut buffered =
            DemotionBuffer::new(UniLru::single_client(vec![300, 300]), 8, 0.5);
        let s2 = simulate(&mut buffered, &t, t.warmup_len());
        assert_eq!(s1.hits_by_level, s2.hits_by_level);
        assert_eq!(s1.misses, s2.misses);
    }

    #[test]
    fn overflow_is_bounded_and_counted_in_sim_stats() {
        // A saturated link: the queue must never exceed its bound, and
        // every demotion bounced off the full buffer must show up as an
        // overflow drop in the run's fault summary.
        let t = synthetic::cs(30_000);
        let uni = UniLru::single_client(vec![500, 500, 500]);
        let mut buffered = DemotionBuffer::new(uni, 16, 0.1);
        let stats = simulate(&mut buffered, &t, 0);
        assert!(buffered.exposed() > 0, "the link must saturate");
        assert_eq!(
            stats.faults.overflow_drops,
            buffered.exposed(),
            "overflow drops must be reported through SimStats"
        );
        for q in &buffered.queues {
            assert!(*q <= buffered.buffer_capacity, "queue bound violated");
        }
    }

    #[test]
    fn no_demotions_means_fraction_one() {
        let t = synthetic::zipf_small(5_000);
        let mut buffered = DemotionBuffer::new(
            crate::IndLru::single_client(vec![100, 100]),
            4,
            0.1,
        );
        let _ = simulate(&mut buffered, &t, 0);
        assert_eq!(buffered.hidden_fraction(), 1.0);
    }
}
