//! Offline reference bounds for hierarchy hit rates.
//!
//! No multi-level protocol can beat Belady's OPT running on a single
//! cache of aggregate size; unified LRU defines the online recency
//! baseline at the same size. These bounds put every measured hit rate
//! in context (used by EXPERIMENTS.md).

use ulc_cache::{next_use_times, LruCache, OptCache};
use ulc_trace::Trace;

/// Hit rate of Belady's OPT with `capacity` blocks on the measured
/// portion of `trace` (after `warmup` references).
///
/// # Panics
///
/// Panics if `warmup` exceeds the trace length or `capacity` is zero.
pub fn opt_hit_rate(trace: &Trace, capacity: usize, warmup: usize) -> f64 {
    assert!(warmup <= trace.len(), "warm-up longer than the trace");
    let blocks: Vec<u64> = trace.iter().map(|r| r.block.raw()).collect();
    let next = next_use_times(&blocks);
    let mut opt = OptCache::new(capacity);
    let mut hits = 0usize;
    for (i, &b) in blocks.iter().enumerate() {
        let hit = opt.access(b, next[i]).is_hit();
        if i >= warmup && hit {
            hits += 1;
        }
    }
    hits as f64 / (trace.len() - warmup).max(1) as f64
}

/// Hit rate of a single LRU cache of `capacity` blocks on the measured
/// portion of `trace` — what unified LRU achieves in aggregate.
///
/// # Panics
///
/// Panics if `warmup` exceeds the trace length or `capacity` is zero.
pub fn aggregate_lru_hit_rate(trace: &Trace, capacity: usize, warmup: usize) -> f64 {
    assert!(warmup <= trace.len(), "warm-up longer than the trace");
    let mut lru = LruCache::new(capacity);
    let mut hits = 0usize;
    for (i, r) in trace.iter().enumerate() {
        let hit = lru.access(r.block).is_hit();
        if i >= warmup && hit {
            hits += 1;
        }
    }
    hits as f64 / (trace.len() - warmup).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, UniLru};
    use ulc_trace::synthetic;

    #[test]
    fn opt_bound_dominates_lru_bound() {
        for trace in [
            synthetic::zipf_small(30_000),
            synthetic::cs(30_000),
            synthetic::sprite(30_000),
        ] {
            let w = trace.warmup_len();
            assert!(
                opt_hit_rate(&trace, 900, w) >= aggregate_lru_hit_rate(&trace, 900, w) - 1e-9
            );
        }
    }

    #[test]
    fn uni_lru_attains_the_lru_bound() {
        let trace = synthetic::zipf_small(30_000);
        let w = trace.warmup_len();
        let mut uni = UniLru::single_client(vec![300, 300, 300]);
        let stats = simulate(&mut uni, &trace, w);
        let bound = aggregate_lru_hit_rate(&trace, 900, w);
        assert!(
            (stats.total_hit_rate() - bound).abs() < 1e-9,
            "uniLRU {:.4} vs bound {:.4}",
            stats.total_hit_rate(),
            bound
        );
    }

    #[test]
    fn opt_bound_on_loop_is_partial_residency() {
        // OPT on a loop of L blocks with capacity C hits ~C/L of the time.
        let trace = synthetic::cs(40_000); // 2500-block loop
        let rate = opt_hit_rate(&trace, 500, trace.warmup_len());
        assert!((0.15..0.35).contains(&rate), "rate = {rate}");
    }
}
