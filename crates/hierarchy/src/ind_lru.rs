//! Independent LRU (`indLRU`) — the commonly deployed baseline.
//!
//! Every level runs plain LRU on the request stream it happens to see:
//! level `i` sees the misses of level `i-1`. No coordination, no
//! demotions; evicted blocks are simply dropped. This is the scheme §1.1
//! criticises: the low levels see a locality-filtered stream and duplicate
//! blocks redundantly, so the hierarchy behaves far below its aggregate
//! size.

use crate::{AccessOutcome, MultiLevelPolicy};
use ulc_cache::LruCache;
use ulc_trace::{BlockId, ClientId};

/// Independent per-level LRU over a hierarchy with private client caches
/// (level 1) and shared lower levels.
#[derive(Clone, Debug)]
pub struct IndLru {
    clients: Vec<LruCache<BlockId>>,
    shared: Vec<LruCache<BlockId>>,
}

impl IndLru {
    /// A single-client hierarchy: `capacities[0]` is the client cache,
    /// the rest are the shared lower levels.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is zero.
    pub fn single_client(capacities: Vec<usize>) -> Self {
        assert!(!capacities.is_empty(), "at least one level is required");
        IndLru::multi_client(vec![capacities[0]], capacities[1..].to_vec())
    }

    /// A multi-client hierarchy: one private client cache per entry of
    /// `client_capacities`, then the shared levels.
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn multi_client(client_capacities: Vec<usize>, shared_capacities: Vec<usize>) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        IndLru {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            shared: shared_capacities.into_iter().map(LruCache::new).collect(),
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }
}

impl MultiLevelPolicy for IndLru {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        let boundaries = self.num_levels() - 1;
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        if self.clients[c].access(block).is_hit() {
            return AccessOutcome::hit(0, boundaries);
        }
        for (i, level) in self.shared.iter_mut().enumerate() {
            if level.access(block).is_hit() {
                return AccessOutcome::hit(i + 1, boundaries);
            }
        }
        AccessOutcome::miss(boundaries)
    }

    fn num_levels(&self) -> usize {
        1 + self.shared.len()
    }

    fn name(&self) -> &'static str {
        "indLRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use ulc_trace::synthetic;

    #[test]
    fn inclusive_duplication_wastes_lower_levels() {
        // §4.3's random observation: under indLRU the lower levels see a
        // locality-less residual stream and contribute almost nothing,
        // while the first level gets ~ its proportional share.
        let t = synthetic::random_small(120_000);
        let c = 1000; // universe is 5000 blocks
        let mut p = IndLru::single_client(vec![c, c, c]);
        let stats = simulate(&mut p, &t, t.warmup_len());
        let h = stats.hit_rates();
        let expect_h1 = c as f64 / synthetic::RANDOM_SMALL_BLOCKS as f64;
        assert!(
            (h[0] - expect_h1).abs() < 0.03,
            "h1 = {:.3}, expected ~{expect_h1:.3}",
            h[0]
        );
        assert!(h[1] < 0.05, "h2 = {:.3} should be tiny", h[1]);
        assert!(h[2] < 0.02, "h3 = {:.3} should be tinier", h[2]);
    }

    #[test]
    fn no_demotions_ever() {
        let t = synthetic::zipf_small(20_000);
        let mut p = IndLru::single_client(vec![500, 500]);
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.demotions_by_boundary, vec![0]);
    }

    #[test]
    fn hit_in_client_after_lower_level_hit() {
        // After a level-2 hit the block was also installed at the client.
        let mut p = IndLru::single_client(vec![2, 4]);
        let b = BlockId::new(7);
        p.access(ClientId::SINGLE, b); // miss, installed everywhere
        p.access(ClientId::SINGLE, BlockId::new(8));
        p.access(ClientId::SINGLE, BlockId::new(9)); // 7 evicted from client
        let out = p.access(ClientId::SINGLE, b);
        assert_eq!(out.hit_level, Some(1));
        let out = p.access(ClientId::SINGLE, b);
        assert_eq!(out.hit_level, Some(0));
    }

    #[test]
    fn clients_have_private_first_levels() {
        let mut p = IndLru::multi_client(vec![4, 4], vec![8]);
        let b = BlockId::new(1);
        p.access(ClientId::new(0), b);
        // Client 1 misses at its own cache but hits the shared server.
        let out = p.access(ClientId::new(1), b);
        assert_eq!(out.hit_level, Some(1));
    }

    #[test]
    fn single_level_hierarchy_works() {
        let mut p = IndLru::single_client(vec![2]);
        assert_eq!(p.num_levels(), 1);
        let out = p.access(ClientId::SINGLE, BlockId::new(1));
        assert_eq!(out.hit_level, None);
        assert!(out.demotions.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn unknown_client_rejected() {
        let mut p = IndLru::single_client(vec![2]);
        let _ = p.access(ClientId::new(5), BlockId::new(1));
    }
}
