//! Independent LRU (`indLRU`) — the commonly deployed baseline.
//!
//! Every level runs plain LRU on the request stream it happens to see:
//! level `i` sees the misses of level `i-1`. No coordination, no
//! demotions; evicted blocks are simply dropped. This is the scheme §1.1
//! criticises: the low levels see a locality-filtered stream and duplicate
//! blocks redundantly, so the hierarchy behaves far below its aggregate
//! size.
//!
//! ## Message plane
//!
//! indLRU sends no coordination messages, so only its demand reads cross
//! the [`MessagePlane`]: probing shared level `i` is an RPC on link `i`.
//! A lost request means the level never saw the reference (no install, no
//! hit); a lost reply means the level served — and, being inclusive,
//! installed — the block, but the client fell through to the next level
//! anyway. Crashes cold-restart a level. No reconciliation is needed:
//! indLRU maintains no cross-level invariant to repair.

use crate::plane::{MessagePlane, ReliablePlane, RpcFate};
use crate::stats::FaultSummary;
use crate::{AccessOutcome, MultiLevelPolicy};
use ulc_cache::LruCache;
use ulc_obs::{Observe, ObsHandle};
use ulc_trace::{BlockId, ClientId};

/// Independent per-level LRU over a hierarchy with private client caches
/// (level 1) and shared lower levels, generic over the transport its
/// demand reads cross.
#[derive(Clone, Debug)]
pub struct IndLru<P: MessagePlane = ReliablePlane> {
    clients: Vec<LruCache<BlockId>>,
    shared: Vec<LruCache<BlockId>>,
    plane: P,
    /// Pooled crash buffer, recycled across accesses so the steady-state
    /// path performs no heap allocation (DESIGN.md §5f).
    crash_buf: Vec<usize>,
    /// Observability hooks (no-op unless the `obs` feature is on and a
    /// recorder has been attached; DESIGN.md §5h).
    obs: ObsHandle,
}

impl IndLru {
    /// A single-client hierarchy: `capacities[0]` is the client cache,
    /// the rest are the shared lower levels.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is zero.
    pub fn single_client(capacities: Vec<usize>) -> Self {
        assert!(!capacities.is_empty(), "at least one level is required");
        IndLru::multi_client(vec![capacities[0]], capacities[1..].to_vec())
    }

    /// A multi-client hierarchy: one private client cache per entry of
    /// `client_capacities`, then the shared levels.
    ///
    /// # Panics
    ///
    /// Panics if `client_capacities` is empty or any capacity is zero.
    pub fn multi_client(client_capacities: Vec<usize>, shared_capacities: Vec<usize>) -> Self {
        assert!(
            !client_capacities.is_empty(),
            "at least one client is required"
        );
        IndLru {
            clients: client_capacities.into_iter().map(LruCache::new).collect(),
            shared: shared_capacities.into_iter().map(LruCache::new).collect(),
            plane: ReliablePlane::new(),
            crash_buf: Vec::new(),
            obs: ObsHandle::default(),
        }
    }
}

impl<P: MessagePlane> IndLru<P> {
    /// Moves the hierarchy onto a different message plane.
    pub fn with_plane<Q: MessagePlane>(self, plane: Q) -> IndLru<Q> {
        IndLru {
            clients: self.clients,
            shared: self.shared,
            plane,
            crash_buf: self.crash_buf,
            obs: self.obs,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Wipes crashed levels (cold restart).
    // lint:cold-path crash recovery rebuilds whole caches; allocation is by design
    fn apply_crashes(&mut self) {
        let mut crashes = std::mem::take(&mut self.crash_buf);
        self.plane.take_crashes_into(&mut crashes);
        for &level in &crashes {
            if level == 0 {
                for cl in &mut self.clients {
                    *cl = LruCache::new(cl.capacity());
                }
            } else if level - 1 < self.shared.len() {
                let s = level - 1;
                self.shared[s] = LruCache::new(self.shared[s].capacity());
                self.plane.purge_link(s);
            }
        }
        self.crash_buf = crashes;
    }
}

impl<P: MessagePlane> MultiLevelPolicy for IndLru<P> {
    fn access(&mut self, client: ClientId, block: BlockId) -> AccessOutcome {
        // allocation-free path is access_into.
        let mut out = AccessOutcome::miss(self.num_levels() - 1);
        self.access_into(client, block, &mut out);
        out
    }

    fn access_into(&mut self, client: ClientId, block: BlockId, out: &mut AccessOutcome) {
        let boundaries = self.num_levels() - 1;
        let c = client.as_usize();
        assert!(c < self.clients.len(), "unknown client {client}");
        out.reset(boundaries);
        self.obs.begin_access();
        self.plane.tick();
        self.apply_crashes();
        if self.clients[c].access(block).is_hit() {
            out.hit_level = Some(0);
            self.obs.on_hit(0, block.raw());
            return;
        }
        // The client miss installed the block there (inclusive caching).
        self.obs.on_retrieve(0, block.raw());
        for i in 0..self.shared.len() {
            let fate = self.plane.rpc(i);
            self.obs.on_rpc(i + 1);
            match fate {
                RpcFate::RequestLost => {
                    // The level never saw it.
                    self.obs.on_fault(i + 1, block.raw());
                    continue;
                }
                fate => {
                    let hit = self.shared[i].access(block).is_hit();
                    if !hit {
                        self.obs.on_retrieve(i + 1, block.raw());
                    }
                    if hit && fate == RpcFate::Delivered {
                        out.hit_level = Some(i + 1);
                        self.obs.on_hit(i + 1, block.raw());
                        return;
                    }
                    if hit {
                        // Reply lost: the level served — and refreshed —
                        // the block, but the client never heard; fall
                        // through to the next level.
                        self.obs.on_fault(i + 1, block.raw());
                    }
                }
            }
        }
        self.obs.on_miss(block.raw());
    }

    fn num_levels(&self) -> usize {
        1 + self.shared.len()
    }

    fn name(&self) -> &'static str {
        "indLRU"
    }

    fn fault_summary(&self) -> FaultSummary {
        let mut s = FaultSummary::default();
        self.plane.accounting().fold_into(&mut s);
        s
    }
}

impl<P: MessagePlane> Observe for IndLru<P> {
    fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    fn obs_mut(&mut self) -> &mut ObsHandle {
        &mut self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{FaultScenario, FaultyPlane};
    use crate::simulate;
    use ulc_trace::synthetic;

    #[test]
    fn inclusive_duplication_wastes_lower_levels() {
        // §4.3's random observation: under indLRU the lower levels see a
        // locality-less residual stream and contribute almost nothing,
        // while the first level gets ~ its proportional share.
        let t = synthetic::random_small(120_000);
        let c = 1000; // universe is 5000 blocks
        let mut p = IndLru::single_client(vec![c, c, c]);
        let stats = simulate(&mut p, &t, t.warmup_len());
        let h = stats.hit_rates();
        let expect_h1 = c as f64 / synthetic::RANDOM_SMALL_BLOCKS as f64;
        assert!(
            (h[0] - expect_h1).abs() < 0.03,
            "h1 = {:.3}, expected ~{expect_h1:.3}",
            h[0]
        );
        assert!(h[1] < 0.05, "h2 = {:.3} should be tiny", h[1]);
        assert!(h[2] < 0.02, "h3 = {:.3} should be tinier", h[2]);
    }

    #[test]
    fn no_demotions_ever() {
        let t = synthetic::zipf_small(20_000);
        let mut p = IndLru::single_client(vec![500, 500]);
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.demotions_by_boundary, vec![0]);
    }

    #[test]
    fn hit_in_client_after_lower_level_hit() {
        // After a level-2 hit the block was also installed at the client.
        let mut p = IndLru::single_client(vec![2, 4]);
        let b = BlockId::new(7);
        p.access(ClientId::SINGLE, b); // miss, installed everywhere
        p.access(ClientId::SINGLE, BlockId::new(8));
        p.access(ClientId::SINGLE, BlockId::new(9)); // 7 evicted from client
        let out = p.access(ClientId::SINGLE, b);
        assert_eq!(out.hit_level, Some(1));
        let out = p.access(ClientId::SINGLE, b);
        assert_eq!(out.hit_level, Some(0));
    }

    #[test]
    fn clients_have_private_first_levels() {
        let mut p = IndLru::multi_client(vec![4, 4], vec![8]);
        let b = BlockId::new(1);
        p.access(ClientId::new(0), b);
        // Client 1 misses at its own cache but hits the shared server.
        let out = p.access(ClientId::new(1), b);
        assert_eq!(out.hit_level, Some(1));
    }

    #[test]
    fn single_level_hierarchy_works() {
        let mut p = IndLru::single_client(vec![2]);
        assert_eq!(p.num_levels(), 1);
        let out = p.access(ClientId::SINGLE, BlockId::new(1));
        assert_eq!(out.hit_level, None);
        assert!(out.demotions.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn unknown_client_rejected() {
        let mut p = IndLru::single_client(vec![2]);
        let _ = p.access(ClientId::new(5), BlockId::new(1));
    }

    #[test]
    fn zero_fault_plane_is_bit_identical() {
        let t = synthetic::zipf_small(30_000);
        let mut reliable = IndLru::single_client(vec![500, 500, 500]);
        let mut faulty = IndLru::single_client(vec![500, 500, 500])
            .with_plane(FaultyPlane::new(FaultScenario::zero(21)));
        let sr = simulate(&mut reliable, &t, t.warmup_len());
        let sf = simulate(&mut faulty, &t, t.warmup_len());
        assert_eq!(sr, sf);
        assert!(sf.faults.is_clean());
    }

    #[test]
    fn lost_reads_cost_hits_but_nothing_breaks() {
        let t = synthetic::zipf_small(30_000);
        let mut clean = IndLru::single_client(vec![300, 600]);
        let mut lossy = IndLru::single_client(vec![300, 600])
            .with_plane(FaultyPlane::new(FaultScenario::zero(4).with_drop(0.4)));
        let sc = simulate(&mut clean, &t, t.warmup_len());
        let sl = simulate(&mut lossy, &t, t.warmup_len());
        assert!(sl.faults.rpc_failures > 0);
        assert!(sl.hit_rates()[1] < sc.hit_rates()[1]);
    }

    #[test]
    fn crash_cold_restarts_the_server_level() {
        let t = synthetic::zipf_small(20_000);
        let scenario = FaultScenario::zero(6).with_crash(10_000, 1);
        let mut p = IndLru::single_client(vec![300, 600])
            .with_plane(FaultyPlane::new(scenario));
        let stats = simulate(&mut p, &t, 0);
        assert_eq!(stats.faults.crashes, 1);
        assert!(stats.total_hit_rate() > 0.0);
    }
}
