//! Property-based tests for the hierarchy simulator and its baselines.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_cache::LruCache;
use ulc_hierarchy::{simulate, IndLru, LruMqServer, MultiLevelPolicy, UniLru, UniLruVariant};
use ulc_trace::{BlockId, ClientId, Trace};

fn single_trace() -> impl Strategy<Value = Trace> {
    vec(0u64..48, 1..400).prop_map(|b| Trace::from_blocks(b.into_iter().map(BlockId::new)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The defining property of unified LRU: an n-level exclusive DEMOTE
    /// hierarchy has exactly the hit set of one LRU cache of aggregate
    /// size, and a reference hits level i iff its recency falls in level
    /// i's slice of the unified stack.
    #[test]
    fn uni_lru_equals_one_big_lru(
        caps in vec(1usize..8, 1..4),
        trace in single_trace(),
    ) {
        let aggregate: usize = caps.iter().sum();
        let mut uni = UniLru::single_client(caps.clone());
        let mut big = LruCache::new(aggregate);
        for r in &trace {
            let outcome = uni.access(r.client, r.block);
            let big_hit = big.access(r.block).is_hit();
            prop_assert_eq!(
                outcome.hit_level.is_some(),
                big_hit,
                "block {}",
                r.block
            );
        }
        uni.check_invariants();
    }

    /// uniLRU's per-level hit: the level index is determined by the LRU
    /// stack distance of the reference against the cumulative capacities.
    #[test]
    fn uni_lru_hit_level_is_stack_distance_slice(
        caps in vec(1usize..6, 2..4),
        trace in single_trace(),
    ) {
        let blocks: Vec<u64> = trace.iter().map(|r| r.block.raw()).collect();
        let distances = ulc_cache::lru_stack_distances(&blocks);
        let mut bounds = Vec::new();
        let mut acc = 0usize;
        for &c in &caps {
            acc += c;
            bounds.push(acc);
        }
        let mut uni = UniLru::single_client(caps.clone());
        for (i, r) in trace.iter().enumerate() {
            let outcome = uni.access(r.client, r.block);
            let expect = distances[i].and_then(|d| {
                bounds.iter().position(|&b| d < b)
            });
            prop_assert_eq!(outcome.hit_level, expect, "ref {}", i);
        }
    }

    /// indLRU never demotes and never reports a hit for a block it has
    /// not seen.
    #[test]
    fn ind_lru_sanity(
        caps in vec(1usize..8, 1..4),
        trace in single_trace(),
    ) {
        let mut ind = IndLru::single_client(caps.clone());
        let mut seen = std::collections::HashSet::new();
        for r in &trace {
            let outcome = ind.access(r.client, r.block);
            prop_assert!(outcome.demotions.iter().all(|&d| d == 0));
            if outcome.hit_level.is_some() {
                prop_assert!(seen.contains(&r.block));
            }
            seen.insert(r.block);
        }
    }

    /// The simulator's counters add up: hits + misses == measured refs.
    #[test]
    fn sim_stats_are_conserved(
        trace in single_trace(),
        warmup_frac in 0usize..10,
    ) {
        let warmup = trace.len() * warmup_frac / 10;
        let mut p = UniLru::single_client(vec![2, 3]);
        let stats = simulate(&mut p, &trace, warmup);
        let hits: u64 = stats.hits_by_level.iter().sum();
        prop_assert_eq!(hits + stats.misses, stats.references);
        prop_assert_eq!(stats.references as usize, trace.len() - warmup);
    }

    /// Every uniLRU insertion variant preserves the exclusive invariant:
    /// a block is resident in at most one level (checked via hit levels
    /// being unique per access — a block found at L1 was not also at L2,
    /// observable by removing it and probing again).
    #[test]
    fn uni_lru_variants_run_clean(
        variant_idx in 0usize..3,
        trace in single_trace(),
    ) {
        let variant = [
            UniLruVariant::MruInsert,
            UniLruVariant::LruInsert,
            UniLruVariant::Adaptive,
        ][variant_idx];
        let mut uni = UniLru::multi_client(vec![3], vec![4], variant);
        let stats = simulate(&mut uni, &trace, 0);
        prop_assert_eq!(stats.references as usize, trace.len());
        uni.check_invariants();
    }

    /// DemotionBuffer conserves demotions (hidden + exposed = inner) and
    /// never alters hit accounting.
    #[test]
    fn demotion_buffer_conserves(
        buffer in 0usize..32,
        drain_tenths in 0u32..20,
        trace in single_trace(),
    ) {
        use ulc_hierarchy::DemotionBuffer;
        let caps = vec![3usize, 4];
        let mut plain = UniLru::single_client(caps.clone());
        let plain_stats = simulate(&mut plain, &trace, 0);
        let mut wrapped = DemotionBuffer::new(
            UniLru::single_client(caps),
            buffer,
            drain_tenths as f64 / 10.0,
        );
        let wrapped_stats = simulate(&mut wrapped, &trace, 0);
        prop_assert_eq!(&plain_stats.hits_by_level, &wrapped_stats.hits_by_level);
        let plain_total: u64 = plain_stats.demotions_by_boundary.iter().sum();
        let exposed: u64 = wrapped_stats.demotions_by_boundary.iter().sum();
        prop_assert_eq!(wrapped.hidden() + wrapped.exposed(), plain_total);
        prop_assert_eq!(wrapped.exposed(), exposed);
    }

    /// EvictionBased with zero reload latency has exactly DEMOTE's hit
    /// behaviour, with zero demotion traffic.
    #[test]
    fn eviction_based_zero_latency_equals_demote(trace in single_trace()) {
        use ulc_hierarchy::EvictionBased;
        let mut eb = EvictionBased::new(vec![3], 4, 0);
        let mut uni = UniLru::multi_client(vec![3], vec![4], UniLruVariant::MruInsert);
        for r in &trace {
            let a = eb.access(r.client, r.block);
            let b = uni.access(r.client, r.block);
            prop_assert_eq!(a.hit_level, b.hit_level, "block {}", r.block);
            prop_assert_eq!(a.demotions, vec![0]);
        }
    }

    /// Multi-client MQ/indLRU accept any interleaving of clients.
    #[test]
    fn multi_client_baselines_accept_any_interleaving(
        refs in vec((0u32..3, 0u64..32), 1..300),
    ) {
        let mut mq = LruMqServer::new(vec![2, 2, 2], 6);
        let mut ind = IndLru::multi_client(vec![2, 2, 2], vec![6]);
        for &(c, b) in &refs {
            let client = ClientId::new(c);
            let block = BlockId::new(b);
            let m = mq.access(client, block);
            let i = ind.access(client, block);
            prop_assert!(m.hit_level.map_or(true, |l| l < 2));
            prop_assert!(i.hit_level.map_or(true, |l| l < 2));
        }
    }
}
