//! Property-based tests for [`ReuseHistogram`] merging: the fold used by
//! parallel sweep workers must be associative and commutative, and bucket
//! counts must be conserved when a workload is split and re-merged.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_measures::ReuseHistogram;
use ulc_trace::{BlockId, Trace};

const EDGES: [usize; 3] = [4, 16, 64];

fn trace_of(blocks: &[u64]) -> Trace {
    Trace::from_blocks(blocks.iter().copied().map(BlockId::new))
}

fn hist_of(blocks: &[u64]) -> ReuseHistogram {
    ReuseHistogram::compute(&trace_of(blocks), &EDGES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging two worker histograms conserves every bucket count, the
    /// cold count and the total.
    #[test]
    fn merge_conserves_bucket_counts(
        a in vec(0u64..40, 1..120),
        b in vec(0u64..40, 1..120),
    ) {
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        let mut merged = ha.clone();
        merged.merge(&hb);
        for (i, &n) in merged.counts.iter().enumerate() {
            prop_assert_eq!(n, ha.counts[i] + hb.counts[i], "bucket {}", i);
        }
        prop_assert_eq!(merged.cold, ha.cold + hb.cold);
        prop_assert_eq!(merged.total, ha.total + hb.total);
    }

    /// The fold is commutative: worker completion order cannot matter.
    #[test]
    fn merge_is_commutative(
        a in vec(0u64..40, 1..120),
        b in vec(0u64..40, 1..120),
    ) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab, ba);
    }

    /// The fold is associative: workers can be folded in any grouping.
    #[test]
    fn merge_is_associative(
        a in vec(0u64..40, 1..80),
        b in vec(0u64..40, 1..80),
        c in vec(0u64..40, 1..80),
    ) {
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Splitting a trace on a boundary and merging the two halves gives
    /// exactly the whole-trace histogram, up to the reuse pairs the split
    /// severs: every severed pair turns one re-reference into a cold
    /// access, so totals always match and `cold` can only grow.
    #[test]
    fn split_merge_conserves_totals(
        blocks in vec(0u64..20, 2..160),
        split_at in 1usize..159,
    ) {
        let split = split_at.min(blocks.len() - 1);
        let whole = hist_of(&blocks);
        let mut merged = hist_of(&blocks[..split]);
        merged.merge(&hist_of(&blocks[split..]));
        prop_assert_eq!(merged.total, whole.total);
        prop_assert!(merged.cold >= whole.cold);
        let merged_refs: u64 = merged.counts.iter().sum::<u64>() + merged.cold;
        let whole_refs: u64 = whole.counts.iter().sum::<u64>() + whole.cold;
        prop_assert_eq!(merged_refs, whole_refs);
    }
}

#[test]
#[should_panic(expected = "different bucket edges")]
fn merge_rejects_mismatched_edges() {
    let t = trace_of(&[1, 2, 3]);
    let mut a = ReuseHistogram::compute(&t, &[4, 16]);
    let b = ReuseHistogram::compute(&t, &[8, 32]);
    a.merge(&b);
}
