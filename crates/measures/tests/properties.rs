//! Property-based tests for the measures framework: the fast analyses are
//! equivalent to the brute-force reference, and conservation laws hold.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_measures::{analyze, reference, MeasureKind};
use ulc_trace::{BlockId, Trace};

/// Traces guaranteed to touch at least `segments` distinct blocks.
fn trace_with_min_blocks(
    segments: u64,
    extra: impl Strategy<Value = Vec<u64>>,
) -> impl Strategy<Value = Trace> {
    extra.prop_map(move |tail| {
        let blocks = (0..segments)
            .chain(tail.into_iter())
            .map(BlockId::new)
            .collect::<Vec<_>>();
        Trace::from_blocks(blocks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast == brute force for every measure on arbitrary traces.
    #[test]
    fn fast_analysis_equals_reference(
        trace in trace_with_min_blocks(8, vec(0u64..20, 0..150)),
        segments in 2usize..8,
    ) {
        for kind in MeasureKind::ALL {
            let fast = analyze(&trace, kind, segments);
            let slow = reference::analyze_slow(&trace, kind, segments);
            prop_assert_eq!(fast, slow, "measure {}", kind);
        }
    }

    /// Fast == brute force on scan/loop-heavy traces. Sequential scans
    /// drive the indexed LLD-R analyzer's drift and static→R transition
    /// machinery, and repeated loops exercise its unchanged-order fast
    /// path — the regimes a uniform-random trace rarely reaches.
    #[test]
    fn fast_analysis_equals_reference_on_scans_and_loops(
        pieces in vec((0u64..3, 0u64..24, 2u64..20), 1..12),
        segments in 2usize..8,
    ) {
        // Opening scan guarantees `segments` (< 8) distinct blocks.
        let mut blocks: Vec<BlockId> = (0..8).map(BlockId::new).collect();
        for (shape, base, len) in pieces {
            match shape {
                // Forward scan: every block's LLD grows with the scan.
                0 => blocks.extend((base..base + len).map(BlockId::new)),
                // Loop: the second lap repeats the first's locality scope.
                1 => {
                    for _ in 0..2 {
                        blocks.extend((base..base + len).map(BlockId::new));
                    }
                }
                // Hot spot: tight re-references keep recency dominant.
                _ => blocks.extend((0..len).map(|i| BlockId::new(base + i % 3))),
            }
        }
        let trace = Trace::from_blocks(blocks);
        for kind in MeasureKind::ALL {
            let fast = analyze(&trace, kind, segments);
            let slow = reference::analyze_slow(&trace, kind, segments);
            prop_assert_eq!(fast, slow, "measure {}", kind);
        }
    }

    /// Segment hits plus cold references account for every reference, for
    /// every measure.
    #[test]
    fn reference_conservation(
        trace in trace_with_min_blocks(10, vec(0u64..40, 0..300)),
    ) {
        for kind in MeasureKind::ALL {
            let r = analyze(&trace, kind, 10);
            let seg: u64 = r.reference_counts.iter().sum();
            prop_assert_eq!(seg + r.cold_references, r.total_references);
            prop_assert_eq!(r.total_references as usize, trace.len());
            prop_assert!(r.cold_references as usize >= trace.unique_blocks().min(trace.len()));
        }
    }

    /// Cumulative ratios are monotone and end at 1 - cold_fraction.
    #[test]
    fn cumulative_ratios_monotone(
        trace in trace_with_min_blocks(10, vec(0u64..30, 0..200)),
    ) {
        for kind in MeasureKind::ALL {
            let r = analyze(&trace, kind, 10);
            let cum = r.cumulative_ratios();
            for w in cum.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-12);
            }
            let cold = r.cold_references as f64 / r.total_references.max(1) as f64;
            prop_assert!((cum.last().unwrap() + cold - 1.0).abs() < 1e-9);
        }
    }

    /// The first reference to every block is cold under every measure (a
    /// block cannot be found in the list before it ever entered it).
    #[test]
    fn distinct_single_pass_is_all_cold(n in 10u64..60) {
        let trace = Trace::from_blocks((0..n).map(BlockId::new));
        for kind in MeasureKind::ALL {
            let r = analyze(&trace, kind, 10);
            prop_assert_eq!(r.cold_references, n);
            prop_assert_eq!(r.reference_counts.iter().sum::<u64>(), 0);
        }
    }
}
