//! Locality-strength measures and list-segment analysis — §2 of the ULC
//! paper.
//!
//! The paper compares four criteria for ranking blocks by locality
//! strength: **ND** (next distance, the OPT criterion), **R** (recency, the
//! LRU criterion), **NLD** (next locality distance) and **LLD-R** (the
//! online max of last locality distance and recency — the criterion ULC is
//! built on). Two abilities matter:
//!
//! 1. *Distinction*: do strongly local blocks concentrate at the head of
//!    the measure's ordered list (Figure 2)?
//! 2. *Stability*: how often do blocks cross segment boundaries as the list
//!    is updated (Figure 3)? Boundary crossings become inter-cache-level
//!    transfers under a unified protocol, so low is good.
//!
//! [`analyze`] runs one measure over a trace and returns a
//! [`SegmentReport`]; [`Table1::derive`] reproduces the paper's qualitative
//! summary.
//!
//! # Examples
//!
//! ```
//! use ulc_measures::{analyze, MeasureKind};
//! use ulc_trace::synthetic;
//!
//! // On a looping trace, LLD-R moves blocks across boundaries far less
//! // often than R does — the paper's key stability observation.
//! let trace = synthetic::glimpse(20_000);
//! let r = analyze(&trace, MeasureKind::R, 10);
//! let lld_r = analyze(&trace, MeasureKind::LldR, 10);
//! assert!(lld_r.mean_movement_ratio() < r.mean_movement_ratio());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod histogram;
mod measure;
mod samples;
mod report;
mod summary;

pub use analysis::{analyze, analyze_all, analyze_all_parallel, recencies, reference};
pub use histogram::ReuseHistogram;
pub use measure::{MeasureKind, INFINITE};
pub use report::SegmentReport;
pub use samples::{trace_measures, MeasureSample};
pub use summary::{MeasureRow, Rating, Table1};
