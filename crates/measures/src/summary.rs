//! Table 1: qualitative comparison of the four measures.

use crate::{analyze, MeasureKind, SegmentReport};
use std::fmt;
use ulc_trace::Trace;

/// A qualitative rating, as printed in Table 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rating {
    /// The measure does well on this ability.
    Strong,
    /// The measure does poorly on this ability.
    Weak,
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rating::Strong => "strong",
            Rating::Weak => "weak",
        })
    }
}

/// One measure's row of Table 1, derived from measured data.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureRow {
    /// Which measure the row describes.
    pub measure: MeasureKind,
    /// Ability to distinguish locality strengths.
    pub distinction: Rating,
    /// Stability of the distinctions.
    pub stability: Rating,
    /// Whether the measure is computable online.
    pub online: bool,
    /// Mean distinction score across the workloads (higher is better).
    pub distinction_score: f64,
    /// Mean movement ratio across the workloads (lower is better).
    pub movement_score: f64,
}

/// The derived Table 1: one row per measure.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1 {
    /// Rows in the paper's measure order.
    pub rows: Vec<MeasureRow>,
}

impl Table1 {
    /// Builds Table 1 from a set of named workloads by running all four
    /// measures over each.
    ///
    /// The paper's criterion for the *distinction* ability is consistency:
    /// "NLD performs well for all the workloads with various access
    /// patterns" while R collapses on looping patterns. A measure is rated
    /// `Strong` if, on **every** workload, the head third of its list
    /// captures at least 80 % of the uniform floor — the share a
    /// no-information (proportional) placement would capture. R drops to
    /// ~0 % on loops and is rated `Weak`.
    ///
    /// *Stability* is rated `Strong` if the mean movement ratio across the
    /// workloads stays below 0.5 crossings per reference per boundary; the
    /// volatile measures (ND, R) approach 2.0 on looping workloads.
    /// (`random` is excluded from being decisive by using the mean rather
    /// than the worst case: §2.2 notes that no measure can impose
    /// structure on spatially uniform references.)
    pub fn derive(traces: &[(&str, Trace)], segments: usize) -> Self {
        let mut dist = [0.0f64; 4];
        let mut movement = [0.0f64; 4];
        let mut worst_rel_dist = [f64::INFINITY; 4];
        for (_, t) in traces {
            for (i, &kind) in MeasureKind::ALL.iter().enumerate() {
                let report: SegmentReport = analyze(t, kind, segments);
                let cold_frac =
                    report.cold_references as f64 / report.total_references.max(1) as f64;
                let head_segments = (segments / 3).max(1);
                let uniform_floor =
                    (head_segments as f64 / segments as f64) * (1.0 - cold_frac);
                let rel = if uniform_floor > 0.0 {
                    report.distinction_score() / uniform_floor
                } else {
                    1.0
                };
                worst_rel_dist[i] = worst_rel_dist[i].min(rel);
                dist[i] += report.distinction_score();
                movement[i] += report.mean_movement_ratio();
            }
        }
        let n = traces.len().max(1) as f64;
        for v in dist.iter_mut().chain(movement.iter_mut()) {
            *v /= n;
        }
        let rows = MeasureKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &measure)| MeasureRow {
                measure,
                distinction: if worst_rel_dist[i] >= 0.8 {
                    Rating::Strong
                } else {
                    Rating::Weak
                },
                stability: if movement[i] <= 0.5 {
                    Rating::Strong
                } else {
                    Rating::Weak
                },
                online: measure.is_online(),
                distinction_score: dist[i],
                movement_score: movement[i],
            })
            .collect();
        Table1 { rows }
    }

    /// Row for a specific measure.
    pub fn row(&self, measure: MeasureKind) -> &MeasureRow {
        self.rows
            .iter()
            .find(|r| r.measure == measure)
            .expect("all four measures are present")
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28}{:>8}{:>8}{:>8}{:>8}",
            "", "ND", "R", "NLD", "LLD-R"
        )?;
        write!(f, "{:<28}", "distinguish locality")?;
        for r in &self.rows {
            write!(f, "{:>8}", r.distinction.to_string())?;
        }
        writeln!(f)?;
        write!(f, "{:<28}", "stability of distinctions")?;
        for r in &self.rows {
            write!(f, "{:>8}", r.stability.to_string())?;
        }
        writeln!(f)?;
        write!(f, "{:<28}", "on-line measure")?;
        for r in &self.rows {
            write!(f, "{:>8}", if r.online { "yes" } else { "no" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulc_trace::synthetic;

    fn small_workloads() -> Vec<(&'static str, Trace)> {
        vec![
            ("cs", synthetic::cs(15_000)),
            ("sprite", synthetic::sprite(10_000)),
            ("zipf", synthetic::zipf_small(10_000)),
        ]
    }

    #[test]
    fn derived_table_matches_paper_qualitative_results() {
        let table = Table1::derive(&small_workloads(), 10);
        // Paper Table 1: ND strong/weak, R weak/weak, NLD strong/strong,
        // LLD-R strong/strong.
        assert_eq!(table.row(MeasureKind::Nd).distinction, Rating::Strong);
        assert_eq!(table.row(MeasureKind::R).distinction, Rating::Weak);
        assert_eq!(table.row(MeasureKind::Nld).distinction, Rating::Strong);
        assert_eq!(table.row(MeasureKind::LldR).distinction, Rating::Strong);
        assert_eq!(table.row(MeasureKind::Nld).stability, Rating::Strong);
        assert_eq!(table.row(MeasureKind::LldR).stability, Rating::Strong);
        assert_eq!(table.row(MeasureKind::R).stability, Rating::Weak);
    }

    #[test]
    fn online_column_is_fixed() {
        let table = Table1::derive(&small_workloads(), 10);
        assert!(!table.row(MeasureKind::Nd).online);
        assert!(table.row(MeasureKind::R).online);
        assert!(!table.row(MeasureKind::Nld).online);
        assert!(table.row(MeasureKind::LldR).online);
    }

    #[test]
    fn display_renders_all_rows() {
        let table = Table1::derive(&small_workloads(), 10);
        let text = format!("{table}");
        assert!(text.contains("distinguish locality"));
        assert!(text.contains("stability"));
        assert!(text.contains("on-line"));
    }
}
