//! Trace analysis under the four measures — the engine behind Figures 2
//! and 3.
//!
//! For each measure an ascending ordered list of the accessed blocks is
//! maintained across the trace. Per reference we record which decile
//! *segment* of the list the block was found in (Figure 2) and how many
//! blocks crossed each segment boundary as the list was updated (Figure 3).
//!
//! The list is segmented against the trace's *full* length (total distinct
//! blocks), so segment boundaries are fixed rank positions. A boundary
//! crossing is counted once per block per reference whenever the block's
//! rank moves from one side of the boundary to the other.

use crate::{MeasureKind, SegmentReport, INFINITE};
use std::collections::HashMap;
use ulc_cache::{lru_stack_distances, next_use_times, Fenwick, KeyedList, LazyMinTree, RecencyList};
use ulc_trace::Trace;

/// Fixed rank boundaries for `segments` segments over `d` blocks.
#[derive(Clone, Debug)]
pub(crate) struct Boundaries {
    ranks: Vec<usize>,
    segments: usize,
    d: usize,
}

impl Boundaries {
    pub(crate) fn new(segments: usize, d: usize) -> Self {
        assert!(segments >= 2, "need at least two segments");
        assert!(
            d >= segments,
            "trace must touch at least as many blocks as there are segments"
        );
        Boundaries {
            ranks: (0..segments - 1)
                .map(|k| ((k + 1) * d).div_ceil(segments))
                .collect(),
            segments,
            d,
        }
    }

    /// Which segment a list rank falls into.
    pub(crate) fn segment_of(&self, rank: usize) -> usize {
        (rank * self.segments / self.d).min(self.segments - 1)
    }

    /// Indices of the boundaries strictly between ranks `a` and `b`
    /// (crossed by a block moving from rank `a` to rank `b`).
    pub(crate) fn crossed(&self, a: usize, b: usize) -> std::ops::Range<usize> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let start = self.ranks.partition_point(|&r| r <= lo);
        let end = self.ranks.partition_point(|&r| r <= hi);
        start..end
    }
}

/// Densely renumbers the blocks of a trace for fast array indexing.
fn densify(trace: &Trace) -> (Vec<u32>, usize) {
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut out = Vec::with_capacity(trace.len());
    for r in trace {
        let next_id = ids.len() as u32;
        out.push(*ids.entry(r.block.raw()).or_insert(next_id));
    }
    let d = ids.len();
    (out, d)
}

/// Analyses `trace` under `kind` with `segments` list segments (the paper
/// uses 10).
///
/// # Panics
///
/// Panics if the trace touches fewer distinct blocks than `segments`.
///
/// # Examples
///
/// ```
/// use ulc_measures::{analyze, MeasureKind};
/// use ulc_trace::synthetic;
///
/// let trace = synthetic::sprite(20_000);
/// let report = analyze(&trace, MeasureKind::R, 10);
/// // sprite is LRU-friendly: recency concentrates hits in the head.
/// assert!(report.reference_ratios()[0] > 0.3);
/// assert!(report.cumulative_ratios()[2] > 0.6);
/// ```
pub fn analyze(trace: &Trace, kind: MeasureKind, segments: usize) -> SegmentReport {
    let (blocks, d) = densify(trace);
    let bounds = Boundaries::new(segments, d);
    match kind {
        MeasureKind::R => analyze_recency(&blocks, &bounds),
        MeasureKind::Nd => {
            let next = next_use_times(&blocks);
            analyze_keyed(&blocks, &next, &bounds)
        }
        MeasureKind::Nld => {
            let nld: Vec<u64> = next_locality_values(&blocks);
            analyze_keyed(&blocks, &nld, &bounds)
        }
        MeasureKind::LldR => analyze_lld_r(&blocks, &bounds),
    }
}

/// Analyses `trace` under all four measures.
pub fn analyze_all(trace: &Trace, segments: usize) -> Vec<(MeasureKind, SegmentReport)> {
    MeasureKind::ALL
        .iter()
        .map(|&m| (m, analyze(trace, m, segments)))
        .collect()
}

/// [`analyze_all`] fanned across one thread per measure. The result is
/// identical, in `MeasureKind::ALL` order, regardless of which worker
/// finishes first.
pub fn analyze_all_parallel(trace: &Trace, segments: usize) -> Vec<(MeasureKind, SegmentReport)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = MeasureKind::ALL
            .iter()
            .map(|&m| scope.spawn(move || (m, analyze(trace, m, segments))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analyzer thread panicked"))
            .collect()
    })
}

/// NLD value of each reference: the recency at which the block will be
/// referenced next time, or [`INFINITE`].
fn next_locality_values(blocks: &[u32]) -> Vec<u64> {
    ulc_cache::next_locality_distances(blocks)
        .into_iter()
        .map(|o| o.map_or(INFINITE, |v| v as u64))
        .collect()
}

/// R: the list is the LRU stack itself, held as an indexed
/// [`RecencyList`] — O(log D) per reference instead of the O(D) scan and
/// splice of a `Vec` stack.
fn analyze_recency(blocks: &[u32], bounds: &Boundaries) -> SegmentReport {
    let mut report = SegmentReport::new(bounds.segments, bounds.d);
    let mut list = RecencyList::with_capacity(bounds.d, blocks.len());
    for &b in blocks {
        report.total_references += 1;
        match list.rank_of(b as usize) {
            Some(p) => {
                report.reference_counts[bounds.segment_of(p)] += 1;
                // Mover and one shifted block cross each boundary in (0, p].
                for k in bounds.crossed(0, p) {
                    report.boundary_movements[k] += 2;
                }
            }
            None => {
                report.cold_references += 1;
                // Every resident block shifts down by one; one block
                // crosses each boundary ≤ old length.
                let n_old = list.len();
                for k in bounds.crossed(0, n_old) {
                    report.boundary_movements[k] += 1;
                }
            }
        }
        list.move_to_front(b as usize);
    }
    report
}

/// ND / NLD: the list is sorted ascending by a per-reference value assigned
/// when the block is accessed.
///
/// Ties are broken by a *static* key (the block's first-touch id). A static
/// tie-break matters: on a pure loop every block carries the same NLD, and
/// a stable assignment keeps all of them in place (zero boundary
/// movements), exactly the stability the paper credits NLD and LLD-R with
/// in Figure 3. Breaking ties by recency would silently re-derive the R
/// list inside the ties and destroy that stability.
/// Because every key the list will ever hold is known offline (the trace
/// fixes each reference's value), the sorted key universe is precomputed
/// and the list reduces to a [`KeyedList`]: O(log n) `insert_at_key`,
/// `remove` and rank queries replace the O(D) scans and splices.
fn analyze_keyed(blocks: &[u32], values: &[u64], bounds: &Boundaries) -> SegmentReport {
    let mut report = SegmentReport::new(bounds.segments, bounds.d);
    let mut universe: Vec<(u64, u32)> =
        values.iter().zip(blocks).map(|(&v, &b)| (v, b)).collect();
    universe.sort_unstable();
    universe.dedup();
    let mut list = KeyedList::new(universe.len());
    let mut cur: Vec<usize> = vec![usize::MAX; bounds.d];
    for (i, &b) in blocks.iter().enumerate() {
        report.total_references += 1;
        let idx = universe
            .binary_search(&(values[i], b))
            .expect("every live key is in the universe");
        let old = cur[b as usize];
        if old != usize::MAX {
            let p = list.rank_of_key(old);
            report.reference_counts[bounds.segment_of(p)] += 1;
            if old == idx {
                continue; // value unchanged: the block stays put
            }
            list.remove(old);
            let q = list.rank_of_key(idx);
            list.insert_at_key(idx);
            cur[b as usize] = idx;
            for k in bounds.crossed(p.min(q), p.max(q)) {
                report.boundary_movements[k] += 2;
            }
        } else {
            report.cold_references += 1;
            let n_old = list.len();
            let q = list.rank_of_key(idx);
            list.insert_at_key(idx);
            cur[b as usize] = idx;
            for k in bounds.crossed(q, n_old) {
                report.boundary_movements[k] += 1;
            }
        }
    }
    report
}

/// A sort key of the LLD-R order: `(value, block id)`. Values are
/// `max(LLD, recency)`; the id tie-break is static (see `analyze_keyed`).
type LldKey = (u64, u32);

/// Sentinel above every real key (no block carries id `u32::MAX`).
const KEY_MAX: LldKey = (u64::MAX, u32::MAX);

/// "Never transitions" margin sentinel, far above any reachable value yet
/// safe against the ≤ n range decrements a pass can apply.
const MARGIN_BIG: i64 = i64::MAX / 4;

/// The indexed state of the LLD-R order. Blocks split into two classes:
///
/// * **static** (`LLD ≥ recency`): key = `(LLD, id)`, constant between
///   accesses. All such keys are known offline (each reference `i`
///   installs `(stack distance of i, block)`), so they live in a
///   [`KeyedList`] over a precomputed universe.
/// * **R-dominated** (`recency > LLD`): key = `(recency, id)`. Recencies
///   are pairwise distinct and ordered exactly like the LRU slots of the
///   stamp trick, so a 0/1 Fenwick over slot space (`rmarks`) indexes
///   these keys without ever storing a changing value.
struct LldRIndex<'a> {
    universe: &'a [LldKey],
    skeys: KeyedList,
    /// Slot occupancy of the whole LRU stack; rank below a slot = recency.
    occ: Fenwick,
    /// Marks the slots whose blocks are R-dominated.
    rmarks: Fenwick,
    slot_block: Vec<u32>,
}

impl LldRIndex<'_> {
    /// Present static keys strictly below `key`.
    fn static_less(&self, key: LldKey) -> usize {
        let ub = self.universe.partition_point(|&k| k < key);
        self.skeys.rank_of_key(ub)
    }

    /// R-dominated blocks with recency strictly below `c` (`len` is the
    /// current stack length).
    fn r_pos_below(&self, c: usize, len: usize) -> usize {
        if c == 0 {
            return 0;
        }
        if c >= len {
            return self.rmarks.total() as usize;
        }
        let slot = self.occ.select(c).expect("recency within stack");
        self.rmarks.count_below(slot) as usize
    }

    /// R-dominated blocks with key strictly below `key`.
    fn r_less(&self, key: LldKey, len: usize) -> usize {
        let (kv, kid) = key;
        if kv >= len as u64 {
            return self.rmarks.total() as usize;
        }
        let slot = self.occ.select(kv as usize).expect("recency within stack");
        let mut count = self.rmarks.count_below(slot) as usize;
        // The single possible R block *at* recency `kv`: id tie-break.
        if self.rmarks.get(slot) == 1 && self.slot_block[slot] < kid {
            count += 1;
        }
        count
    }

    /// The `j`-th smallest static key.
    fn static_key_at(&self, j: usize) -> LldKey {
        self.universe[self.skeys.select(j).expect("static rank in range")]
    }

    /// The `j`-th smallest R-dominated key (R keys sort by recency, which
    /// sorts like the slots).
    fn r_key_at(&self, j: usize) -> LldKey {
        let slot = self.rmarks.select(j).expect("R rank in range");
        (self.occ.count_below(slot) as u64, self.slot_block[slot])
    }

    /// The key holding rank `r` of the merged order, or [`KEY_MAX`] when
    /// fewer than `r + 1` blocks are listed. A k-th-of-two-sorted-
    /// sequences binary search over the static side: O(log² D).
    fn merged_select(&self, r: usize) -> LldKey {
        let na = self.skeys.len();
        let nb = self.rmarks.total() as usize;
        if r >= na + nb {
            return KEY_MAX;
        }
        let k = r + 1;
        let (mut lo, mut hi) = (k.saturating_sub(nb), k.min(na));
        while lo < hi {
            let s = lo + (hi - lo) / 2;
            if self.r_key_at(k - s - 1) > self.static_key_at(s) {
                lo = s + 1;
            } else {
                hi = s;
            }
        }
        let s = lo;
        let last_static = if s > 0 { Some(self.static_key_at(s - 1)) } else { None };
        let last_r = if k > s { Some(self.r_key_at(k - s - 1)) } else { None };
        last_static.max(last_r).expect("k >= 1 takes something")
    }

    /// 1 if the block at *new* recency `w` is R-dominated and moved from
    /// below `theta_old` to below `theta_new` (or vice versa is handled by
    /// the caller's symmetric-difference algebra): evaluates the full
    /// drifted predicate `(w-1, y) < θ_old && (w, y) < θ_new`.
    fn drifted_in_both(
        &self,
        w: u64,
        p_eff: usize,
        len: usize,
        theta_old: LldKey,
        theta_new: LldKey,
    ) -> usize {
        if w == 0 || w > p_eff as u64 || w >= len as u64 {
            return 0;
        }
        let slot = self.occ.select(w as usize).expect("recency within stack");
        if self.rmarks.get(slot) != 1 {
            return 0;
        }
        let y = self.slot_block[slot];
        usize::from((w - 1, y) < theta_old && (w, y) < theta_new)
    }
}

/// LLD-R: value = max(LLD, R). The naive form re-sorts all D blocks per
/// reference (`reference::analyze_slow`); here each reference costs
/// O(log² D) by counting, per segment boundary, how the boundary's
/// *head set* changed.
///
/// A block crosses boundary rank `r` exactly when its membership in the
/// head set H(r) = { blocks with rank < r } changes, so the crossings a
/// reference causes are |H_old Δ H_new| = |H_old| + |H_new| − 2·|H_old ∩
/// H_new| (new blocks' first appearance excluded, as the naive settle
/// skips blocks without a previous rank). Per reference only one block
/// moves freely (the accessed one); every other block either keeps its
/// key (static), drifts by exactly +1 (R-dominated blocks above the
/// access point), or makes its one static→R transition — so each
/// intersection term is an O(log) Fenwick interval count, with at most
/// two boundary blocks checked individually. Transitions are harvested
/// from a lazy min-tree over the margins `LLD − recency` and amortize to
/// O(1) per reference.
fn analyze_lld_r(blocks: &[u32], bounds: &Boundaries) -> SegmentReport {
    let n = blocks.len();
    let d = bounds.d;
    let mut report = SegmentReport::new(bounds.segments, d);

    // Offline: the static key installed by each reference is its LRU
    // stack distance (INFINITE on first access) — the whole static key
    // universe is known before the pass starts.
    let dist = lru_stack_distances(blocks);
    let vals: Vec<u64> = dist
        .iter()
        .map(|o| o.map_or(INFINITE, |p| p as u64))
        .collect();
    let mut universe: Vec<LldKey> = vals.iter().zip(blocks).map(|(&v, &b)| (v, b)).collect();
    universe.sort_unstable();
    universe.dedup();
    let key_idx: Vec<usize> = (0..n)
        .map(|i| {
            universe
                .binary_search(&(vals[i], blocks[i]))
                .expect("own key is in the universe")
        })
        .collect();

    let cap = n + 2;
    let mut st = LldRIndex {
        universe: &universe,
        skeys: KeyedList::new(universe.len()),
        occ: Fenwick::new(cap),
        rmarks: Fenwick::new(cap),
        slot_block: vec![u32::MAX; cap],
    };
    // Margin LLD − recency per slot; a slot dropping below zero is a
    // static block whose recency just overtook its LLD.
    let mut margin = LazyMinTree::new(cap, MARGIN_BIG);
    let mut next_slot = cap;
    let mut len = 0usize;

    let mut slot = vec![usize::MAX; d];
    let mut lld = vec![INFINITE; d];
    let mut sidx = vec![usize::MAX; d];
    let mut is_r = vec![false; d];

    let sat = |v: u64| -> i64 {
        if v >= MARGIN_BIG as u64 {
            MARGIN_BIG
        } else {
            v as i64
        }
    };

    let nb = bounds.ranks.len();
    let mut theta_old: Vec<LldKey> = vec![KEY_MAX; nb];

    for (i, &b) in blocks.iter().enumerate() {
        let bu = b as usize;
        report.total_references += 1;
        let hit = slot[bu] != usize::MAX;
        let n_old = len;

        // Old-order reads, before any mutation.
        let (p_eff, old_key_x, x_was_r) = if hit {
            let sl = slot[bu];
            let p = st.occ.count_below(sl) as usize;
            debug_assert_eq!(vals[i], p as u64, "offline distance == online recency");
            let okey = (lld[bu].max(p as u64), b);
            let rank_old = st.static_less(okey) + st.r_less(okey, n_old);
            report.reference_counts[bounds.segment_of(rank_old)] += 1;
            (p, okey, is_r[bu])
        } else {
            report.cold_references += 1;
            (n_old, KEY_MAX, false)
        };
        let new_val = if hit { p_eff as u64 } else { INFINITE };
        let new_key_x: LldKey = (new_val, b);

        // Fast path: the accessed block keeps its key and nothing ahead
        // of it is R-dominated or about to transition — the whole order
        // is unchanged, so no boundary is crossed and every θ stands.
        if hit {
            let sl = slot[bu];
            if old_key_x == new_key_x
                && st.rmarks.count_below(sl) == 0
                && (sl == 0 || margin.min_range(0, sl) >= 1)
            {
                st.occ.add(sl, -1);
                st.slot_block[sl] = u32::MAX;
                margin.set(sl, MARGIN_BIG);
                if x_was_r {
                    st.rmarks.add(sl, -1);
                    is_r[bu] = false;
                    st.skeys.insert_at_key(key_idx[i]);
                }
                margin.add_range(0, sl, -1);
                next_slot -= 1;
                let ns = next_slot;
                st.occ.add(ns, 1);
                st.slot_block[ns] = b;
                slot[bu] = ns;
                lld[bu] = new_val;
                sidx[bu] = key_idx[i];
                margin.set(ns, sat(new_val));
                continue;
            }
        }

        // Slow path. 1) Take the accessed block off the stack.
        if hit {
            let sl = slot[bu];
            st.occ.add(sl, -1);
            st.slot_block[sl] = u32::MAX;
            margin.set(sl, MARGIN_BIG);
            if x_was_r {
                st.rmarks.add(sl, -1);
                is_r[bu] = false;
            } else {
                st.skeys.remove(sidx[bu]);
            }
        }
        // 2) Drift: every block ahead of the access point gains one
        // recency (all blocks, on a miss).
        let drift_to = if hit { slot[bu] } else { cap };
        margin.add_range(0, drift_to, -1);
        // 3) Harvest static→R transitions (≤ n + d over the whole pass).
        while margin.min_all() < 0 {
            let (m, s) = margin.argmin();
            debug_assert_eq!(m, -1, "margins sink one step at a time");
            let y = st.slot_block[s] as usize;
            st.skeys.remove(sidx[y]);
            sidx[y] = usize::MAX;
            is_r[y] = true;
            st.rmarks.add(s, 1);
            margin.set(s, MARGIN_BIG);
        }
        // 4) Re-insert the accessed block on top, always static.
        next_slot -= 1;
        let ns = next_slot;
        st.occ.add(ns, 1);
        st.slot_block[ns] = b;
        slot[bu] = ns;
        lld[bu] = new_val;
        st.skeys.insert_at_key(key_idx[i]);
        sidx[bu] = key_idx[i];
        margin.set(ns, sat(new_val));
        let n_new = if hit { n_old } else { n_old + 1 };
        len = n_new;

        // 5) Per boundary: crossings = |H_old Δ H_new|.
        for (k, &r) in bounds.ranks.iter().enumerate() {
            let t_old = theta_old[k];
            let t_new = st.merged_select(r);
            let h_old = r.min(n_old) as i64;
            let h_new = r.min(n_new) as i64;
            let min_t = t_old.min(t_new);

            // Static blocks (key unchanged): below both thresholds.
            let mut inter = st.static_less(min_t) as i64;
            if new_key_x < min_t {
                inter -= 1; // the accessed block is handled individually
            }
            // Drifted R blocks, new recency w ∈ [1, p_eff]: old key
            // (w−1, y), new key (w, y). Bulk below both value cutoffs,
            // plus at most two tie-break candidates at the cutoffs.
            let w_hi = (p_eff as u64 + 1)
                .min(t_old.0.saturating_add(1))
                .min(t_new.0);
            let bulk_hi = w_hi.min(n_new as u64) as usize;
            inter += st.r_pos_below(bulk_hi, n_new) as i64;
            let w1 = t_old.0.saturating_add(1);
            let w2 = t_new.0;
            inter += st.drifted_in_both(w1, p_eff, n_new, t_old, t_new) as i64;
            if w2 != w1 {
                inter += st.drifted_in_both(w2, p_eff, n_new, t_old, t_new) as i64;
            }
            // Undrifted R blocks (recency > p_eff): key unchanged.
            if min_t.0 > p_eff as u64 {
                inter += st.r_less(min_t, n_new) as i64
                    - st.r_pos_below((p_eff + 1).min(n_new + 1), n_new) as i64;
            }
            // The accessed block itself.
            if hit && old_key_x < t_old && new_key_x < t_new {
                inter += 1;
            }

            let mut delta = h_old + h_new - 2 * inter;
            if !hit && new_key_x < t_new {
                delta -= 1; // first appearance: the naive settle skips it
            }
            debug_assert!(delta >= 0, "symmetric difference cannot be negative");
            report.boundary_movements[k] += delta as u64;
            theta_old[k] = t_new;
        }
    }
    report
}

/// Brute-force reference implementations used to validate the fast ones.
///
/// Per reference, every block's measure value is recomputed from scratch,
/// the whole list is re-sorted with the same tie disciplines as the fast
/// implementations, and crossings are counted from rank differences.
pub mod reference {
    use super::*;

    /// Analyses `trace` under `kind` by brute force. Semantics are
    /// identical to [`analyze`]; cost is O(refs × blocks log blocks).
    pub fn analyze_slow(trace: &Trace, kind: MeasureKind, segments: usize) -> SegmentReport {
        let (blocks, d) = densify(trace);
        let bounds = Boundaries::new(segments, d);
        let nd = next_use_times(&blocks);
        let nld = next_locality_values(&blocks);
        let mut report = SegmentReport::new(segments, d);

        // Per-block state.
        let mut in_list = vec![false; d];
        let mut lru: Vec<u32> = Vec::new();
        let mut lld = vec![INFINITE; d];
        let mut keyed: Vec<(u64, u64)> = vec![(0, 0); d]; // (value, seq) for ND/NLD
        let mut prev_rank: HashMap<u32, usize> = HashMap::new();

        let order_now = |lru: &Vec<u32>, lld: &Vec<u64>, keyed: &Vec<(u64, u64)>| -> Vec<u32> {
            let mut entries: Vec<((u64, u64), u32)> = lru
                .iter()
                .enumerate()
                .map(|(pos, &b)| {
                    let key = match kind {
                        MeasureKind::R => (pos as u64, 0),
                        MeasureKind::Nd | MeasureKind::Nld => keyed[b as usize],
                        MeasureKind::LldR => (lld[b as usize].max(pos as u64), b as u64),
                    };
                    (key, b)
                })
                .collect();
            entries.sort_by_key(|&(k, _)| k);
            entries.into_iter().map(|(_, b)| b).collect()
        };

        let count_crossings =
            |order: &[u32], prev_rank: &mut HashMap<u32, usize>, report: &mut SegmentReport| {
                for (rank, &b) in order.iter().enumerate() {
                    if let Some(&old) = prev_rank.get(&b) {
                        if old != rank {
                            for k in bounds.crossed(old, rank) {
                                report.boundary_movements[k] += 1;
                            }
                        }
                    }
                    prev_rank.insert(b, rank);
                }
            };

        for (i, &b) in blocks.iter().enumerate() {
            let order = order_now(&lru, &lld, &keyed);
            count_crossings(&order, &mut prev_rank, &mut report);
            report.total_references += 1;
            let rank = order.iter().position(|&x| x == b);
            match rank {
                Some(r) if in_list[b as usize] => {
                    report.reference_counts[bounds.segment_of(r)] += 1;
                }
                _ => report.cold_references += 1,
            }
            // Update state exactly as the fast implementations do.
            let pos = lru.iter().position(|&x| x == b);
            lld[b as usize] = pos.map_or(INFINITE, |p| p as u64);
            if let Some(p) = pos {
                lru.remove(p);
            }
            lru.insert(0, b);
            in_list[b as usize] = true;
            let value = match kind {
                MeasureKind::Nd => nd[i],
                MeasureKind::Nld => nld[i],
                _ => 0,
            };
            keyed[b as usize] = (value, b as u64);
        }
        let order = order_now(&lru, &lld, &keyed);
        count_crossings(&order, &mut prev_rank, &mut report);
        report
    }
}

/// The per-reference recencies of a trace — a convenience re-export used by
/// examples: `recencies(trace)[i]` is the LRU stack distance of reference
/// `i`, or `None` on first access.
pub fn recencies(trace: &Trace) -> Vec<Option<usize>> {
    let (blocks, _) = densify(trace);
    lru_stack_distances(&blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulc_trace::synthetic;

    fn tiny_trace() -> Trace {
        // Deterministic mix over 12 blocks (>= 10 segments needed).
        let ids: Vec<u64> = vec![
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 1, 2, 0, 1, 5, 9, 11, 3, 3, 7, 0, 4, 8, 2,
            6, 10, 1, 0, 5,
        ];
        Trace::from_blocks(ids.into_iter().map(ulc_trace::BlockId::new))
    }

    #[test]
    fn boundaries_partition_ranks() {
        let b = Boundaries::new(10, 100);
        assert_eq!(b.segment_of(0), 0);
        assert_eq!(b.segment_of(9), 0);
        assert_eq!(b.segment_of(10), 1);
        assert_eq!(b.segment_of(99), 9);
        assert_eq!(b.segment_of(150), 9); // clamped
        assert_eq!(b.ranks, vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn crossed_ranges() {
        let b = Boundaries::new(10, 100);
        assert_eq!(b.crossed(0, 5), 0..0);
        assert_eq!(b.crossed(0, 10), 0..1);
        assert_eq!(b.crossed(5, 25), 0..2);
        assert_eq!(b.crossed(25, 5), 0..2); // symmetric
        assert!(b.crossed(10, 10).is_empty());
        assert!(b.crossed(95, 99).is_empty());
    }

    #[test]
    fn parallel_analyze_all_matches_sequential() {
        let t = synthetic::zipf_small(4_000);
        assert_eq!(analyze_all_parallel(&t, 10), analyze_all(&t, 10));
    }

    #[test]
    fn fast_matches_slow_on_tiny_trace() {
        let t = tiny_trace();
        for kind in MeasureKind::ALL {
            let fast = analyze(&t, kind, 4);
            let slow = reference::analyze_slow(&t, kind, 4);
            assert_eq!(fast, slow, "measure {kind}");
        }
    }

    #[test]
    fn fast_matches_slow_on_small_synthetic_traces() {
        let traces = vec![
            ("loop", synthetic::cs(600)),
            ("zipf", synthetic::zipf_small(600)),
            ("sprite", synthetic::sprite(600)),
        ];
        for (name, t) in traces {
            for kind in MeasureKind::ALL {
                let fast = analyze(&t, kind, 10);
                let slow = reference::analyze_slow(&t, kind, 10);
                assert_eq!(fast, slow, "{name} under {kind}");
            }
        }
    }

    #[test]
    fn totals_are_conserved() {
        let t = synthetic::multi_small(3_000);
        for kind in MeasureKind::ALL {
            let r = analyze(&t, kind, 10);
            let seg_total: u64 = r.reference_counts.iter().sum();
            assert_eq!(seg_total + r.cold_references, r.total_references);
            assert_eq!(r.total_references, 3_000);
        }
    }

    #[test]
    fn nd_is_optimal_on_a_loop() {
        // On a pure loop ND concentrates hits in the head segments and R
        // pushes everything to the tail (§2.2 observation 1).
        let t = synthetic::cs(6 * synthetic::CS_BLOCKS as usize);
        let nd = analyze(&t, MeasureKind::Nd, 10);
        let r = analyze(&t, MeasureKind::R, 10);
        let nd_head: f64 = nd.cumulative_ratios()[4];
        let r_head: f64 = r.cumulative_ratios()[4];
        assert!(
            nd_head > 0.4,
            "ND head share = {nd_head}; should capture loop hits early"
        );
        // A pure loop re-references at recency D-1: all R hits in the last
        // segment.
        assert!(r_head < 0.01, "R head share = {r_head}");
        assert!(r.reference_ratios()[9] > 0.5);
    }

    #[test]
    fn lld_r_is_stabler_than_r_on_a_loop() {
        let t = synthetic::glimpse(30_000);
        let r = analyze(&t, MeasureKind::R, 10);
        let lld_r = analyze(&t, MeasureKind::LldR, 10);
        assert!(
            lld_r.mean_movement_ratio() < r.mean_movement_ratio() / 2.0,
            "LLD-R {} vs R {}",
            lld_r.mean_movement_ratio(),
            r.mean_movement_ratio()
        );
    }

    #[test]
    fn r_wins_head_share_on_lru_friendly_trace() {
        let t = synthetic::sprite(20_000);
        let r = analyze(&t, MeasureKind::R, 10);
        let ratios = r.reference_ratios();
        // Temporally-clustered: hits decay monotonically with recency.
        assert!(ratios[0] > 0.3, "sprite under R: head = {}", ratios[0]);
        assert!(ratios[0] > 5.0 * ratios[5], "ratios = {ratios:?}");
        for w in ratios.windows(2) {
            assert!(w[0] >= w[1], "ratios should decay: {ratios:?}");
        }
    }

    #[test]
    fn analyze_all_returns_four_reports() {
        let t = tiny_trace();
        let all = analyze_all(&t, 4);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].0, MeasureKind::Nd);
    }

    #[test]
    fn recencies_of_repeat() {
        let t = Trace::from_blocks([1u64, 1].map(ulc_trace::BlockId::new));
        assert_eq!(recencies(&t), vec![None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "at least as many blocks")]
    fn too_few_blocks_rejected() {
        let t = Trace::from_blocks([1u64, 2].map(ulc_trace::BlockId::new));
        let _ = analyze(&t, MeasureKind::R, 10);
    }

    #[test]
    fn lld_r_value_uses_max_of_lld_and_recency() {
        // Block 0 is accessed at recency 2 (LLD = 2). After 3 more distinct
        // accesses its recency exceeds LLD, so its LLD-R grows with R:
        // under pure LLD it would stay put; the measured movement at the
        // deep boundaries shows it moved.
        let ids: Vec<u64> = vec![0, 1, 2, 0, 3, 4, 5, 6, 7, 8, 9, 10, 11, 1];
        let t = Trace::from_blocks(ids.into_iter().map(ulc_trace::BlockId::new));
        let fast = analyze(&t, MeasureKind::LldR, 4);
        let slow = reference::analyze_slow(&t, MeasureKind::LldR, 4);
        assert_eq!(fast, slow);
    }
}
