//! Trace analysis under the four measures — the engine behind Figures 2
//! and 3.
//!
//! For each measure an ascending ordered list of the accessed blocks is
//! maintained across the trace. Per reference we record which decile
//! *segment* of the list the block was found in (Figure 2) and how many
//! blocks crossed each segment boundary as the list was updated (Figure 3).
//!
//! The list is segmented against the trace's *full* length (total distinct
//! blocks), so segment boundaries are fixed rank positions. A boundary
//! crossing is counted once per block per reference whenever the block's
//! rank moves from one side of the boundary to the other.

use crate::{MeasureKind, SegmentReport, INFINITE};
use std::collections::HashMap;
use ulc_cache::{lru_stack_distances, next_use_times};
use ulc_trace::Trace;

/// Fixed rank boundaries for `segments` segments over `d` blocks.
#[derive(Clone, Debug)]
pub(crate) struct Boundaries {
    ranks: Vec<usize>,
    segments: usize,
    d: usize,
}

impl Boundaries {
    pub(crate) fn new(segments: usize, d: usize) -> Self {
        assert!(segments >= 2, "need at least two segments");
        assert!(
            d >= segments,
            "trace must touch at least as many blocks as there are segments"
        );
        Boundaries {
            ranks: (0..segments - 1)
                .map(|k| ((k + 1) * d).div_ceil(segments))
                .collect(),
            segments,
            d,
        }
    }

    /// Which segment a list rank falls into.
    pub(crate) fn segment_of(&self, rank: usize) -> usize {
        (rank * self.segments / self.d).min(self.segments - 1)
    }

    /// Indices of the boundaries strictly between ranks `a` and `b`
    /// (crossed by a block moving from rank `a` to rank `b`).
    pub(crate) fn crossed(&self, a: usize, b: usize) -> std::ops::Range<usize> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let start = self.ranks.partition_point(|&r| r <= lo);
        let end = self.ranks.partition_point(|&r| r <= hi);
        start..end
    }
}

/// Densely renumbers the blocks of a trace for fast array indexing.
fn densify(trace: &Trace) -> (Vec<u32>, usize) {
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut out = Vec::with_capacity(trace.len());
    for r in trace {
        let next_id = ids.len() as u32;
        out.push(*ids.entry(r.block.raw()).or_insert(next_id));
    }
    let d = ids.len();
    (out, d)
}

/// Analyses `trace` under `kind` with `segments` list segments (the paper
/// uses 10).
///
/// # Panics
///
/// Panics if the trace touches fewer distinct blocks than `segments`.
///
/// # Examples
///
/// ```
/// use ulc_measures::{analyze, MeasureKind};
/// use ulc_trace::synthetic;
///
/// let trace = synthetic::sprite(20_000);
/// let report = analyze(&trace, MeasureKind::R, 10);
/// // sprite is LRU-friendly: recency concentrates hits in the head.
/// assert!(report.reference_ratios()[0] > 0.3);
/// assert!(report.cumulative_ratios()[2] > 0.6);
/// ```
pub fn analyze(trace: &Trace, kind: MeasureKind, segments: usize) -> SegmentReport {
    let (blocks, d) = densify(trace);
    let bounds = Boundaries::new(segments, d);
    match kind {
        MeasureKind::R => analyze_recency(&blocks, &bounds),
        MeasureKind::Nd => {
            let next = next_use_times(&blocks);
            analyze_keyed(&blocks, &next, &bounds)
        }
        MeasureKind::Nld => {
            let nld: Vec<u64> = next_locality_values(&blocks);
            analyze_keyed(&blocks, &nld, &bounds)
        }
        MeasureKind::LldR => analyze_lld_r(&blocks, &bounds),
    }
}

/// Analyses `trace` under all four measures.
pub fn analyze_all(trace: &Trace, segments: usize) -> Vec<(MeasureKind, SegmentReport)> {
    MeasureKind::ALL
        .iter()
        .map(|&m| (m, analyze(trace, m, segments)))
        .collect()
}

/// NLD value of each reference: the recency at which the block will be
/// referenced next time, or [`INFINITE`].
fn next_locality_values(blocks: &[u32]) -> Vec<u64> {
    ulc_cache::next_locality_distances(blocks)
        .into_iter()
        .map(|o| o.map_or(INFINITE, |v| v as u64))
        .collect()
}

/// R: the list is the LRU stack itself.
fn analyze_recency(blocks: &[u32], bounds: &Boundaries) -> SegmentReport {
    let mut report = SegmentReport::new(bounds.segments, bounds.d);
    let mut list: Vec<u32> = Vec::with_capacity(bounds.d);
    for &b in blocks {
        report.total_references += 1;
        match list.iter().position(|&x| x == b) {
            Some(p) => {
                report.reference_counts[bounds.segment_of(p)] += 1;
                list.remove(p);
                // Mover and one shifted block cross each boundary in (0, p].
                for k in bounds.crossed(0, p) {
                    report.boundary_movements[k] += 2;
                }
                list.insert(0, b);
            }
            None => {
                report.cold_references += 1;
                // Every resident block shifts down by one; one block
                // crosses each boundary ≤ old length.
                let n_old = list.len();
                for k in bounds.crossed(0, n_old) {
                    report.boundary_movements[k] += 1;
                }
                list.insert(0, b);
            }
        }
    }
    report
}

/// ND / NLD: the list is sorted ascending by a per-reference value assigned
/// when the block is accessed.
///
/// Ties are broken by a *static* key (the block's first-touch id). A static
/// tie-break matters: on a pure loop every block carries the same NLD, and
/// a stable assignment keeps all of them in place (zero boundary
/// movements), exactly the stability the paper credits NLD and LLD-R with
/// in Figure 3. Breaking ties by recency would silently re-derive the R
/// list inside the ties and destroy that stability.
fn analyze_keyed(blocks: &[u32], values: &[u64], bounds: &Boundaries) -> SegmentReport {
    let mut report = SegmentReport::new(bounds.segments, bounds.d);
    let mut list: Vec<(u32, (u64, u32))> = Vec::with_capacity(bounds.d);
    for (i, &b) in blocks.iter().enumerate() {
        report.total_references += 1;
        let key = (values[i], b);
        match list.iter().position(|&(x, _)| x == b) {
            Some(p) => {
                report.reference_counts[bounds.segment_of(p)] += 1;
                let old_key = list[p].1;
                if old_key == key {
                    continue; // value unchanged: the block stays put
                }
                list.remove(p);
                let q = list.partition_point(|&(_, k)| k < key);
                list.insert(q, (b, key));
                for k in bounds.crossed(p.min(q), p.max(q)) {
                    report.boundary_movements[k] += 2;
                }
            }
            None => {
                report.cold_references += 1;
                let n_old = list.len();
                let q = list.partition_point(|&(_, k)| k < key);
                list.insert(q, (b, key));
                for k in bounds.crossed(q, n_old) {
                    report.boundary_movements[k] += 1;
                }
            }
        }
    }
    report
}

/// LLD-R: value = max(LLD, R). Recency changes continuously, so the order
/// is re-derived per reference as a pure function of the current state —
/// ascending by value with ties broken by static block id (see
/// `analyze_keyed` for why ties must be static) — and crossings are counted
/// from rank differences.
fn analyze_lld_r(blocks: &[u32], bounds: &Boundaries) -> SegmentReport {
    let mut report = SegmentReport::new(bounds.segments, bounds.d);
    let mut lru: Vec<u32> = Vec::with_capacity(bounds.d);
    let mut lld: Vec<u64> = vec![INFINITE; bounds.d];
    let mut prev_rank: Vec<u32> = vec![u32::MAX; bounds.d];
    let mut order: Vec<(u64, u32)> = Vec::with_capacity(bounds.d);
    let mut rank_of: Vec<u32> = vec![u32::MAX; bounds.d];

    let settle = |lru: &Vec<u32>,
                      lld: &Vec<u64>,
                      prev_rank: &mut Vec<u32>,
                      order: &mut Vec<(u64, u32)>,
                      rank_of: &mut Vec<u32>,
                      report: &mut SegmentReport| {
        order.clear();
        for (pos, &b) in lru.iter().enumerate() {
            order.push((lld[b as usize].max(pos as u64), b));
        }
        // Equal values keep their static id order: ties never reshuffle.
        order.sort_unstable();
        for (rank, &(_, b)) in order.iter().enumerate() {
            rank_of[b as usize] = rank as u32;
            let old = prev_rank[b as usize];
            if old != u32::MAX && old != rank as u32 {
                for k in bounds.crossed(old as usize, rank) {
                    report.boundary_movements[k] += 1;
                }
            }
            prev_rank[b as usize] = rank as u32;
        }
    };

    for &b in blocks {
        // Order *before* this reference: the segment the reference hits,
        // and the crossings caused by the previous reference.
        settle(&lru, &lld, &mut prev_rank, &mut order, &mut rank_of, &mut report);
        report.total_references += 1;
        match lru.iter().position(|&x| x == b) {
            Some(p) => {
                report.reference_counts[bounds.segment_of(rank_of[b as usize] as usize)] += 1;
                lld[b as usize] = p as u64;
                lru.remove(p);
            }
            None => {
                report.cold_references += 1;
                lld[b as usize] = INFINITE;
            }
        }
        lru.insert(0, b);
    }
    // Account for the final reference's crossings.
    settle(&lru, &lld, &mut prev_rank, &mut order, &mut rank_of, &mut report);
    report
}

/// Brute-force reference implementations used to validate the fast ones.
///
/// Per reference, every block's measure value is recomputed from scratch,
/// the whole list is re-sorted with the same tie disciplines as the fast
/// implementations, and crossings are counted from rank differences.
pub mod reference {
    use super::*;

    /// Analyses `trace` under `kind` by brute force. Semantics are
    /// identical to [`analyze`]; cost is O(refs × blocks log blocks).
    pub fn analyze_slow(trace: &Trace, kind: MeasureKind, segments: usize) -> SegmentReport {
        let (blocks, d) = densify(trace);
        let bounds = Boundaries::new(segments, d);
        let nd = next_use_times(&blocks);
        let nld = next_locality_values(&blocks);
        let mut report = SegmentReport::new(segments, d);

        // Per-block state.
        let mut in_list = vec![false; d];
        let mut lru: Vec<u32> = Vec::new();
        let mut lld = vec![INFINITE; d];
        let mut keyed: Vec<(u64, u64)> = vec![(0, 0); d]; // (value, seq) for ND/NLD
        let mut prev_rank: HashMap<u32, usize> = HashMap::new();

        let order_now = |lru: &Vec<u32>, lld: &Vec<u64>, keyed: &Vec<(u64, u64)>| -> Vec<u32> {
            let mut entries: Vec<((u64, u64), u32)> = lru
                .iter()
                .enumerate()
                .map(|(pos, &b)| {
                    let key = match kind {
                        MeasureKind::R => (pos as u64, 0),
                        MeasureKind::Nd | MeasureKind::Nld => keyed[b as usize],
                        MeasureKind::LldR => (lld[b as usize].max(pos as u64), b as u64),
                    };
                    (key, b)
                })
                .collect();
            entries.sort_by_key(|&(k, _)| k);
            entries.into_iter().map(|(_, b)| b).collect()
        };

        let count_crossings =
            |order: &[u32], prev_rank: &mut HashMap<u32, usize>, report: &mut SegmentReport| {
                for (rank, &b) in order.iter().enumerate() {
                    if let Some(&old) = prev_rank.get(&b) {
                        if old != rank {
                            for k in bounds.crossed(old, rank) {
                                report.boundary_movements[k] += 1;
                            }
                        }
                    }
                    prev_rank.insert(b, rank);
                }
            };

        for (i, &b) in blocks.iter().enumerate() {
            let order = order_now(&lru, &lld, &keyed);
            count_crossings(&order, &mut prev_rank, &mut report);
            report.total_references += 1;
            let rank = order.iter().position(|&x| x == b);
            match rank {
                Some(r) if in_list[b as usize] => {
                    report.reference_counts[bounds.segment_of(r)] += 1;
                }
                _ => report.cold_references += 1,
            }
            // Update state exactly as the fast implementations do.
            let pos = lru.iter().position(|&x| x == b);
            lld[b as usize] = pos.map_or(INFINITE, |p| p as u64);
            if let Some(p) = pos {
                lru.remove(p);
            }
            lru.insert(0, b);
            in_list[b as usize] = true;
            let value = match kind {
                MeasureKind::Nd => nd[i],
                MeasureKind::Nld => nld[i],
                _ => 0,
            };
            keyed[b as usize] = (value, b as u64);
        }
        let order = order_now(&lru, &lld, &keyed);
        count_crossings(&order, &mut prev_rank, &mut report);
        report
    }
}

/// The per-reference recencies of a trace — a convenience re-export used by
/// examples: `recencies(trace)[i]` is the LRU stack distance of reference
/// `i`, or `None` on first access.
pub fn recencies(trace: &Trace) -> Vec<Option<usize>> {
    let (blocks, _) = densify(trace);
    lru_stack_distances(&blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulc_trace::synthetic;

    fn tiny_trace() -> Trace {
        // Deterministic mix over 12 blocks (>= 10 segments needed).
        let ids: Vec<u64> = vec![
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0, 1, 2, 0, 1, 5, 9, 11, 3, 3, 7, 0, 4, 8, 2,
            6, 10, 1, 0, 5,
        ];
        Trace::from_blocks(ids.into_iter().map(ulc_trace::BlockId::new))
    }

    #[test]
    fn boundaries_partition_ranks() {
        let b = Boundaries::new(10, 100);
        assert_eq!(b.segment_of(0), 0);
        assert_eq!(b.segment_of(9), 0);
        assert_eq!(b.segment_of(10), 1);
        assert_eq!(b.segment_of(99), 9);
        assert_eq!(b.segment_of(150), 9); // clamped
        assert_eq!(b.ranks, vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn crossed_ranges() {
        let b = Boundaries::new(10, 100);
        assert_eq!(b.crossed(0, 5), 0..0);
        assert_eq!(b.crossed(0, 10), 0..1);
        assert_eq!(b.crossed(5, 25), 0..2);
        assert_eq!(b.crossed(25, 5), 0..2); // symmetric
        assert!(b.crossed(10, 10).is_empty());
        assert!(b.crossed(95, 99).is_empty());
    }

    #[test]
    fn fast_matches_slow_on_tiny_trace() {
        let t = tiny_trace();
        for kind in MeasureKind::ALL {
            let fast = analyze(&t, kind, 4);
            let slow = reference::analyze_slow(&t, kind, 4);
            assert_eq!(fast, slow, "measure {kind}");
        }
    }

    #[test]
    fn fast_matches_slow_on_small_synthetic_traces() {
        let traces = vec![
            ("loop", synthetic::cs(600)),
            ("zipf", synthetic::zipf_small(600)),
            ("sprite", synthetic::sprite(600)),
        ];
        for (name, t) in traces {
            for kind in MeasureKind::ALL {
                let fast = analyze(&t, kind, 10);
                let slow = reference::analyze_slow(&t, kind, 10);
                assert_eq!(fast, slow, "{name} under {kind}");
            }
        }
    }

    #[test]
    fn totals_are_conserved() {
        let t = synthetic::multi_small(3_000);
        for kind in MeasureKind::ALL {
            let r = analyze(&t, kind, 10);
            let seg_total: u64 = r.reference_counts.iter().sum();
            assert_eq!(seg_total + r.cold_references, r.total_references);
            assert_eq!(r.total_references, 3_000);
        }
    }

    #[test]
    fn nd_is_optimal_on_a_loop() {
        // On a pure loop ND concentrates hits in the head segments and R
        // pushes everything to the tail (§2.2 observation 1).
        let t = synthetic::cs(6 * synthetic::CS_BLOCKS as usize);
        let nd = analyze(&t, MeasureKind::Nd, 10);
        let r = analyze(&t, MeasureKind::R, 10);
        let nd_head: f64 = nd.cumulative_ratios()[4];
        let r_head: f64 = r.cumulative_ratios()[4];
        assert!(
            nd_head > 0.4,
            "ND head share = {nd_head}; should capture loop hits early"
        );
        // A pure loop re-references at recency D-1: all R hits in the last
        // segment.
        assert!(r_head < 0.01, "R head share = {r_head}");
        assert!(r.reference_ratios()[9] > 0.5);
    }

    #[test]
    fn lld_r_is_stabler_than_r_on_a_loop() {
        let t = synthetic::glimpse(30_000);
        let r = analyze(&t, MeasureKind::R, 10);
        let lld_r = analyze(&t, MeasureKind::LldR, 10);
        assert!(
            lld_r.mean_movement_ratio() < r.mean_movement_ratio() / 2.0,
            "LLD-R {} vs R {}",
            lld_r.mean_movement_ratio(),
            r.mean_movement_ratio()
        );
    }

    #[test]
    fn r_wins_head_share_on_lru_friendly_trace() {
        let t = synthetic::sprite(20_000);
        let r = analyze(&t, MeasureKind::R, 10);
        let ratios = r.reference_ratios();
        // Temporally-clustered: hits decay monotonically with recency.
        assert!(ratios[0] > 0.3, "sprite under R: head = {}", ratios[0]);
        assert!(ratios[0] > 5.0 * ratios[5], "ratios = {ratios:?}");
        for w in ratios.windows(2) {
            assert!(w[0] >= w[1], "ratios should decay: {ratios:?}");
        }
    }

    #[test]
    fn analyze_all_returns_four_reports() {
        let t = tiny_trace();
        let all = analyze_all(&t, 4);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].0, MeasureKind::Nd);
    }

    #[test]
    fn recencies_of_repeat() {
        let t = Trace::from_blocks([1u64, 1].map(ulc_trace::BlockId::new));
        assert_eq!(recencies(&t), vec![None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "at least as many blocks")]
    fn too_few_blocks_rejected() {
        let t = Trace::from_blocks([1u64, 2].map(ulc_trace::BlockId::new));
        let _ = analyze(&t, MeasureKind::R, 10);
    }

    #[test]
    fn lld_r_value_uses_max_of_lld_and_recency() {
        // Block 0 is accessed at recency 2 (LLD = 2). After 3 more distinct
        // accesses its recency exceeds LLD, so its LLD-R grows with R:
        // under pure LLD it would stay put; the measured movement at the
        // deep boundaries shows it moved.
        let ids: Vec<u64> = vec![0, 1, 2, 0, 3, 4, 5, 6, 7, 8, 9, 10, 11, 1];
        let t = Trace::from_blocks(ids.into_iter().map(ulc_trace::BlockId::new));
        let fast = analyze(&t, MeasureKind::LldR, 4);
        let slow = reference::analyze_slow(&t, MeasureKind::LldR, 4);
        assert_eq!(fast, slow);
    }
}
