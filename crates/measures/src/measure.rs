//! The four locality-strength measures of §2.1.

use std::fmt;

/// Sentinel value for "infinitely far" (no next reference / no history).
pub const INFINITE: u64 = u64::MAX;

/// A criterion for ranking accessed blocks by locality strength (§2.1).
///
/// Each measure orders the accessed blocks ascending; blocks near the head
/// of the list have the strongest locality and belong in the highest cache
/// levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// **ND** — next distance: time until the block's next reference. The
    /// OPT criterion; offline only.
    Nd,
    /// **R** — recency: the block's current LRU stack position. The LRU
    /// criterion; online.
    R,
    /// **NLD** — next locality distance: the recency at which the block
    /// will be referenced next time. Offline only; stable between the
    /// block's own references.
    Nld,
    /// **LLD-R** — max(last locality distance, recency): the online
    /// simulation of NLD that ULC is built on.
    LldR,
}

impl MeasureKind {
    /// All four measures, in the paper's order.
    pub const ALL: [MeasureKind; 4] = [
        MeasureKind::Nd,
        MeasureKind::R,
        MeasureKind::Nld,
        MeasureKind::LldR,
    ];

    /// The paper's name for the measure.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::Nd => "ND",
            MeasureKind::R => "R",
            MeasureKind::Nld => "NLD",
            MeasureKind::LldR => "LLD-R",
        }
    }

    /// Whether the measure can be computed without future knowledge
    /// (Table 1's "on-line measures" row).
    pub fn is_online(self) -> bool {
        matches!(self, MeasureKind::R | MeasureKind::LldR)
    }
}

impl fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = MeasureKind::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["ND", "R", "NLD", "LLD-R"]);
    }

    #[test]
    fn online_measures_are_r_and_lld_r() {
        assert!(!MeasureKind::Nd.is_online());
        assert!(MeasureKind::R.is_online());
        assert!(!MeasureKind::Nld.is_online());
        assert!(MeasureKind::LldR.is_online());
    }

    #[test]
    fn display_matches_name() {
        for m in MeasureKind::ALL {
            assert_eq!(format!("{m}"), m.name());
        }
    }
}
