//! Per-reference measure samples — the data behind Figure 1.
//!
//! Figure 1 of the paper illustrates, on the LRU stack, how a block's
//! **R** grows between its references, how **LLD** freezes the recency of
//! the last access, how **LLD-R** switches from LLD to R once overtaken,
//! and how **ND**/**NLD** describe the future. [`trace_measures`] computes
//! all of them for every reference of a trace, so the interplay can be
//! inspected concretely (see the `fig1` binary).

use crate::INFINITE;
use ulc_cache::{lru_stack_distances, next_use_times, NEVER};
use ulc_trace::{BlockId, Trace};

/// All four §2.1 measures, evaluated at one reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasureSample {
    /// The referenced block.
    pub block: BlockId,
    /// Recency at this reference — the LRU stack distance, [`INFINITE`]
    /// on first access. This is also the block's new **LLD**.
    pub recency: u64,
    /// **LLD-R** evaluated *just before* this reference:
    /// `max(previous LLD, recency)`. [`INFINITE`] on first access.
    pub lld_r: u64,
    /// **ND**: references until the next access to this block,
    /// [`INFINITE`] if never.
    pub next_distance: u64,
    /// **NLD**: recency at which the next access will occur,
    /// [`INFINITE`] if never accessed again.
    pub next_locality_distance: u64,
}

/// Computes a [`MeasureSample`] for every reference of `trace`.
///
/// # Examples
///
/// ```
/// use ulc_measures::{trace_measures, INFINITE};
/// use ulc_trace::{BlockId, Trace};
///
/// let t = Trace::from_blocks([1u64, 2, 1].map(BlockId::new));
/// let s = trace_measures(&t);
/// assert_eq!(s[0].next_distance, 2);      // block 1 re-accessed 2 later
/// assert_eq!(s[0].next_locality_distance, 1); // ... at recency 1
/// assert_eq!(s[2].recency, 1);
/// assert_eq!(s[1].next_distance, INFINITE);
/// ```
pub fn trace_measures(trace: &Trace) -> Vec<MeasureSample> {
    let blocks: Vec<u64> = trace.iter().map(|r| r.block.raw()).collect();
    let recencies = lru_stack_distances(&blocks);
    let nld = ulc_cache::next_locality_distances(&blocks);
    let next = next_use_times(&blocks);
    let mut last_lld: std::collections::HashMap<u64, u64> = Default::default();
    let mut samples = Vec::with_capacity(blocks.len());
    for (i, &b) in blocks.iter().enumerate() {
        let recency = recencies[i].map_or(INFINITE, |r| r as u64);
        let lld_r = match last_lld.get(&b) {
            Some(&prev_lld) => prev_lld.max(recency),
            None => INFINITE,
        };
        samples.push(MeasureSample {
            block: trace.records()[i].block,
            recency,
            lld_r,
            next_distance: match next[i] {
                NEVER => INFINITE,
                j => j - i as u64,
            },
            next_locality_distance: nld[i].map_or(INFINITE, |v| v as u64),
        });
        last_lld.insert(b, recency);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u64]) -> Trace {
        Trace::from_blocks(ids.iter().map(|&i| BlockId::new(i)))
    }

    #[test]
    fn first_access_is_infinite_everywhere_backward() {
        let s = trace_measures(&t(&[7]));
        assert_eq!(s[0].recency, INFINITE);
        assert_eq!(s[0].lld_r, INFINITE);
        assert_eq!(s[0].next_distance, INFINITE);
        assert_eq!(s[0].next_locality_distance, INFINITE);
    }

    #[test]
    fn figure_1_scenario() {
        // Access block 0, then three distinct blocks, then block 0 again:
        // at the re-reference, R has grown to 3; before it, LLD was inf
        // (first access), so LLD-R at the re-reference is max(inf, 3).
        // After it, LLD becomes 3.
        let s = trace_measures(&t(&[0, 1, 2, 3, 0, 4, 0]));
        assert_eq!(s[4].recency, 3);
        assert_eq!(s[4].lld_r, INFINITE, "first re-access: no prior LLD");
        // The final access to 0 happens at recency 1; its LLD-R just
        // before is max(LLD = 3, R = 1) = 3: LLD still dominates.
        assert_eq!(s[6].recency, 1);
        assert_eq!(s[6].lld_r, 3);
    }

    #[test]
    fn lld_r_switches_to_recency_once_overtaken() {
        // Block 0: accessed, re-accessed at recency 1 (LLD = 1), then not
        // touched while 4 distinct blocks pass: at its next access R = 4
        // has overtaken LLD = 1, so LLD-R = 4.
        let s = trace_measures(&t(&[0, 1, 0, 2, 3, 4, 5, 0]));
        assert_eq!(s[2].recency, 1);
        assert_eq!(s[7].recency, 4);
        assert_eq!(s[7].lld_r, 4, "R overtakes the frozen LLD");
    }

    #[test]
    fn nd_and_nld_are_future_measures() {
        let s = trace_measures(&t(&[9, 8, 9, 8]));
        assert_eq!(s[0].next_distance, 2);
        assert_eq!(s[0].next_locality_distance, 1);
        assert_eq!(s[2].next_distance, INFINITE);
    }

    #[test]
    fn loop_has_constant_measures_in_steady_state() {
        let ids: Vec<u64> = (0..5).cycle().take(25).collect();
        let s = trace_measures(&t(&ids));
        for sample in &s[5..20] {
            assert_eq!(sample.recency, 4);
            assert_eq!(sample.next_distance, 5);
            assert_eq!(sample.next_locality_distance, 4);
        }
        // And LLD-R is stable at 4 from the second re-reference on.
        for sample in &s[10..20] {
            assert_eq!(sample.lld_r, 4);
        }
    }
}
