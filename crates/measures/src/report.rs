//! Segment statistics reported by a measure analysis.

use std::fmt;

/// Per-segment reference and movement statistics for one locality measure
/// on one trace — the data behind Figures 2 and 3 of the paper.
///
/// The ordered list of accessed blocks is divided into `segments` equal
/// parts (the paper uses 10). `reference_counts[s]` is the number of
/// references that found their block in segment `s`;
/// `boundary_movements[k]` is the number of times any block crossed the
/// boundary between segments `k` and `k+1` as the list was updated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentReport {
    /// Number of segments the list was divided into.
    pub segments: usize,
    /// References that hit each segment (`segments` entries).
    pub reference_counts: Vec<u64>,
    /// Block movements across each boundary (`segments - 1` entries).
    pub boundary_movements: Vec<u64>,
    /// References to blocks not yet in the list (first accesses).
    pub cold_references: u64,
    /// Total references analysed.
    pub total_references: u64,
    /// Distinct blocks (= full list length used for segmentation).
    pub distinct_blocks: usize,
}

impl SegmentReport {
    /// Creates an empty report for `segments` segments over
    /// `distinct_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `segments < 2`.
    pub fn new(segments: usize, distinct_blocks: usize) -> Self {
        assert!(segments >= 2, "need at least two segments");
        SegmentReport {
            segments,
            reference_counts: vec![0; segments],
            boundary_movements: vec![0; segments - 1],
            cold_references: 0,
            total_references: 0,
            distinct_blocks,
        }
    }

    /// Figure 2's y-axis: per-segment reference ratios (hits in the segment
    /// over all references).
    pub fn reference_ratios(&self) -> Vec<f64> {
        let t = self.total_references.max(1) as f64;
        self.reference_counts
            .iter()
            .map(|&c| c as f64 / t)
            .collect()
    }

    /// Figure 2's overlay: cumulative reference ratios for the first
    /// `1..=segments` segments.
    pub fn cumulative_ratios(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.reference_ratios()
            .iter()
            .map(|r| {
                acc += r;
                acc
            })
            .collect()
    }

    /// Figure 3's y-axis: per-boundary movement ratios (crossings at the
    /// boundary over all references).
    pub fn movement_ratios(&self) -> Vec<f64> {
        let t = self.total_references.max(1) as f64;
        self.boundary_movements
            .iter()
            .map(|&c| c as f64 / t)
            .collect()
    }

    /// A scalar distinction score: the cumulative reference ratio captured
    /// by the first third of the segments. Higher means locality strengths
    /// are better concentrated at the head of the list.
    pub fn distinction_score(&self) -> f64 {
        let third = (self.segments / 3).max(1);
        self.cumulative_ratios()[third - 1]
    }

    /// A scalar stability score: the mean movement ratio over all
    /// boundaries. Lower means the distinction is more stable (cheaper to
    /// maintain across cache levels).
    pub fn mean_movement_ratio(&self) -> f64 {
        let m = self.movement_ratios();
        if m.is_empty() {
            0.0
        } else {
            m.iter().sum::<f64>() / m.len() as f64
        }
    }
}

impl fmt::Display for SegmentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} refs over {} blocks ({} cold)",
            self.total_references, self.distinct_blocks, self.cold_references
        )?;
        write!(f, "  ref ratios:  ")?;
        for r in self.reference_ratios() {
            write!(f, "{:6.3}", r)?;
        }
        writeln!(f)?;
        write!(f, "  move ratios: ")?;
        for r in self.movement_ratios() {
            write!(f, "{:6.3}", r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SegmentReport {
        SegmentReport {
            segments: 4,
            reference_counts: vec![40, 30, 20, 10],
            boundary_movements: vec![5, 10, 15],
            cold_references: 0,
            total_references: 100,
            distinct_blocks: 40,
        }
    }

    #[test]
    fn ratios_divide_by_total() {
        let r = sample().reference_ratios();
        assert_eq!(r, vec![0.4, 0.3, 0.2, 0.1]);
    }

    #[test]
    fn cumulative_is_prefix_sum() {
        let c = sample().cumulative_ratios();
        assert!((c[0] - 0.4).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn movement_ratios_divide_by_total() {
        let m = sample().movement_ratios();
        assert_eq!(m, vec![0.05, 0.10, 0.15]);
    }

    #[test]
    fn scores() {
        let s = sample();
        // 4 segments / 3 → first segment only.
        assert!((s.distinction_score() - 0.4).abs() < 1e-12);
        assert!((s.mean_movement_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let s = SegmentReport::new(10, 0);
        assert_eq!(s.reference_ratios().len(), 10);
        assert_eq!(s.movement_ratios().len(), 9);
        assert_eq!(s.mean_movement_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "two segments")]
    fn one_segment_rejected() {
        let _ = SegmentReport::new(1, 10);
    }

    #[test]
    fn display_contains_counts() {
        let text = format!("{}", sample());
        assert!(text.contains("100 refs"));
        assert!(text.contains("ref ratios"));
    }
}
