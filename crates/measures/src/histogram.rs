//! Reuse-distance (stack-distance) histograms for workload
//! characterisation.
//!
//! The whole ULC argument rests on *where* a workload's re-references
//! fall relative to the hierarchy's level boundaries: distances inside
//! `|L₁|` are client hits for everyone, distances inside the aggregate
//! reward exclusive placement, distances beyond it reward nobody. This
//! module computes the histogram and the derived "ideal" per-level hit
//! shares that an oracle placement of a given hierarchy could reach.

use ulc_cache::lru_stack_distances;
use ulc_trace::Trace;

/// A histogram of LRU stack distances with caller-chosen bucket edges.
#[derive(Clone, Debug, PartialEq)]
pub struct ReuseHistogram {
    /// Upper edges of the buckets (exclusive), ascending.
    pub edges: Vec<usize>,
    /// Re-reference counts per bucket; the last entry counts distances
    /// at or beyond the final edge.
    pub counts: Vec<u64>,
    /// First accesses (no reuse distance).
    pub cold: u64,
    /// Total references.
    pub total: u64,
}

impl ReuseHistogram {
    /// Computes the histogram of `trace` with the given bucket `edges`.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn compute(trace: &Trace, edges: &[usize]) -> Self {
        assert!(!edges.is_empty(), "at least one bucket edge is required");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let blocks: Vec<u64> = trace.iter().map(|r| r.block.raw()).collect();
        let mut counts = vec![0u64; edges.len() + 1];
        let mut cold = 0u64;
        for d in lru_stack_distances(&blocks) {
            match d {
                Some(d) => {
                    let bucket = edges.partition_point(|&e| e <= d);
                    counts[bucket] += 1;
                }
                None => cold += 1,
            }
        }
        ReuseHistogram {
            edges: edges.to_vec(),
            counts,
            cold,
            total: trace.len() as u64,
        }
    }

    /// Computes the histogram with bucket edges at the cumulative level
    /// capacities of a hierarchy — bucket `i` then holds exactly the
    /// re-references an oracle *unified* placement could serve from level
    /// `i` or better.
    pub fn for_hierarchy(trace: &Trace, capacities: &[usize]) -> Self {
        let mut edges = Vec::with_capacity(capacities.len());
        let mut acc = 0usize;
        for &c in capacities {
            acc += c;
            edges.push(acc);
        }
        ReuseHistogram::compute(trace, &edges)
    }

    /// Fraction of all references in each bucket.
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total.max(1) as f64)
            .collect()
    }

    /// Fraction of references that are first touches.
    pub fn cold_fraction(&self) -> f64 {
        self.cold as f64 / self.total.max(1) as f64
    }

    /// Adds `other`'s tallies into `self` — the fold for histograms
    /// computed over split traces by parallel sweep workers. Associative
    /// and commutative, and bucket counts are conserved: merging the
    /// histograms of a partition of accesses gives the same per-bucket
    /// counts as one histogram of the concatenation *only* when the split
    /// does not sever reuse pairs, so callers split on trace boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the histograms were computed with different bucket edges.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.cold += other.cold;
        self.total += other.total;
    }

    /// The aggregate hit rate an exclusive recency-based hierarchy of
    /// these capacities could reach: everything but the final bucket and
    /// the cold misses.
    pub fn unified_hit_ceiling(&self) -> f64 {
        let beyond = *self.counts.last().expect("non-empty counts");
        1.0 - (beyond + self.cold) as f64 / self.total.max(1) as f64
    }
}

impl std::fmt::Display for ReuseHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut lo = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            let share = c as f64 / self.total.max(1) as f64;
            match self.edges.get(i) {
                Some(&hi) => writeln!(f, "  [{lo:>8}, {hi:>8})  {:>6.1}%", 100.0 * share)?,
                None => writeln!(f, "  [{lo:>8},      inf)  {:>6.1}%", 100.0 * share)?,
            }
            lo = *self.edges.get(i).unwrap_or(&lo);
        }
        write!(f, "  cold               {:>6.1}%", 100.0 * self.cold_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulc_trace::{synthetic, BlockId, Trace};

    #[test]
    fn loop_mass_sits_in_one_bucket() {
        // A loop over N blocks re-references everything at distance N-1.
        let t = synthetic::cs(3 * synthetic::CS_BLOCKS as usize);
        let n = synthetic::CS_BLOCKS as usize;
        let h = ReuseHistogram::compute(&t, &[n - 1, n]);
        assert_eq!(h.counts[0], 0);
        assert_eq!(h.counts[1] as usize, 2 * n); // [n-1, n)
        assert_eq!(h.counts[2], 0);
        assert_eq!(h.cold as usize, n);
    }

    #[test]
    fn hierarchy_edges_are_cumulative() {
        let t = Trace::from_blocks((0..10u64).map(BlockId::new));
        let h = ReuseHistogram::for_hierarchy(&t, &[4, 4, 4]);
        assert_eq!(h.edges, vec![4, 8, 12]);
    }

    #[test]
    fn ceiling_matches_unified_lru_on_a_fitting_loop() {
        let t = synthetic::cs(50_000);
        let h = ReuseHistogram::for_hierarchy(&t, &[1_000, 1_000, 1_000]);
        // Everything except cold fits the aggregate.
        assert!(h.unified_hit_ceiling() > 0.94);
        let bound = ulc_hierarchy::bound::aggregate_lru_hit_rate(&t, 3_000, 0);
        assert!((h.unified_hit_ceiling() - bound).abs() < 0.06);
    }

    #[test]
    fn fractions_sum_with_cold_to_one() {
        let t = synthetic::zipf_small(20_000);
        let h = ReuseHistogram::for_hierarchy(&t, &[100, 400]);
        let sum: f64 = h.fractions().iter().sum::<f64>() + h.cold_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_lists_every_bucket() {
        let t = synthetic::sprite(5_000);
        let text = format!("{}", ReuseHistogram::compute(&t, &[10, 100]));
        assert!(text.contains("inf"));
        assert!(text.contains("cold"));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_edges_rejected() {
        let t = synthetic::sprite(100);
        let _ = ReuseHistogram::compute(&t, &[10, 10]);
    }
}
