//! Property-based tests for the single-level cache substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use ulc_cache::{
    lru_stack_distances, next_use_times, CacheEvent, Fenwick, KeyedList, LazyMinTree, LinkedSlab,
    Lirs, LruCache, LruStack, MqConfig, MultiQueue, OptCache, RandomCache, RecencyList, NEVER,
};

/// Operations for the LinkedSlab model check.
#[derive(Clone, Debug)]
enum ListOp {
    PushFront(u16),
    PushBack(u16),
    RemoveAt(usize),
    MoveToFrontAt(usize),
    MoveToBackAt(usize),
}

fn list_op() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        any::<u16>().prop_map(ListOp::PushFront),
        any::<u16>().prop_map(ListOp::PushBack),
        any::<usize>().prop_map(ListOp::RemoveAt),
        any::<usize>().prop_map(ListOp::MoveToFrontAt),
        any::<usize>().prop_map(ListOp::MoveToBackAt),
    ]
}

proptest! {
    /// LinkedSlab behaves exactly like a Vec model under arbitrary
    /// insert/remove/move sequences. (Values are tagged with a unique
    /// step counter so the model can track identity.)
    #[test]
    fn linked_slab_matches_vec_model(ops in vec(list_op(), 1..200)) {
        let mut slab = LinkedSlab::new();
        let mut model: Vec<(usize, u16)> = Vec::new();
        let mut handles = Vec::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                ListOp::PushFront(raw) => {
                    let v = (step, raw);
                    handles.push(slab.push_front(v));
                    model.insert(0, v);
                }
                ListOp::PushBack(raw) => {
                    let v = (step, raw);
                    handles.push(slab.push_back(v));
                    model.push(v);
                }
                ListOp::RemoveAt(i) if !handles.is_empty() => {
                    let h = handles.remove(i % handles.len());
                    if let Some(v) = slab.remove(h) {
                        let pos = model.iter().position(|&m| m == v).expect("in model");
                        model.remove(pos);
                    }
                }

                ListOp::MoveToFrontAt(i) if !handles.is_empty() => {
                    let h = handles[i % handles.len()];
                    if slab.move_to_front(h) {
                        let v = *slab.get(h).expect("fresh");
                        let pos = model.iter().position(|&m| m == v).expect("in model");
                        let v = model.remove(pos);
                        model.insert(0, v);
                    }
                }
                ListOp::MoveToBackAt(i) if !handles.is_empty() => {
                    let h = handles[i % handles.len()];
                    if slab.move_to_back(h) {
                        let v = *slab.get(h).expect("fresh");
                        let pos = model.iter().position(|&m| m == v).expect("in model");
                        let v = model.remove(pos);
                        model.push(v);
                    }
                }
                _ => {}
            }
            let got: Vec<(usize, u16)> = slab.iter().map(|(_, &v)| v).collect();
            prop_assert_eq!(&got, &model);
            prop_assert_eq!(slab.len(), model.len());
            slab.check_invariants();
        }
    }

    /// NOTE: values may repeat, so the model tracks positions via handles;
    /// this weaker test uses distinct values to check the keyed stack.
    #[test]
    fn lru_stack_matches_naive_recency_order(keys in vec(0u8..32, 1..300)) {
        let mut stack = LruStack::new();
        let mut model: Vec<u8> = Vec::new();
        for k in keys {
            stack.touch(k);
            if let Some(p) = model.iter().position(|&m| m == k) {
                model.remove(p);
            }
            model.insert(0, k);
            let got: Vec<u8> = stack.iter().copied().collect();
            prop_assert_eq!(&got, &model);
            prop_assert_eq!(stack.bottom().copied(), model.last().copied());
        }
    }

    /// LruCache never exceeds capacity, evicts exactly the LRU key, and a
    /// hit is reported iff the key is resident in the model.
    #[test]
    fn lru_cache_matches_model(
        capacity in 1usize..20,
        keys in vec(0u16..64, 1..400),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model: Vec<u16> = Vec::new(); // MRU first
        for k in keys {
            let expect_hit = model.contains(&k);
            let event = cache.access(k);
            prop_assert_eq!(event.is_hit(), expect_hit);
            if let Some(p) = model.iter().position(|&m| m == k) {
                model.remove(p);
            }
            model.insert(0, k);
            if model.len() > capacity {
                let lru = model.pop().expect("over-full");
                match event {
                    CacheEvent::Miss { evicted: Some(v) } => prop_assert_eq!(v, lru),
                    other => prop_assert!(false, "expected eviction, got {:?}", other),
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// OPT is at least as good as LRU and RANDOM on every trace at every
    /// capacity (Belady optimality, spot-checked).
    #[test]
    fn opt_dominates_online_policies(
        capacity in 1usize..16,
        keys in vec(0u64..48, 10..400),
    ) {
        let opt_hits = OptCache::hits_on_trace(capacity, &keys);
        let mut lru = LruCache::new(capacity);
        let lru_hits = keys.iter().filter(|&&k| lru.access(k).is_hit()).count();
        let mut rnd = RandomCache::new(capacity, 42);
        let rnd_hits = keys.iter().filter(|&&k| rnd.access(k).is_hit()).count();
        prop_assert!(opt_hits >= lru_hits, "OPT {} < LRU {}", opt_hits, lru_hits);
        prop_assert!(opt_hits >= rnd_hits, "OPT {} < RANDOM {}", opt_hits, rnd_hits);
    }

    /// RecencyList behaves exactly like an explicit MRU-first Vec model
    /// under arbitrary touch/remove sequences, including slot-exhaustion
    /// rebuilds (the tight `with_capacity` forces them).
    #[test]
    fn recency_list_matches_vec_model(
        ops in vec((0usize..24, any::<bool>()), 1..400),
    ) {
        let mut list = RecencyList::with_capacity(24, 8);
        let mut model: Vec<usize> = Vec::new(); // MRU first
        for (id, is_remove) in ops {
            if is_remove {
                let expect = model.iter().position(|&m| m == id);
                prop_assert_eq!(list.remove(id), expect.is_some());
                if let Some(p) = expect {
                    model.remove(p);
                }
            } else {
                list.move_to_front(id);
                if let Some(p) = model.iter().position(|&m| m == id) {
                    model.remove(p);
                }
                model.insert(0, id);
            }
            prop_assert_eq!(list.len(), model.len());
            let got: Vec<usize> = list.iter_recency().collect();
            prop_assert_eq!(&got, &model);
            for (rank, &id) in model.iter().enumerate() {
                prop_assert_eq!(list.rank_of(id), Some(rank));
                prop_assert_eq!(list.select(rank), Some(id));
            }
            list.check_invariants();
        }
    }

    /// KeyedList ranks and selection match a sorted-Vec model under
    /// arbitrary insert/remove sequences over a small key universe.
    #[test]
    fn keyed_list_matches_sorted_model(
        ops in vec((0usize..32, any::<bool>()), 1..400),
    ) {
        let mut list = KeyedList::new(32);
        let mut model: Vec<usize> = Vec::new(); // sorted key indices
        for (idx, insert) in ops {
            let pos = model.binary_search(&idx);
            match (insert, pos) {
                (true, Err(p)) => {
                    list.insert_at_key(idx);
                    model.insert(p, idx);
                }
                (false, Ok(p)) => {
                    list.remove(idx);
                    model.remove(p);
                }
                // Duplicate insert / absent remove: skip (the structure
                // forbids them by contract).
                _ => {}
            }
            prop_assert_eq!(list.len(), model.len());
            for (rank, &idx) in model.iter().enumerate() {
                prop_assert!(list.contains_key(idx));
                prop_assert_eq!(list.rank_of_key(idx), rank);
                prop_assert_eq!(list.select(rank), Some(idx));
            }
            list.check_invariants();
        }
    }

    /// The Fenwick-based stack distance matches an explicit stack walk.
    #[test]
    fn stack_distances_match_naive(keys in vec(0u32..64, 1..300)) {
        let fast = lru_stack_distances(&keys);
        let mut stack: Vec<u32> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let expect = stack.iter().position(|&x| x == k);
            prop_assert_eq!(fast[i], expect);
            if let Some(p) = expect {
                stack.remove(p);
            }
            stack.insert(0, k);
        }
    }

    /// next_use_times points at the next occurrence of the same key.
    #[test]
    fn next_use_times_are_correct(keys in vec(0u8..16, 1..200)) {
        let next = next_use_times(&keys);
        for i in 0..keys.len() {
            match next[i] {
                NEVER => {
                    prop_assert!(!keys[i + 1..].contains(&keys[i]));
                }
                j => {
                    let j = j as usize;
                    prop_assert!(j > i);
                    prop_assert_eq!(keys[j], keys[i]);
                    prop_assert!(!keys[i + 1..j].contains(&keys[i]));
                }
            }
        }
    }

    /// MQ: capacity bound, hit iff resident, frequency counts every
    /// reference.
    #[test]
    fn mq_invariants(
        capacity in 1usize..16,
        keys in vec(0u16..48, 1..400),
    ) {
        let mut mq = MultiQueue::new(capacity, MqConfig::for_capacity(capacity));
        let mut counts = std::collections::HashMap::new();
        for k in keys {
            let was_resident = mq.contains(&k);
            let event = mq.access(k);
            prop_assert_eq!(event.is_hit(), was_resident);
            *counts.entry(k).or_insert(0u64) += 1;
            prop_assert!(mq.len() <= capacity);
            // MQ's recorded frequency never exceeds the true count (ghost
            // history can be lost, never invented).
            if let Some(f) = mq.frequency(&k) {
                prop_assert!(f <= counts[&k]);
            }
        }
    }

    /// LIRS: capacity bound, hit iff resident, OPT still dominates it.
    #[test]
    fn lirs_invariants(
        capacity in 2usize..24,
        hir_pct in 1u32..50,
        keys in vec(0u64..64, 1..500),
    ) {
        let mut lirs = Lirs::new(capacity, hir_pct as f64 / 100.0);
        let mut resident = std::collections::HashSet::new();
        let mut hits = 0usize;
        for &k in &keys {
            let event = lirs.access(k);
            prop_assert_eq!(event.is_hit(), resident.contains(&k), "key {}", k);
            if event.is_hit() {
                hits += 1;
            }
            if let CacheEvent::Miss { evicted } = event {
                if let Some(v) = evicted {
                    prop_assert!(resident.remove(&v));
                }
                resident.insert(k);
            }
            prop_assert!(lirs.len() <= capacity);
            prop_assert_eq!(lirs.len(), resident.len());
            lirs.check_invariants();
        }
        let opt_hits = OptCache::hits_on_trace(capacity, &keys);
        prop_assert!(hits <= opt_hits, "LIRS {} > OPT {}", hits, opt_hits);
    }

    /// Fenwick prefix sums, point reads, and order-statistic selection
    /// all match a plain array model under arbitrary 0/1 toggles.
    #[test]
    fn fenwick_matches_array_model(ops in vec((0usize..48, any::<bool>()), 1..300)) {
        let mut fen = Fenwick::new(48);
        let mut model = [0i64; 48];
        for (i, set) in ops {
            let delta = if set { 1 } else { -model[i] };
            fen.add(i, delta);
            model[i] += delta;
            fen.check_invariants();
            let mut acc = 0i64;
            for (j, &m) in model.iter().enumerate() {
                prop_assert_eq!(fen.get(j), m, "slot {}", j);
                prop_assert_eq!(fen.count_below(j), acc, "prefix below {}", j);
                acc += m;
            }
            prop_assert_eq!(fen.total(), acc);
            // select(k) finds the position of the (k+1)-th unit; a slot
            // holding m units covers m consecutive ranks.
            let mut rank = 0usize;
            for (j, &m) in model.iter().enumerate() {
                for _ in 0..m {
                    prop_assert_eq!(fen.select(rank), Some(j), "rank {}", rank);
                    rank += 1;
                }
            }
            prop_assert_eq!(fen.select(rank), None);
        }
    }

    /// LazyMinTree range-add / range-min / argmin match an explicit array
    /// model, and the lazy structure resolves consistently after every op.
    #[test]
    fn lazy_min_tree_matches_array_model(
        ops in vec((0usize..24, 0usize..24, 0u32..16, any::<bool>()), 1..200),
    ) {
        let mut tree = LazyMinTree::new(24, 0);
        let mut model = [0i64; 24];
        for (a, b, raw_delta, is_add) in ops {
            let delta = raw_delta as i64 - 8;
            let (l, r) = (a.min(b), a.max(b) + 1);
            if is_add {
                tree.add_range(l, r, delta);
                for m in &mut model[l..r] {
                    *m += delta;
                }
            } else {
                tree.set(l, delta);
                model[l] = delta;
            }
            tree.check_invariants();
            let want = *model[l..r].iter().min().expect("non-empty range");
            prop_assert_eq!(tree.min_range(l, r), want);
            tree.check_invariants();
            let want_all = *model.iter().min().expect("non-empty");
            prop_assert_eq!(tree.min_all(), want_all);
            let (v, i) = tree.argmin();
            prop_assert_eq!(v, want_all);
            let leftmost = model.iter().position(|&m| m == want_all);
            prop_assert_eq!(Some(i), leftmost, "argmin must be leftmost");
            tree.check_invariants();
        }
    }

    /// RandomCache: capacity bound and hit iff resident (residency model
    /// tracked via its own events).
    #[test]
    fn random_cache_capacity_and_consistency(
        capacity in 1usize..16,
        keys in vec(0u16..48, 1..300),
    ) {
        let mut cache = RandomCache::new(capacity, 7);
        let mut resident = std::collections::HashSet::new();
        for k in keys {
            let event = cache.access(k);
            prop_assert_eq!(event.is_hit(), resident.contains(&k));
            if let CacheEvent::Miss { evicted } = event {
                if let Some(v) = evicted {
                    prop_assert!(resident.remove(&v));
                }
                resident.insert(k);
            }
            prop_assert!(resident.len() <= capacity);
            prop_assert_eq!(cache.len(), resident.len());
        }
    }
}
