//! LRU stack-distance (recency) computation.
//!
//! The paper's **LLD** (last locality distance) of a reference is exactly
//! the LRU stack distance at which it occurs: the number of *distinct*
//! blocks referenced since the previous reference to the same block. The
//! measures framework (§2) needs this for every reference of a trace;
//! [`lru_stack_distances`] computes it in O(n log n) on a [`RecencyList`]
//! (a stamp-keyed Fenwick LRU list), instead of O(n²) list walking.

use crate::RecencyList;
use fxhash::FxHashMap;
use std::hash::Hash;

/// Computes the LRU stack distance of every reference in `items`.
///
/// `result[i]` is `Some(d)` when `items[i]` was last referenced with `d`
/// distinct other items in between (so `d == 0` means an immediate repeat),
/// and `None` for the first reference to that item.
///
/// This matches the "recency" of the paper: the position the block occupied
/// in the LRU stack at the moment of the reference, with the top of the
/// stack at position 0.
///
/// # Examples
///
/// ```
/// use ulc_cache::lru_stack_distances;
///
/// let d = lru_stack_distances(&['a', 'b', 'b', 'a']);
/// assert_eq!(d, vec![None, None, Some(0), Some(1)]);
/// ```
pub fn lru_stack_distances<T: Eq + Hash>(items: &[T]) -> Vec<Option<usize>> {
    let n = items.len();
    // The indexed list is pre-sized for the whole pass, so no rebuild
    // ever fires: n moves over at most n dense ids.
    let mut list = RecencyList::with_capacity(n, n);
    let mut ids: FxHashMap<&T, usize> = FxHashMap::default();
    let mut out = Vec::with_capacity(n);
    for item in items {
        let next_id = ids.len();
        let id = *ids.entry(item).or_insert(next_id);
        out.push(list.rank_of(id));
        list.move_to_front(id);
    }
    out
}

/// [`lru_stack_distances`] over a pre-interned stream of dense ids: the
/// per-item hash map disappears entirely — the interned id *is* the
/// [`RecencyList`] id.
///
/// `ids` are dense indices such as those produced by
/// `ulc_trace::BlockInterner` (any `u32`s work; the list is sized to the
/// largest id seen).
///
/// # Examples
///
/// ```
/// use ulc_cache::{lru_stack_distances, lru_stack_distances_indexed};
///
/// // 'a' ↦ 0, 'b' ↦ 1 under first-seen interning.
/// assert_eq!(
///     lru_stack_distances_indexed(&[0, 1, 1, 0]),
///     lru_stack_distances(&['a', 'b', 'b', 'a']),
/// );
/// ```
pub fn lru_stack_distances_indexed(ids: &[u32]) -> Vec<Option<usize>> {
    let n = ids.len();
    let universe = ids.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
    let mut list = RecencyList::with_capacity(universe, n);
    let mut out = Vec::with_capacity(n);
    for &id in ids {
        out.push(list.rank_of(id as usize));
        list.move_to_front(id as usize);
    }
    out
}

/// Computes the paper's **NLD** (next locality distance) of every
/// reference: the recency at which the block will be referenced *next*
/// time, or `None` if this is its final reference.
///
/// `NLD[i]` equals the stack distance of the next reference to `items[i]`,
/// which is future knowledge — usable offline only, exactly as the paper
/// uses it in §2.
///
/// # Examples
///
/// ```
/// use ulc_cache::next_locality_distances;
///
/// // 'a' is re-referenced after 1 distinct block ('b').
/// let nld = next_locality_distances(&['a', 'b', 'a']);
/// assert_eq!(nld, vec![Some(1), None, None]);
/// ```
pub fn next_locality_distances<T: Eq + Hash>(items: &[T]) -> Vec<Option<usize>> {
    let distances = lru_stack_distances(items);
    let next = crate::next_use_times(items);
    (0..items.len())
        .map(|i| match next[i] {
            crate::NEVER => None,
            j => distances[j as usize],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference implementation with an explicit LRU stack.
    fn naive<T: Eq + Hash + Clone>(items: &[T]) -> Vec<Option<usize>> {
        let mut stack: Vec<T> = Vec::new();
        let mut out = Vec::new();
        for item in items {
            match stack.iter().position(|x| x == item) {
                Some(p) => {
                    out.push(Some(p));
                    stack.remove(p);
                }
                None => out.push(None),
            }
            stack.insert(0, item.clone());
        }
        out
    }

    #[test]
    fn matches_naive_on_simple_trace() {
        let t = ['a', 'b', 'c', 'a', 'b', 'b', 'c'];
        assert_eq!(lru_stack_distances(&t), naive(&t));
    }

    #[test]
    fn matches_naive_on_pseudorandom_trace() {
        let mut x = 7u64;
        let t: Vec<u64> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 40) % 37
            })
            .collect();
        assert_eq!(lru_stack_distances(&t), naive(&t));
    }

    #[test]
    fn loop_distances_are_loop_length_minus_one() {
        let t: Vec<u32> = (0..5).cycle().take(25).collect();
        let d = lru_stack_distances(&t);
        for (i, v) in d.iter().enumerate() {
            if i < 5 {
                assert_eq!(*v, None);
            } else {
                assert_eq!(*v, Some(4));
            }
        }
    }

    #[test]
    fn immediate_repeat_has_distance_zero() {
        let d = lru_stack_distances(&[9, 9, 9]);
        assert_eq!(d, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn nld_is_shifted_lld() {
        // For every reference i with a next reference j, NLD[i] == LLD[j].
        let t: Vec<u32> = vec![1, 2, 3, 1, 2, 1, 3];
        let lld = lru_stack_distances(&t);
        let nld = next_locality_distances(&t);
        let next = crate::next_use_times(&t);
        for i in 0..t.len() {
            match next[i] {
                crate::NEVER => assert_eq!(nld[i], None),
                j => assert_eq!(nld[i], lld[j as usize]),
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(lru_stack_distances::<u8>(&[]).is_empty());
        assert!(next_locality_distances::<u8>(&[]).is_empty());
        assert!(lru_stack_distances_indexed(&[]).is_empty());
    }

    #[test]
    fn indexed_matches_generic_on_interned_stream() {
        let mut x = 3u64;
        let t: Vec<u64> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 40) % 53
            })
            .collect();
        // First-seen dense interning, as ulc_trace::BlockInterner does it.
        let mut seen: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let ids: Vec<u32> = t
            .iter()
            .map(|&b| {
                let next = seen.len() as u32;
                *seen.entry(b).or_insert(next)
            })
            .collect();
        assert_eq!(lru_stack_distances_indexed(&ids), lru_stack_distances(&t));
    }

    #[test]
    fn indexed_accepts_sparse_ids() {
        // Ids need not be contiguous; the list sizes to the largest.
        let d = lru_stack_distances_indexed(&[10, 3, 3, 10]);
        assert_eq!(d, vec![None, None, Some(0), Some(1)]);
    }
}
