//! Keyed LRU stacks and a bounded LRU cache.

use crate::{LinkedSlab, NodeHandle};
use fxhash::FxHashMap;
use std::hash::Hash;

/// An unbounded LRU stack over keys: a recency ordering with O(1) touch,
/// removal and bottom access.
///
/// This is the bare recency structure; [`LruCache`] adds a capacity bound
/// and eviction. ULC's `gLRU` and ghost stacks build on it directly.
///
/// # Examples
///
/// ```
/// use ulc_cache::LruStack;
///
/// let mut s = LruStack::new();
/// s.touch(1);
/// s.touch(2);
/// s.touch(1);
/// assert_eq!(s.bottom(), Some(&2));
/// assert_eq!(s.top(), Some(&1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LruStack<K: Eq + Hash + Clone> {
    list: LinkedSlab<K>,
    // The recency *order* lives in the list; this map only locates nodes,
    // so the fast deterministic Fx hasher is behaviour-neutral here.
    map: FxHashMap<K, NodeHandle>,
}

impl<K: Eq + Hash + Clone> LruStack<K> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        LruStack {
            list: LinkedSlab::new(),
            map: FxHashMap::default(),
        }
    }

    /// Pre-sizes the stack for `capacity` keys: slab slots, the free
    /// list and the locator map are all grown up front so a steady-state
    /// run whose occupancy high-water is reached late never reallocates
    /// mid-measurement (DESIGN.md §5f).
    pub fn reserve(&mut self, capacity: usize) {
        self.list.reserve(capacity);
        self.map.reserve(capacity.saturating_sub(self.map.len()));
    }

    /// Number of keys in the stack.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key` at the top, or moves it there if already present.
    /// Returns `true` if the key was already present.
    pub fn touch(&mut self, key: K) -> bool {
        if let Some(&h) = self.map.get(&key) {
            self.list.move_to_front(h);
            true
        } else {
            // lint:allow(hot-path-alloc) K is Copy (BlockId) on every simulation path; K::clone is a move
            let h = self.list.push_front(key.clone());
            self.map.insert(key, h);
            false
        }
    }

    /// Inserts `key` at the bottom, or moves it there if already present.
    /// Returns `true` if the key was already present.
    pub fn touch_bottom(&mut self, key: K) -> bool {
        if let Some(&h) = self.map.get(&key) {
            self.list.move_to_back(h);
            true
        } else {
            // lint:allow(hot-path-alloc) K is Copy (BlockId) on every simulation path; K::clone is a move
            let h = self.list.push_back(key.clone());
            self.map.insert(key, h);
            false
        }
    }

    /// Removes `key`, returning `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(h) => {
                self.list.remove(h);
                true
            }
            None => false,
        }
    }

    /// The most recently touched key.
    pub fn top(&self) -> Option<&K> {
        self.list.front().and_then(|h| self.list.get(h))
    }

    /// The least recently touched key.
    pub fn bottom(&self) -> Option<&K> {
        self.list.back().and_then(|h| self.list.get(h))
    }

    /// Removes and returns the least recently touched key.
    pub fn pop_bottom(&mut self) -> Option<K> {
        let h = self.list.back()?;
        let key = self.list.remove(h).expect("back handle is fresh");
        self.map.remove(&key);
        Some(key)
    }

    /// Iterates keys from most to least recently touched.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.list.iter().map(|(_, k)| k)
    }
}

/// What an access to a bounded cache did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent<K> {
    /// The key was present.
    Hit,
    /// The key was absent and has been inserted; `evicted` is the victim
    /// that was dropped to make room, if the cache was full.
    Miss {
        /// Victim evicted to make room, if any.
        evicted: Option<K>,
    },
}

impl<K> CacheEvent<K> {
    /// Returns `true` for [`CacheEvent::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheEvent::Hit)
    }
}

/// A capacity-bounded LRU cache over keys.
///
/// # Examples
///
/// ```
/// use ulc_cache::{CacheEvent, LruCache};
///
/// let mut c = LruCache::new(2);
/// assert_eq!(c.access(1), CacheEvent::Miss { evicted: None });
/// assert_eq!(c.access(2), CacheEvent::Miss { evicted: None });
/// assert_eq!(c.access(1), CacheEvent::Hit);
/// // 2 is now the LRU victim.
/// assert_eq!(c.access(3), CacheEvent::Miss { evicted: Some(2) });
/// ```
#[derive(Clone, Debug)]
pub struct LruCache<K: Eq + Hash + Clone> {
    stack: LruStack<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates a cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            stack: LruStack::new(),
            capacity,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Returns `true` if no keys are cached.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Returns `true` if the cache is at capacity.
    pub fn is_full(&self) -> bool {
        self.stack.len() == self.capacity
    }

    /// Returns `true` if `key` is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.stack.contains(key)
    }

    /// References `key`: moves it to the MRU position on a hit, inserts it
    /// (evicting the LRU victim if full) on a miss.
    pub fn access(&mut self, key: K) -> CacheEvent<K> {
        if self.stack.touch(key) {
            CacheEvent::Hit
        } else {
            let evicted = if self.stack.len() > self.capacity {
                self.stack.pop_bottom()
            } else {
                None
            };
            CacheEvent::Miss { evicted }
        }
    }

    /// Inserts `key` at the MRU end *without* counting as a reference
    /// (used for demotions arriving from an upper level). Returns the
    /// eviction victim if the cache was full, `None` otherwise (also `None`
    /// when the key was already present and was just refreshed).
    pub fn insert_mru(&mut self, key: K) -> Option<K> {
        if self.stack.touch(key) {
            None
        } else if self.stack.len() > self.capacity {
            self.stack.pop_bottom()
        } else {
            None
        }
    }

    /// Inserts `key` at the LRU end (the Wong & Wilkes LRU-insertion
    /// variant for demoted blocks). Returns the eviction victim if the
    /// cache was full.
    ///
    /// If the cache is exactly full, inserting at the LRU end would evict
    /// the inserted key itself; the key is dropped and returned as the
    /// victim, matching a zero-benefit insertion.
    pub fn insert_lru(&mut self, key: K) -> Option<K> {
        if self.stack.touch_bottom(key) {
            None
        } else if self.stack.len() > self.capacity {
            self.stack.pop_bottom()
        } else {
            None
        }
    }

    /// Removes `key` from the cache, returning `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.stack.remove(key)
    }

    /// The current LRU victim, if any.
    pub fn lru(&self) -> Option<&K> {
        self.stack.bottom()
    }

    /// Iterates keys from MRU to LRU.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.stack.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_orders_by_recency() {
        let mut s = LruStack::new();
        for k in [1, 2, 3, 2] {
            s.touch(k);
        }
        let order: Vec<i32> = s.iter().copied().collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn stack_pop_bottom_is_lru() {
        let mut s = LruStack::new();
        s.touch("a");
        s.touch("b");
        s.touch("a");
        assert_eq!(s.pop_bottom(), Some("b"));
        assert_eq!(s.pop_bottom(), Some("a"));
        assert_eq!(s.pop_bottom(), None);
    }

    #[test]
    fn stack_remove_unknown_is_false() {
        let mut s: LruStack<u32> = LruStack::new();
        assert!(!s.remove(&7));
        s.touch(7);
        assert!(s.remove(&7));
        assert!(s.is_empty());
    }

    #[test]
    fn stack_touch_bottom_places_last() {
        let mut s = LruStack::new();
        s.touch(1);
        s.touch_bottom(2);
        assert_eq!(s.bottom(), Some(&2));
        s.touch_bottom(1);
        assert_eq!(s.bottom(), Some(&1));
    }

    #[test]
    fn cache_hit_rate_of_loop_smaller_than_cache_is_total() {
        let mut c = LruCache::new(10);
        let mut hits = 0;
        for i in 0..100 {
            if c.access(i % 5).is_hit() {
                hits += 1;
            }
        }
        assert_eq!(hits, 95);
    }

    #[test]
    fn cache_loop_larger_than_cache_never_hits() {
        // The classic LRU pathology the paper builds on.
        let mut c = LruCache::new(10);
        let mut hits = 0;
        for i in 0..110 {
            if c.access(i % 11).is_hit() {
                hits += 1;
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn cache_never_exceeds_capacity() {
        let mut c = LruCache::new(3);
        for i in 0..50 {
            c.access(i % 7);
            assert!(c.len() <= 3);
        }
        assert!(c.is_full());
    }

    #[test]
    fn cache_eviction_order_is_lru() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // order: 1 (MRU), 2 (LRU)
        match c.access(3) {
            CacheEvent::Miss { evicted: Some(2) } => {}
            other => panic!("expected eviction of 2, got {other:?}"),
        }
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
    }

    #[test]
    fn insert_mru_does_not_overfill() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        let victim = c.insert_mru(3);
        assert_eq!(victim, Some(1));
        assert_eq!(c.len(), 2);
        assert!(c.contains(&3));
    }

    #[test]
    fn insert_lru_victimizes_itself_when_full() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        let victim = c.insert_lru(3);
        assert_eq!(victim, Some(3));
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn insert_lru_fills_spare_capacity() {
        let mut c = LruCache::new(3);
        c.access(1);
        assert_eq!(c.insert_lru(2), None);
        assert_eq!(c.lru(), Some(&2));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut c = LruCache::new(1);
        c.access(1);
        assert!(c.remove(&1));
        assert_eq!(c.access(2), CacheEvent::Miss { evicted: None });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u8>::new(0);
    }
}
