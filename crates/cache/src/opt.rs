//! Belady's OPT replacement and next-reference precomputation.
//!
//! OPT evicts the block whose next reference is farthest in the future; it
//! is the offline optimum and the policy behind the paper's **ND** (next
//! distance) measure. The simulator feeds [`OptCache`] the next-use time of
//! every reference, precomputed by [`next_use_times`].

use crate::CacheEvent;
use fxhash::FxHashMap;
use std::collections::hash_map::Entry;
use std::collections::BTreeSet;
use std::hash::Hash;

/// Sentinel next-use time for "never referenced again".
pub const NEVER: u64 = u64::MAX;

/// Computes, for each position `i` of `items`, the position of the next
/// occurrence of `items[i]` after `i`, or [`NEVER`] if there is none.
///
/// Runs in O(n) with a single backward scan and a single hash probe per
/// step (the entry API reads and replaces the previous position in one
/// lookup; the old `get`-then-`insert` pair hashed every key twice).
/// Block-id traces should prefer
/// `ulc_trace::intern::next_use_times_interned`, which routes the scan
/// through the dense interner and does no per-step hashing at all.
///
/// # Examples
///
/// ```
/// use ulc_cache::{next_use_times, NEVER};
///
/// let next = next_use_times(&['a', 'b', 'a']);
/// assert_eq!(next, vec![2, NEVER, NEVER]);
/// ```
pub fn next_use_times<T: Eq + Hash>(items: &[T]) -> Vec<u64> {
    let mut next = vec![NEVER; items.len()];
    let mut last_seen: FxHashMap<&T, usize> = FxHashMap::default();
    for (i, item) in items.iter().enumerate().rev() {
        match last_seen.entry(item) {
            Entry::Occupied(mut e) => {
                next[i] = *e.get() as u64;
                e.insert(i);
            }
            Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    next
}

/// A capacity-bounded cache under Belady's OPT replacement.
///
/// The caller supplies, with every access, the time of the *next* reference
/// to that key (see [`next_use_times`]).
///
/// # Examples
///
/// ```
/// use ulc_cache::{next_use_times, OptCache};
///
/// let trace = ['a', 'b', 'c', 'a'];
/// let next = next_use_times(&trace);
/// let mut opt = OptCache::new(2);
/// let mut hits = 0;
/// for (i, &k) in trace.iter().enumerate() {
///     if opt.access(k, next[i]).is_hit() {
///         hits += 1;
///     }
/// }
/// // OPT keeps 'a' across the scan of b, c.
/// assert_eq!(hits, 1);
/// ```
#[derive(Clone, Debug)]
pub struct OptCache<K: Ord + Eq + Hash + Clone> {
    /// (next_use, key) ordered set; the victim is the last element.
    by_next_use: BTreeSet<(u64, K)>,
    next_of: FxHashMap<K, u64>,
    capacity: usize,
}

impl<K: Ord + Eq + Hash + Clone> OptCache<K> {
    /// Creates an OPT cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        OptCache {
            by_next_use: BTreeSet::new(),
            next_of: FxHashMap::default(),
            capacity,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.next_of.len()
    }

    /// Returns `true` if no keys are cached.
    pub fn is_empty(&self) -> bool {
        self.next_of.is_empty()
    }

    /// Returns `true` if `key` is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.next_of.contains_key(key)
    }

    /// References `key`, whose next reference will occur at `next_use`
    /// (use [`NEVER`] if it is never referenced again).
    ///
    /// A key that will never be used again is not worth caching; OPT
    /// admits it only if there is spare room, and it becomes the preferred
    /// victim.
    pub fn access(&mut self, key: K, next_use: u64) -> CacheEvent<K> {
        if let Some(old) = self.next_of.get(&key).copied() {
            self.by_next_use.remove(&(old, key.clone()));
            self.by_next_use.insert((next_use, key.clone()));
            self.next_of.insert(key, next_use);
            return CacheEvent::Hit;
        }
        let evicted = if self.next_of.len() == self.capacity {
            // Evict the key with the farthest next use — unless the
            // incoming key's own next use is even farther, in which case
            // caching it is pointless (an optimal bypass).
            let farthest = self
                .by_next_use
                .iter()
                .next_back()
                .expect("full cache is non-empty")
                .clone();
            if farthest.0 <= next_use {
                return CacheEvent::Miss { evicted: None };
            }
            self.by_next_use.remove(&farthest);
            self.next_of.remove(&farthest.1);
            Some(farthest.1)
        } else {
            None
        };
        self.by_next_use.insert((next_use, key.clone()));
        self.next_of.insert(key, next_use);
        CacheEvent::Miss { evicted }
    }

    /// Runs a whole trace through OPT and returns the hit count.
    pub fn hits_on_trace(capacity: usize, items: &[K]) -> usize {
        let next = next_use_times(items);
        let mut opt = OptCache::new(capacity);
        items
            .iter()
            .enumerate()
            .filter(|(i, k)| opt.access((*k).clone(), next[*i]).is_hit())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_use_times_basic() {
        let next = next_use_times(&[1, 2, 1, 1, 3]);
        assert_eq!(next, vec![2, NEVER, 3, NEVER, NEVER]);
    }

    #[test]
    fn next_use_times_empty() {
        assert!(next_use_times::<u8>(&[]).is_empty());
    }

    #[test]
    fn opt_beats_lru_on_a_loop() {
        // Loop of n+1 blocks over a cache of n: LRU gets 0%, OPT gets
        // (n-1)/(n+1) per cycle asymptotically.
        let n = 8;
        let trace: Vec<u64> = (0..(n as u64 + 1)).cycle().take(900).collect();
        let opt_hits = OptCache::hits_on_trace(n, &trace);
        let mut lru = crate::LruCache::new(n);
        let lru_hits = trace.iter().filter(|&&b| lru.access(b).is_hit()).count();
        assert_eq!(lru_hits, 0);
        assert!(
            opt_hits > trace.len() / 2,
            "opt_hits = {opt_hits} of {}",
            trace.len()
        );
    }

    #[test]
    fn opt_is_never_worse_than_lru() {
        // Spot-check optimality against LRU on a pseudo-random trace.
        let mut x = 99u64;
        let trace: Vec<u64> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) % 64
            })
            .collect();
        for capacity in [4, 16, 32] {
            let opt_hits = OptCache::hits_on_trace(capacity, &trace);
            let mut lru = crate::LruCache::new(capacity);
            let lru_hits = trace.iter().filter(|&&b| lru.access(b).is_hit()).count();
            assert!(
                opt_hits >= lru_hits,
                "capacity {capacity}: OPT {opt_hits} < LRU {lru_hits}"
            );
        }
    }

    #[test]
    fn bypasses_dead_blocks_when_full() {
        let mut opt = OptCache::new(1);
        opt.access(1, 5);
        // Block 2 is never used again; OPT must not evict block 1 for it.
        assert_eq!(opt.access(2, NEVER), CacheEvent::Miss { evicted: None });
        assert!(opt.contains(&1));
        assert!(!opt.contains(&2));
    }

    #[test]
    fn admits_dead_blocks_into_spare_room() {
        let mut opt = OptCache::new(2);
        opt.access(1, NEVER);
        assert!(opt.contains(&1));
    }

    #[test]
    fn never_exceeds_capacity() {
        let trace: Vec<u64> = (0..500).map(|i| i * 7 % 23).collect();
        let next = next_use_times(&trace);
        let mut opt = OptCache::new(5);
        for (i, &b) in trace.iter().enumerate() {
            opt.access(b, next[i]);
            assert!(opt.len() <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = OptCache::<u8>::new(0);
    }
}
