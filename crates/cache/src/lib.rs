//! Single-level cache substrate for the ULC reproduction.
//!
//! The multi-level protocols of the paper are assembled from a small set of
//! single-level building blocks, all provided here:
//!
//! * [`LinkedSlab`] — a slab-backed doubly-linked list with stable,
//!   generation-checked handles; the backbone of every stack in the
//!   workspace (including ULC's `uniLRUstack` with its yardstick pointers);
//! * [`LruStack`] / [`LruCache`] — keyed recency stacks and bounded LRU;
//! * [`MultiQueue`] — the MQ second-level replacement algorithm
//!   (Zhou, Philbin & Li 2001), a Figure 7 baseline;
//! * [`Lirs`] — the LIRS policy (Jiang & Zhang 2002), the single-level
//!   ancestor of ULC's LLD ranking (§5 of the ULC paper);
//! * [`OptCache`] — Belady's OPT, behind the paper's ND measure;
//! * [`RandomCache`] — the RANDOM floor of §2.2;
//! * [`lru_stack_distances`] / [`next_locality_distances`] — O(n log n)
//!   recency (LLD) and NLD precomputation for the measures framework;
//! * [`Fenwick`] / [`KeyedList`] / [`RecencyList`] / [`LazyMinTree`] —
//!   O(log n) indexed ranking lists behind the measure analyzers and the
//!   temporal trace generator.
//!
//! # Examples
//!
//! ```
//! use ulc_cache::{LruCache, MqConfig, MultiQueue};
//!
//! let mut lru = LruCache::new(512);
//! let mut mq = MultiQueue::new(512, MqConfig::for_capacity(512));
//! for block in 0u64..1000 {
//!     lru.access(block);
//!     mq.access(block);
//! }
//! assert!(lru.is_full());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod distance;
mod indexed_list;
mod lirs;
mod list;
mod lru;
mod mq;
mod opt;
mod random_cache;

pub use distance::{lru_stack_distances, lru_stack_distances_indexed, next_locality_distances};
pub use indexed_list::{Fenwick, KeyedList, LazyMinTree, RecencyList};
pub use lirs::Lirs;
pub use list::{Iter, LinkedSlab, NodeHandle};
pub use lru::{CacheEvent, LruCache, LruStack};
pub use mq::{MqConfig, MultiQueue};
pub use opt::{next_use_times, OptCache, NEVER};
pub use random_cache::RandomCache;
