//! A slab-backed doubly-linked list with stable handles.
//!
//! Every stack in this workspace — plain LRU stacks, the server's `gLRU`
//! and ULC's `uniLRUstack` — needs O(1) insertion at the head, O(1) removal
//! from anywhere, and stable references to interior nodes (the paper's
//! *yardsticks* are exactly such references). [`LinkedSlab`] provides that
//! without unsafe code: nodes live in a `Vec`, links are indices, and freed
//! slots are recycled through a free list.
//!
//! Handles are generation-checked: using a handle after its node was removed
//! returns `None` (or panics in the `expect`-style accessors) instead of
//! silently addressing a recycled slot.

use std::fmt;

/// A stable, generation-checked reference to a node in a [`LinkedSlab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeHandle {
    index: u32,
    generation: u32,
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeHandle({}v{})", self.index, self.generation)
    }
}

impl Default for NodeHandle {
    /// A sentinel handle that never refers to a live node — every lookup
    /// through it misses. Exists so handles can fill inline scratch
    /// buffers (`SmallVec` placeholder slots) without inventing a fake
    /// live reference.
    fn default() -> Self {
        NodeHandle {
            index: NIL,
            generation: u32::MAX,
        }
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<T> {
    value: Option<T>,
    generation: u32,
    prev: u32,
    next: u32,
}

/// A doubly-linked list over a slab of nodes.
///
/// The *front* is the most-recently-inserted end (the top of an LRU stack);
/// the *back* is the bottom.
///
/// # Examples
///
/// ```
/// use ulc_cache::LinkedSlab;
///
/// let mut list = LinkedSlab::new();
/// let a = list.push_front('a');
/// let b = list.push_front('b');
/// assert_eq!(list.front(), Some(b));
/// assert_eq!(list.back(), Some(a));
/// assert_eq!(list.remove(a), Some('a'));
/// assert_eq!(list.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LinkedSlab<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    #[cfg(feature = "debug_invariants")]
    tick: u64,
}

impl<T> Default for LinkedSlab<T> {
    fn default() -> Self {
        LinkedSlab::new()
    }
}

impl<T> LinkedSlab<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LinkedSlab {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }

    /// Creates an empty list with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        LinkedSlab {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }

    /// Pre-sizes the slab for `capacity` total node slots: both the node
    /// vector and the free list are grown so that any interleaving of
    /// insertions and removals over at most `capacity` slots triggers no
    /// further allocation (the free list can hold every slot at once).
    /// Part of the zero-allocation steady-state contract (DESIGN.md §5f):
    /// a slab that reaches its occupancy high-water late in a run would
    /// otherwise pay a doubling realloc inside the measured phase.
    pub fn reserve(&mut self, capacity: usize) {
        self.nodes
            .reserve(capacity.saturating_sub(self.nodes.len()));
        self.free.reserve(capacity.saturating_sub(self.free.len()));
    }

    /// Number of nodes in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the list has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                let node = &mut self.nodes[i as usize];
                node.value = Some(value);
                i
            }
            None => {
                assert!(self.nodes.len() < NIL as usize, "LinkedSlab capacity");
                self.nodes.push(Node {
                    value: Some(value),
                    generation: 0,
                    prev: NIL,
                    next: NIL,
                });
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn valid(&self, h: NodeHandle) -> bool {
        self.nodes
            .get(h.index as usize)
            .is_some_and(|n| n.generation == h.generation && n.value.is_some())
    }

    /// Inserts at the front and returns a handle.
    pub fn push_front(&mut self, value: T) -> NodeHandle {
        let i = self.alloc(value);
        let gen = self.nodes[i as usize].generation;
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
        self.len += 1;
        self.debug_validate();
        NodeHandle {
            index: i,
            generation: gen,
        }
    }

    /// Inserts at the back and returns a handle.
    pub fn push_back(&mut self, value: T) -> NodeHandle {
        let i = self.alloc(value);
        let gen = self.nodes[i as usize].generation;
        self.nodes[i as usize].next = NIL;
        self.nodes[i as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = i;
        } else {
            self.head = i;
        }
        self.tail = i;
        self.len += 1;
        self.debug_validate();
        NodeHandle {
            index: i,
            generation: gen,
        }
    }

    /// Inserts `value` immediately before the node at `at`.
    ///
    /// Returns `None` (dropping nothing — the value is returned inside the
    /// error) if the handle is stale.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if `at` is stale.
    pub fn insert_before(&mut self, at: NodeHandle, value: T) -> Result<NodeHandle, T> {
        if !self.valid(at) {
            return Err(value);
        }
        let i = self.alloc(value);
        let gen = self.nodes[i as usize].generation;
        let prev = self.nodes[at.index as usize].prev;
        self.nodes[i as usize].prev = prev;
        self.nodes[i as usize].next = at.index;
        self.nodes[at.index as usize].prev = i;
        if prev != NIL {
            self.nodes[prev as usize].next = i;
        } else {
            self.head = i;
        }
        self.len += 1;
        self.debug_validate();
        Ok(NodeHandle {
            index: i,
            generation: gen,
        })
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Removes the node at `h`, returning its value, or `None` if stale.
    pub fn remove(&mut self, h: NodeHandle) -> Option<T> {
        if !self.valid(h) {
            return None;
        }
        self.unlink(h.index);
        let node = &mut self.nodes[h.index as usize];
        node.generation = node.generation.wrapping_add(1);
        let value = node.value.take();
        self.free.push(h.index);
        self.len -= 1;
        self.debug_validate();
        value
    }

    /// Moves the node at `h` to the front. Returns `false` if stale.
    pub fn move_to_front(&mut self, h: NodeHandle) -> bool {
        if !self.valid(h) {
            return false;
        }
        if self.head == h.index {
            return true;
        }
        self.unlink(h.index);
        self.nodes[h.index as usize].prev = NIL;
        self.nodes[h.index as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = h.index;
        } else {
            self.tail = h.index;
        }
        self.head = h.index;
        self.debug_validate();
        true
    }

    /// Moves the node at `h` to the back. Returns `false` if stale.
    pub fn move_to_back(&mut self, h: NodeHandle) -> bool {
        if !self.valid(h) {
            return false;
        }
        if self.tail == h.index {
            return true;
        }
        self.unlink(h.index);
        self.nodes[h.index as usize].next = NIL;
        self.nodes[h.index as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = h.index;
        } else {
            self.head = h.index;
        }
        self.tail = h.index;
        self.debug_validate();
        true
    }

    fn handle_at(&self, i: u32) -> Option<NodeHandle> {
        if i == NIL {
            None
        } else {
            Some(NodeHandle {
                index: i,
                generation: self.nodes[i as usize].generation,
            })
        }
    }

    /// Handle of the front node, if any.
    pub fn front(&self) -> Option<NodeHandle> {
        self.handle_at(self.head)
    }

    /// Handle of the back node, if any.
    pub fn back(&self) -> Option<NodeHandle> {
        self.handle_at(self.tail)
    }

    /// Handle of the node after `h` (toward the back), or `None`.
    pub fn next(&self, h: NodeHandle) -> Option<NodeHandle> {
        if !self.valid(h) {
            return None;
        }
        self.handle_at(self.nodes[h.index as usize].next)
    }

    /// Handle of the node before `h` (toward the front), or `None`.
    pub fn prev(&self, h: NodeHandle) -> Option<NodeHandle> {
        if !self.valid(h) {
            return None;
        }
        self.handle_at(self.nodes[h.index as usize].prev)
    }

    /// Borrows the value at `h`, or `None` if stale.
    pub fn get(&self, h: NodeHandle) -> Option<&T> {
        if !self.valid(h) {
            return None;
        }
        self.nodes[h.index as usize].value.as_ref()
    }

    /// Mutably borrows the value at `h`, or `None` if stale.
    pub fn get_mut(&mut self, h: NodeHandle) -> Option<&mut T> {
        if !self.valid(h) {
            return None;
        }
        self.nodes[h.index as usize].value.as_mut()
    }

    /// Iterates front-to-back over `(handle, &value)` pairs.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            list: self,
            cursor: self.head,
        }
    }

    /// Deep structural validation: forward/backward link symmetry, length
    /// accounting, and free-slot bookkeeping (every slot is either linked
    /// with a value or parked on the free list, never both).
    ///
    /// O(n). Panics with a description of the first violated invariant.
    /// With the `debug_invariants` feature this runs automatically after
    /// every mutating operation; it is always available to tests.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        let mut prev = NIL;
        let mut i = self.head;
        while i != NIL {
            let n = &self.nodes[i as usize];
            assert!(n.value.is_some(), "linked node {i} must hold a value");
            assert_eq!(n.prev, prev, "prev link of node {i} must point back");
            count += 1;
            assert!(count <= self.nodes.len(), "cycle in forward links");
            prev = i;
            i = n.next;
        }
        assert_eq!(self.tail, prev, "tail must be the last reachable node");
        assert_eq!(self.len, count, "len must count the reachable nodes");
        assert_eq!(
            self.free.len(),
            self.nodes.len() - count,
            "every unlinked slot must be on the free list"
        );
        for &f in &self.free {
            assert!(
                self.nodes[f as usize].value.is_none(),
                "free slot {f} must be vacant"
            );
        }
    }

    /// Runs [`Self::check_invariants`] when the `debug_invariants`
    /// feature is enabled; a no-op (and fully optimised out) otherwise.
    /// The O(n) sweep is amortised: every mutation while the list is
    /// small, every 256th mutation once it grows.
    #[inline]
    fn debug_validate(&mut self) {
        #[cfg(feature = "debug_invariants")]
        {
            self.tick += 1;
            if self.len < 64 || self.tick.is_multiple_of(256) {
                self.check_invariants();
            }
        }
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        let mut i = self.head;
        while i != NIL {
            let next = self.nodes[i as usize].next;
            let node = &mut self.nodes[i as usize];
            node.value = None;
            node.generation = node.generation.wrapping_add(1);
            self.free.push(i);
            i = next;
        }
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        self.debug_validate();
    }
}

/// Front-to-back iterator over a [`LinkedSlab`]. Created by
/// [`LinkedSlab::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    list: &'a LinkedSlab<T>,
    cursor: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (NodeHandle, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let i = self.cursor;
        let node = &self.list.nodes[i as usize];
        self.cursor = node.next;
        Some((
            NodeHandle {
                index: i,
                generation: node.generation,
            },
            node.value.as_ref().expect("linked nodes hold values"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect<T: Clone>(list: &LinkedSlab<T>) -> Vec<T> {
        list.iter().map(|(_, v)| v.clone()).collect()
    }

    #[test]
    fn push_front_orders_lifo() {
        let mut l = LinkedSlab::new();
        for i in 0..5 {
            l.push_front(i);
        }
        assert_eq!(collect(&l), vec![4, 3, 2, 1, 0]);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn push_back_orders_fifo() {
        let mut l = LinkedSlab::new();
        for i in 0..5 {
            l.push_back(i);
        }
        assert_eq!(collect(&l), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn remove_middle_relinks() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let b = l.push_back('b');
        let _c = l.push_back('c');
        assert_eq!(l.remove(b), Some('b'));
        assert_eq!(collect(&l), vec!['a', 'c']);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        assert_eq!(l.remove(a), Some(1));
        assert_eq!(l.front(), l.back());
        assert_eq!(l.remove(b), Some(2));
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }

    #[test]
    fn stale_handle_is_rejected_even_after_slot_reuse() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.remove(a);
        let b = l.push_back(2); // reuses slot 0
        assert_eq!(l.get(a), None);
        assert_eq!(l.remove(a), None);
        assert!(!l.move_to_front(a));
        assert_eq!(l.get(b), Some(&2));
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = LinkedSlab::new();
        let a = l.push_back('a');
        let _b = l.push_back('b');
        let _c = l.push_back('c');
        assert!(l.move_to_front(a));
        assert_eq!(collect(&l), vec!['a', 'b', 'c']);
        let back = l.back().unwrap();
        assert!(l.move_to_front(back));
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
    }

    #[test]
    fn move_to_back_reorders() {
        let mut l = LinkedSlab::new();
        let a = l.push_back('a');
        let _ = l.push_back('b');
        assert!(l.move_to_back(a));
        assert_eq!(collect(&l), vec!['b', 'a']);
    }

    #[test]
    fn move_front_node_to_front_is_noop() {
        let mut l = LinkedSlab::new();
        let _ = l.push_back('a');
        let b = l.push_front('b');
        assert!(l.move_to_front(b));
        assert_eq!(collect(&l), vec!['b', 'a']);
    }

    #[test]
    fn insert_before_links_correctly() {
        let mut l = LinkedSlab::new();
        let a = l.push_back('a');
        let c = l.push_back('c');
        let b = l.insert_before(c, 'b').unwrap();
        assert_eq!(collect(&l), vec!['a', 'b', 'c']);
        assert_eq!(l.prev(b), Some(a));
        assert_eq!(l.next(b), Some(c));
        // Insert before the head updates the head.
        let z = l.insert_before(a, 'z').unwrap();
        assert_eq!(l.front(), Some(z));
        assert_eq!(collect(&l), vec!['z', 'a', 'b', 'c']);
    }

    #[test]
    fn insert_before_stale_handle_returns_value() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.remove(a);
        assert_eq!(l.insert_before(a, 9), Err(9));
    }

    #[test]
    fn next_prev_traversal() {
        let mut l = LinkedSlab::new();
        let handles: Vec<_> = (0..4).map(|i| l.push_back(i)).collect();
        let mut cur = l.front();
        let mut seen = Vec::new();
        while let Some(h) = cur {
            seen.push(*l.get(h).unwrap());
            cur = l.next(h);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(l.prev(handles[0]), None);
        assert_eq!(l.next(handles[3]), None);
        assert_eq!(l.prev(handles[2]), Some(handles[1]));
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(10);
        *l.get_mut(a).unwrap() += 5;
        assert_eq!(l.get(a), Some(&15));
    }

    #[test]
    fn clear_resets_and_invalidates() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.push_back(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.get(a), None);
        // Reusable after clear.
        l.push_back(3);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut l = LinkedSlab::new();
        for _ in 0..100 {
            let h = l.push_front(0u8);
            l.remove(h);
        }
        assert!(l.nodes.len() <= 2, "slab grew to {}", l.nodes.len());
    }

    #[test]
    fn heavy_random_ops_keep_invariants() {
        // Deterministic pseudo-random workout: compare against a Vec model.
        let mut l = LinkedSlab::new();
        let mut model: Vec<u64> = Vec::new();
        let mut handles: Vec<(NodeHandle, u64)> = Vec::new();
        let mut x = 0x12345678u64;
        for step in 0..5000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match x % 4 {
                0 | 1 => {
                    let h = l.push_front(step);
                    model.insert(0, step);
                    handles.push((h, step));
                }
                2 if !handles.is_empty() => {
                    let pick = (x / 7) as usize % handles.len();
                    let (h, v) = handles.swap_remove(pick);
                    if let Some(got) = l.remove(h) {
                        assert_eq!(got, v);
                        let pos = model.iter().position(|&m| m == v).unwrap();
                        model.remove(pos);
                    }
                }
                _ if !handles.is_empty() => {
                    let pick = (x / 11) as usize % handles.len();
                    let (h, v) = handles[pick];
                    if l.move_to_front(h) {
                        let pos = model.iter().position(|&m| m == v).unwrap();
                        model.remove(pos);
                        model.insert(0, v);
                    }
                }
                _ => {}
            }
            assert_eq!(l.len(), model.len());
        }
        let got: Vec<u64> = l.iter().map(|(_, &v)| v).collect();
        assert_eq!(got, model);
    }
}
