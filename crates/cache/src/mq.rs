//! The Multi-Queue (MQ) replacement algorithm.
//!
//! MQ (Zhou, Philbin & Li, USENIX 2001) is the paper's representative of
//! the "re-design the low-level cache replacement" school (§5): it is built
//! for *second-level* buffer caches, whose request stream has had its
//! recency locality filtered out by the client cache. MQ keeps `m` LRU
//! queues; a block with reference count `f` lives in queue `⌊log2 f⌋`
//! (capped), so frequently referenced blocks survive long recency gaps.
//! Blocks whose `lifeTime` expires are demoted queue by queue, and a ghost
//! queue (`Qout`) remembers the reference counts of recently evicted blocks.
//!
//! In the Figure 7 evaluation MQ runs at the server below an independent
//! LRU client, exactly as its authors intended.

use crate::{CacheEvent, LruStack};
use std::collections::HashMap;
use std::hash::Hash;

/// Configuration for a [`MultiQueue`] cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MqConfig {
    /// Number of queues (`m` in the MQ paper). The paper uses 8.
    pub num_queues: usize,
    /// `lifeTime`: accesses a block may sit unreferenced in a queue before
    /// being demoted to the next lower queue.
    pub life_time: u64,
    /// Capacity of the ghost queue `Qout`, in entries. The MQ paper sizes
    /// it as a multiple (4×) of the cache size.
    pub ghost_capacity: usize,
}

impl MqConfig {
    /// The MQ paper's defaults for a cache of `capacity` blocks: 8 queues,
    /// `lifeTime` of 2× capacity accesses and a 4× ghost queue.
    pub fn for_capacity(capacity: usize) -> Self {
        MqConfig {
            num_queues: 8,
            life_time: (capacity as u64).max(1) * 2,
            ghost_capacity: capacity * 4,
        }
    }
}

#[derive(Clone, Debug)]
struct MqMeta {
    queue: usize,
    frequency: u64,
    expire_at: u64,
}

/// A capacity-bounded Multi-Queue cache.
///
/// # Examples
///
/// ```
/// use ulc_cache::{MqConfig, MultiQueue};
///
/// let mut mq = MultiQueue::new(64, MqConfig::for_capacity(64));
/// mq.access(1);
/// mq.access(1);
/// assert!(mq.contains(&1));
/// assert_eq!(mq.frequency(&1), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct MultiQueue<K: Eq + Hash + Clone> {
    queues: Vec<LruStack<K>>,
    meta: HashMap<K, MqMeta>,
    ghost: LruStack<K>,
    ghost_freq: HashMap<K, u64>,
    capacity: usize,
    config: MqConfig,
    now: u64,
}

impl<K: Eq + Hash + Clone> MultiQueue<K> {
    /// Creates an MQ cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, `config.num_queues` is zero, or
    /// `config.life_time` is zero.
    pub fn new(capacity: usize, config: MqConfig) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(config.num_queues > 0, "MQ needs at least one queue");
        assert!(config.life_time > 0, "MQ lifeTime must be positive");
        MultiQueue {
            queues: (0..config.num_queues).map(|_| LruStack::new()).collect(),
            meta: HashMap::new(),
            ghost: LruStack::new(),
            ghost_freq: HashMap::new(),
            capacity,
            config,
            now: 0,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Returns `true` if no keys are cached.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Returns `true` if `key` is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.meta.contains_key(key)
    }

    /// The reference count MQ has recorded for a cached `key`.
    pub fn frequency(&self, key: &K) -> Option<u64> {
        self.meta.get(key).map(|m| m.frequency)
    }

    /// The queue index a block with reference count `f` belongs to:
    /// `min(⌊log2 f⌋, m-1)`.
    fn queue_for(&self, frequency: u64) -> usize {
        let q = 63 - frequency.max(1).leading_zeros() as usize;
        q.min(self.config.num_queues - 1)
    }

    /// The MQ `Adjust` step: at most one expired head per queue is demoted
    /// to the next lower queue.
    fn adjust(&mut self) {
        for q in (1..self.config.num_queues).rev() {
            let Some(head) = self.queues[q].bottom().cloned() else {
                continue;
            };
            let expired = self
                .meta
                .get(&head)
                .is_some_and(|m| m.expire_at < self.now);
            if expired {
                self.queues[q].remove(&head);
                // lint:allow(hot-path-alloc) K is Copy (BlockId) on every simulation path; K::clone is a move
                self.queues[q - 1].touch(head.clone());
                let m = self.meta.get_mut(&head).expect("head has metadata");
                m.queue = q - 1;
                m.expire_at = self.now + self.config.life_time;
            }
        }
    }

    fn remember_ghost(&mut self, key: K, frequency: u64) {
        // lint:allow(hot-path-alloc) K is Copy (BlockId) on every simulation path; K::clone is a move
        self.ghost.touch(key.clone());
        self.ghost_freq.insert(key, frequency);
        while self.ghost.len() > self.config.ghost_capacity {
            if let Some(old) = self.ghost.pop_bottom() {
                self.ghost_freq.remove(&old);
            }
        }
    }

    fn evict(&mut self) -> Option<K> {
        let victim = self
            .queues
            .iter()
            .find_map(|q| q.bottom().cloned())?;
        let meta = self.meta.remove(&victim).expect("victim has metadata");
        self.queues[meta.queue].remove(&victim);
        // lint:allow(hot-path-alloc) K is Copy (BlockId) on every simulation path; K::clone is a move
        self.remember_ghost(victim.clone(), meta.frequency);
        Some(victim)
    }

    /// References `key`.
    pub fn access(&mut self, key: K) -> CacheEvent<K> {
        self.now += 1;
        let num_queues = self.config.num_queues;
        let queue_for = |frequency: u64| -> usize {
            let q = 63 - frequency.max(1).leading_zeros() as usize;
            q.min(num_queues - 1)
        };
        let event = if let Some(m) = self.meta.get_mut(&key) {
            m.frequency += 1;
            m.expire_at = self.now + self.config.life_time;
            let new_q = queue_for(m.frequency);
            let old_q = m.queue;
            m.queue = new_q;
            if new_q != old_q {
                self.queues[old_q].remove(&key);
            }
            self.queues[new_q].touch(key);
            CacheEvent::Hit
        } else {
            let evicted = if self.meta.len() == self.capacity {
                self.evict()
            } else {
                None
            };
            // A returning ghost resumes its remembered count.
            let remembered = self.ghost_freq.remove(&key).unwrap_or(0);
            self.ghost.remove(&key);
            let frequency = remembered + 1;
            let queue = self.queue_for(frequency);
            // lint:allow(hot-path-alloc) K is Copy (BlockId) on every simulation path; K::clone is a move
            self.queues[queue].touch(key.clone());
            self.meta.insert(
                key,
                MqMeta {
                    queue,
                    frequency,
                    expire_at: self.now + self.config.life_time,
                },
            );
            CacheEvent::Miss { evicted }
        };
        self.adjust();
        event
    }

    /// Removes `key` from the cache without ghost bookkeeping, returning
    /// `true` if it was present. Used when an upper level takes exclusive
    /// ownership of the block.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.meta.remove(key) {
            Some(m) => {
                self.queues[m.queue].remove(key);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mq(capacity: usize) -> MultiQueue<u64> {
        MultiQueue::new(capacity, MqConfig::for_capacity(capacity))
    }

    #[test]
    fn queue_index_is_log2_of_frequency() {
        let m = mq(8);
        assert_eq!(m.queue_for(1), 0);
        assert_eq!(m.queue_for(2), 1);
        assert_eq!(m.queue_for(3), 1);
        assert_eq!(m.queue_for(4), 2);
        assert_eq!(m.queue_for(255), 7);
        assert_eq!(m.queue_for(1 << 30), 7); // capped at m-1
    }

    #[test]
    fn basic_hit_miss() {
        let mut m = mq(4);
        assert!(!m.access(1).is_hit());
        assert!(m.access(1).is_hit());
        assert_eq!(m.frequency(&1), Some(2));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut m = mq(4);
        for i in 0..100 {
            m.access(i % 13);
            assert!(m.len() <= 4);
        }
    }

    #[test]
    fn frequent_blocks_survive_a_scan() {
        // The defining MQ property: a hot block outlives a long scan that
        // would flush it out of a plain LRU of the same size.
        let capacity = 16;
        let mut m = mq(capacity);
        for _ in 0..8 {
            m.access(0);
        }
        for i in 1..capacity as u64 {
            m.access(1000 + i);
        }
        assert!(
            m.contains(&0),
            "hot block should survive the cold scan under MQ"
        );
        let mut lru = crate::LruCache::new(capacity);
        for _ in 0..8 {
            lru.access(0u64);
        }
        for i in 0..capacity as u64 {
            lru.access(1000 + i);
        }
        assert!(!lru.contains(&0), "LRU flushes the hot block");
    }

    #[test]
    fn ghost_restores_frequency() {
        let mut m = MultiQueue::new(
            2,
            MqConfig {
                num_queues: 8,
                life_time: 2,
                ghost_capacity: 64,
            },
        );
        for _ in 0..5 {
            m.access(1);
        }
        // With a tiny lifeTime, block 1 expires and descends queue by
        // queue while fresh blocks stream past, and is finally evicted.
        let mut i = 0u64;
        while m.contains(&1) {
            i += 1;
            m.access(100 + i);
            assert!(i < 100, "block 1 should eventually be evicted");
        }
        // On return, MQ's ghost queue remembers the ~5 prior references.
        m.access(1);
        assert!(m.frequency(&1).unwrap() >= 6);
    }

    #[test]
    fn expiry_demotes_idle_blocks() {
        let mut m = MultiQueue::new(
            4,
            MqConfig {
                num_queues: 4,
                life_time: 3,
                ghost_capacity: 8,
            },
        );
        for _ in 0..4 {
            m.access(1); // frequency 4 → queue 2
        }
        assert_eq!(m.meta[&1].queue, 2);
        // Let it expire twice while touching other blocks.
        for i in 0..12u64 {
            m.access(100 + i % 3);
        }
        assert!(
            m.meta.get(&1).map_or(true, |meta| meta.queue < 2),
            "idle block should be demoted or evicted"
        );
    }

    #[test]
    fn eviction_prefers_lowest_queue() {
        let mut m = MultiQueue::new(
            3,
            MqConfig {
                num_queues: 4,
                life_time: 1_000_000,
                ghost_capacity: 8,
            },
        );
        m.access(1);
        m.access(1); // queue 1
        m.access(2); // queue 0
        m.access(3); // queue 0
        // Cache full; next miss evicts from queue 0, not block 1.
        m.access(4);
        assert!(m.contains(&1));
        assert!(!m.contains(&2), "oldest queue-0 block evicted first");
    }

    #[test]
    fn remove_is_silent() {
        let mut m = mq(4);
        m.access(1);
        assert!(m.remove(&1));
        assert!(!m.remove(&1));
        assert!(!m.contains(&1));
        // No ghost entry was created by remove().
        m.access(1);
        assert_eq!(m.frequency(&1), Some(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MultiQueue::<u64>::new(0, MqConfig::for_capacity(1));
    }
}
