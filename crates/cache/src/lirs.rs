//! The LIRS replacement policy (Jiang & Zhang, SIGMETRICS 2002).
//!
//! §5 of the ULC paper credits LIRS as the direct motivation for the
//! LLD-R measure: "The blocks with small recencies at which they get
//! accessed are kept in the cache. This single-level cache replacement
//! motivates us to investigate if the last locality distance, LLD, can be
//! effectively used to exploit hierarchical locality." LIRS is, in
//! effect, the one-level special case of ULC's ranking: blocks with low
//! inter-reference recency (IRR) form the protected **LIR** set; the rest
//! (**HIR**) share a small victim pool.
//!
//! This implementation follows the original algorithm: a recency stack
//! `S` holding LIR blocks plus recent HIR history, a FIFO-ish queue `Q`
//! of resident HIR blocks, stack pruning, and LIR/HIR status exchanges on
//! low-recency re-references.

use crate::{CacheEvent, LruStack};
use fxhash::FxHashMap;
use std::hash::Hash;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Lir,
    /// HIR; the flag records residency.
    Hir { resident: bool },
}

/// A capacity-bounded LIRS cache.
///
/// # Examples
///
/// ```
/// use ulc_cache::Lirs;
///
/// let mut cache = Lirs::new(100, 0.05);
/// cache.access(1);
/// cache.access(1);
/// assert!(cache.contains(&1));
/// ```
#[derive(Clone, Debug)]
pub struct Lirs<K: Eq + Hash + Clone> {
    /// Recency stack `S` (top = most recent); holds LIR blocks and HIR
    /// blocks (resident or history-only) with recent references.
    stack: LruStack<K>,
    /// Resident-HIR queue `Q`; its *bottom* is the eviction victim.
    queue: LruStack<K>,
    status: FxHashMap<K, Status>,
    capacity: usize,
    /// Target number of LIR blocks (capacity minus the HIR pool).
    lir_capacity: usize,
    lir_count: usize,
    resident: usize,
    /// Bound on history-only entries kept in `S`.
    history_limit: usize,
    #[cfg(feature = "debug_invariants")]
    tick: u64,
}

impl<K: Eq + Hash + Clone> Lirs<K> {
    /// Creates a LIRS cache of `capacity` blocks, reserving
    /// `hir_fraction` of it (at least one block) for the resident-HIR
    /// pool. The LIRS paper uses ~1 %.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `hir_fraction` is outside `[0, 1)`.
    pub fn new(capacity: usize, hir_fraction: f64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(
            (0.0..1.0).contains(&hir_fraction),
            "HIR fraction must lie in [0, 1)"
        );
        let hir = ((capacity as f64 * hir_fraction) as usize)
            .max(1)
            .min(capacity.saturating_sub(1).max(1));
        let lir_capacity = (capacity - hir).max(1);
        Lirs {
            stack: LruStack::new(),
            queue: LruStack::new(),
            status: FxHashMap::default(),
            capacity,
            lir_capacity,
            lir_count: 0,
            resident: 0,
            history_limit: 2 * capacity,
            #[cfg(feature = "debug_invariants")]
            tick: 0,
        }
    }

    /// Deep structural validation of the LIRS bookkeeping: residency and
    /// LIR counts match the status table, `Q` holds exactly the resident
    /// HIR blocks, every LIR block and every history-only entry lives in
    /// `S`, the bottom of `S` is always LIR (stack pruning), and the
    /// capacity bounds hold. O(n). Panics on the first violation.
    pub fn check_invariants(&self) {
        assert!(self.resident <= self.capacity, "residency within capacity");
        assert!(self.lir_count <= self.lir_capacity, "LIR set within its bound");
        let (mut lir, mut hir_resident, mut hir_history) = (0usize, 0usize, 0usize);
        for (key, status) in self.status.iter() {
            match status {
                Status::Lir => {
                    lir += 1;
                    assert!(self.stack.contains(key), "LIR block must be in S");
                    assert!(!self.queue.contains(key), "LIR block must not be in Q");
                }
                Status::Hir { resident: true } => {
                    hir_resident += 1;
                    assert!(self.queue.contains(key), "resident HIR must be in Q");
                }
                Status::Hir { resident: false } => {
                    hir_history += 1;
                    assert!(self.stack.contains(key), "history entry must be in S");
                    assert!(!self.queue.contains(key), "history entry must not be in Q");
                }
            }
        }
        assert_eq!(self.lir_count, lir, "lir_count matches the status table");
        assert_eq!(
            self.resident,
            lir + hir_resident,
            "resident count matches the status table"
        );
        assert_eq!(
            self.queue.len(),
            hir_resident,
            "Q holds exactly the resident HIR blocks"
        );
        assert_eq!(
            self.status.len(),
            lir + hir_resident + hir_history,
            "status table covers exactly the tracked blocks"
        );
        for key in self.stack.iter() {
            assert!(
                self.status.contains_key(key),
                "every S entry must have a status"
            );
        }
        if let Some(bottom) = self.stack.bottom() {
            assert!(
                matches!(self.status.get(bottom), Some(Status::Lir)),
                "the bottom of S must be a LIR block"
            );
        }
    }

    /// Amortised feature-gated self-check; see `LinkedSlab::debug_validate`.
    #[inline]
    fn debug_validate(&mut self) {
        #[cfg(feature = "debug_invariants")]
        {
            self.tick += 1;
            if self.status.len() < 64 || self.tick.is_multiple_of(256) {
                self.check_invariants();
            }
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// Returns `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Returns `true` if `key` is resident.
    pub fn contains(&self, key: &K) -> bool {
        matches!(
            self.status.get(key),
            Some(Status::Lir) | Some(Status::Hir { resident: true })
        )
    }

    /// Number of blocks currently in the protected LIR set.
    pub fn lir_len(&self) -> usize {
        self.lir_count
    }

    /// Removes history-only entries from the bottom of `S`, so the bottom
    /// is always a LIR block (stack pruning).
    fn prune(&mut self) {
        while let Some(bottom) = self.stack.bottom().cloned() {
            match self.status.get(&bottom) {
                Some(Status::Lir) => break,
                Some(Status::Hir { resident }) => {
                    let resident = *resident;
                    self.stack.remove(&bottom);
                    if !resident {
                        self.status.remove(&bottom);
                    }
                }
                None => {
                    self.stack.remove(&bottom);
                }
            }
        }
    }

    /// Demotes the LIR block at the bottom of `S` to resident HIR (tail
    /// of `Q`).
    fn demote_bottom_lir(&mut self) {
        self.prune();
        let Some(bottom) = self.stack.bottom().cloned() else {
            return;
        };
        debug_assert!(matches!(self.status.get(&bottom), Some(Status::Lir)));
        self.stack.remove(&bottom);
        self.status.insert(
            bottom.clone(),
            Status::Hir { resident: true },
        );
        self.queue.touch(bottom);
        self.lir_count -= 1;
        self.prune();
    }

    /// Evicts the resident-HIR victim (front of `Q`).
    fn evict_hir(&mut self) -> Option<K> {
        let victim = self.queue.pop_bottom()?;
        // Keep its stack history (if any) as a non-resident HIR entry.
        if self.stack.contains(&victim) {
            self.status.insert(victim.clone(), Status::Hir { resident: false });
        } else {
            self.status.remove(&victim);
        }
        self.resident -= 1;
        Some(victim)
    }

    /// Bounds the number of non-resident history entries.
    fn enforce_history_limit(&mut self) {
        while self.stack.len() > self.lir_capacity + self.history_limit {
            let Some(bottom) = self.stack.bottom().cloned() else {
                break;
            };
            if matches!(self.status.get(&bottom), Some(Status::Lir)) {
                break;
            }
            self.stack.remove(&bottom);
            if matches!(self.status.get(&bottom), Some(Status::Hir { resident: false })) {
                self.status.remove(&bottom);
            }
        }
    }

    /// References `key`.
    pub fn access(&mut self, key: K) -> CacheEvent<K> {
        let event = self.access_inner(key);
        self.debug_validate();
        event
    }

    fn access_inner(&mut self, key: K) -> CacheEvent<K> {
        match self.status.get(&key).copied() {
            Some(Status::Lir) => {
                let was_bottom = self.stack.bottom() == Some(&key);
                self.stack.touch(key);
                if was_bottom {
                    self.prune();
                }
                CacheEvent::Hit
            }
            Some(Status::Hir { resident: true }) => {
                let in_stack = self.stack.contains(&key);
                self.stack.touch(key.clone());
                if in_stack {
                    // Low IRR: promote to LIR; the coldest LIR makes room.
                    self.status.insert(key.clone(), Status::Lir);
                    self.queue.remove(&key);
                    self.lir_count += 1;
                    if self.lir_count > self.lir_capacity {
                        self.demote_bottom_lir();
                    }
                } else {
                    // No recent history: stay HIR, refresh queue position.
                    self.queue.touch(key);
                }
                CacheEvent::Hit
            }
            Some(Status::Hir { resident: false }) | None => {
                // Miss: make room in the HIR pool first.
                let evicted = if self.resident == self.capacity {
                    self.evict_hir()
                } else {
                    None
                };
                self.resident += 1;
                let had_history = self.stack.contains(&key);
                self.stack.touch(key.clone());
                if self.lir_count < self.lir_capacity {
                    // Cold start: fill the LIR set directly.
                    self.status.insert(key, Status::Lir);
                    self.lir_count += 1;
                } else if had_history {
                    // Re-referenced within the LIR recency horizon:
                    // joins the LIR set, displacing the coldest LIR.
                    self.status.insert(key, Status::Lir);
                    self.lir_count += 1;
                    self.demote_bottom_lir();
                } else {
                    self.status.insert(key.clone(), Status::Hir { resident: true });
                    self.queue.touch(key);
                }
                self.enforce_history_limit();
                CacheEvent::Miss { evicted }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;

    #[test]
    fn never_exceeds_capacity() {
        let mut lirs = Lirs::new(8, 0.25);
        for i in 0..500u64 {
            lirs.access(i % 23);
            assert!(lirs.len() <= 8, "len = {}", lirs.len());
        }
    }

    #[test]
    fn hit_iff_resident_model() {
        let mut lirs = Lirs::new(6, 0.34);
        let mut resident = std::collections::HashSet::new();
        let mut x = 5u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 33) % 17;
            let event = lirs.access(k);
            assert_eq!(event.is_hit(), resident.contains(&k), "key {k}");
            if let CacheEvent::Miss { evicted } = event {
                if let Some(v) = evicted {
                    assert!(resident.remove(&v));
                }
                resident.insert(k);
            }
        }
    }

    #[test]
    fn beats_lru_on_weak_locality_loop() {
        // The LIRS paper's motivating case: a loop slightly larger than
        // the cache. LRU gets zero; LIRS keeps most of the LIR set
        // resident.
        let capacity = 100;
        let loop_len = 120u64;
        let mut lirs = Lirs::new(capacity, 0.05);
        let mut lru = LruCache::new(capacity);
        let mut lirs_hits = 0;
        let mut lru_hits = 0;
        for i in 0..120 * 50 {
            let k = i % loop_len;
            if lirs.access(k).is_hit() {
                lirs_hits += 1;
            }
            if lru.access(k).is_hit() {
                lru_hits += 1;
            }
        }
        assert_eq!(lru_hits, 0);
        assert!(
            lirs_hits > 120 * 50 / 2,
            "LIRS hits = {lirs_hits} of {}",
            120 * 50
        );
    }

    #[test]
    fn scan_does_not_flush_the_lir_set() {
        let mut lirs = Lirs::new(50, 0.1);
        // Build a hot LIR set.
        for _ in 0..5 {
            for i in 0..40u64 {
                lirs.access(i);
            }
        }
        // A long one-shot scan.
        for i in 1000..3000u64 {
            lirs.access(i);
        }
        // The hot set is still resident.
        let mut hits = 0;
        for i in 0..40u64 {
            if lirs.access(i).is_hit() {
                hits += 1;
            }
        }
        assert!(hits >= 35, "hot-set hits after scan = {hits}/40");
    }

    #[test]
    fn lru_friendly_traffic_is_not_much_worse_than_lru() {
        // Temporally clustered accesses: LIRS should track LRU closely.
        let capacity = 64;
        let mut lirs = Lirs::new(capacity, 0.02);
        let mut lru = LruCache::new(capacity);
        let mut stack: Vec<u64> = (0..256).collect();
        let mut x = 3u64;
        let mut lirs_hits = 0usize;
        let mut lru_hits = 0usize;
        for _ in 0..20_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(13);
            // Geometric-ish depth.
            let d = ((x >> 33) % 64) as usize * ((x >> 50) % 2) as usize
                + ((x >> 12) % 32) as usize;
            let k = stack.remove(d.min(stack.len() - 1));
            stack.insert(0, k);
            if lirs.access(k).is_hit() {
                lirs_hits += 1;
            }
            if lru.access(k).is_hit() {
                lru_hits += 1;
            }
        }
        assert!(
            lirs_hits as f64 > 0.85 * lru_hits as f64,
            "LIRS {lirs_hits} vs LRU {lru_hits}"
        );
    }

    #[test]
    fn lir_set_respects_its_capacity() {
        let mut lirs = Lirs::new(10, 0.3);
        for i in 0..200u64 {
            lirs.access(i % 9);
            assert!(lirs.lir_len() <= 7, "lir = {}", lirs.lir_len());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Lirs::<u8>::new(0, 0.1);
    }
}
