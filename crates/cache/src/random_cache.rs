//! RANDOM replacement.
//!
//! §2.2 of the paper uses RANDOM as the floor for the `random` trace: "all
//! the on-line algorithms could perform the same as RANDOM replacement for
//! trace random at most … which has a hit rate proportional to the cache
//! size".

use crate::CacheEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::Hash;

/// A capacity-bounded cache that evicts a uniformly random resident block.
///
/// # Examples
///
/// ```
/// use ulc_cache::RandomCache;
///
/// let mut c = RandomCache::new(2, 42);
/// c.access(1);
/// c.access(2);
/// assert!(c.access(1).is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct RandomCache<K: Eq + Hash + Clone> {
    slots: Vec<K>,
    index: HashMap<K, usize>,
    capacity: usize,
    rng: StdRng,
}

impl<K: Eq + Hash + Clone> RandomCache<K> {
    /// Creates a cache holding at most `capacity` keys; evictions are
    /// deterministic under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        RandomCache {
            slots: Vec::with_capacity(capacity),
            index: HashMap::new(),
            capacity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no keys are cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns `true` if `key` is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// References `key`, evicting a random victim on a miss when full.
    pub fn access(&mut self, key: K) -> CacheEvent<K> {
        if self.index.contains_key(&key) {
            return CacheEvent::Hit;
        }
        let evicted = if self.slots.len() == self.capacity {
            let victim_slot = self.rng.gen_range(0..self.slots.len());
            let victim = self.slots[victim_slot].clone();
            self.index.remove(&victim);
            self.slots[victim_slot] = key.clone();
            self.index.insert(key, victim_slot);
            Some(victim)
        } else {
            self.slots.push(key.clone());
            self.index.insert(key, self.slots.len() - 1);
            None
        };
        CacheEvent::Miss { evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_exceeds_capacity() {
        let mut c = RandomCache::new(5, 1);
        for i in 0..200u64 {
            c.access(i % 17);
            assert!(c.len() <= 5);
        }
    }

    #[test]
    fn hit_rate_proportional_to_size_on_uniform_traffic() {
        // The §2.2 claim: RANDOM's hit rate ≈ capacity / universe.
        let universe = 200u64;
        let mut x = 3u64;
        let mut draw = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) % universe
        };
        for capacity in [20usize, 100] {
            let mut c = RandomCache::new(capacity, 7);
            // Warm up.
            for _ in 0..5000 {
                c.access(draw());
            }
            let mut hits = 0;
            let n = 50_000;
            for _ in 0..n {
                if c.access(draw()).is_hit() {
                    hits += 1;
                }
            }
            let rate = hits as f64 / n as f64;
            let expect = capacity as f64 / universe as f64;
            assert!(
                (rate - expect).abs() < 0.05,
                "capacity {capacity}: rate {rate} vs expected {expect}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut c = RandomCache::new(3, 99);
            let mut hits = 0;
            for i in 0..1000u64 {
                if c.access(i * 7 % 11).is_hit() {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn index_stays_consistent_after_evictions() {
        let mut c = RandomCache::new(2, 5);
        for i in 0..100u64 {
            c.access(i);
        }
        for (k, &slot) in &c.index {
            assert_eq!(&c.slots[slot], k);
        }
        assert_eq!(c.slots.len(), c.index.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = RandomCache::<u8>::new(0, 1);
    }
}
