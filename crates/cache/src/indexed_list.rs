//! O(log n) indexed ranking lists — the order-statistic substrate behind
//! the measures framework and the trace generators.
//!
//! The measures of §2 all maintain an *ordered list* of blocks and ask two
//! questions per reference: "what is this block's rank?" and "how far did
//! it move?". Naive `Vec` lists answer both in O(D) per reference (D =
//! distinct blocks). This module answers them in O(log D):
//!
//! * [`Fenwick`] — a binary indexed tree over prefix sums with O(log n)
//!   point update, prefix count and order-statistic select;
//! * [`KeyedList`] — a set of *precomputed* sort keys (dense indices into
//!   a key universe) with O(log n) `insert_at_key` / `remove` /
//!   `rank_of_key`, for measures whose per-block value is assigned at
//!   access time (ND, NLD);
//! * [`RecencyList`] — a stamp-keyed LRU list: `move_to_front` allocates a
//!   strictly decreasing slot per front insertion, so a block's recency
//!   rank is the count of occupied slots below its own — O(log n) for
//!   `rank_of`, `move_to_front`, `select` and `remove`, with amortized
//!   O(log n) rebuilds when the slot space is exhausted;
//! * [`LazyMinTree`] — a lazy range-add min segment tree, used by the
//!   LLD-R analyzer to detect blocks whose recency has just overtaken
//!   their last locality distance.
//!
//! # Examples
//!
//! ```
//! use ulc_cache::RecencyList;
//!
//! let mut list = RecencyList::new(3);
//! for id in [0, 1, 2, 0] {
//!     list.move_to_front(id);
//! }
//! assert_eq!(list.rank_of(0), Some(0)); // re-accessed: back on top
//! assert_eq!(list.rank_of(1), Some(2));
//! assert_eq!(list.select(1), Some(2));
//! ```

/// Fenwick (binary indexed) tree over `i64` prefix sums.
///
/// Indices are `0..n`. Beyond point update and prefix sums it offers the
/// order-statistic [`Fenwick::select`] via binary lifting, which is what
/// turns a 0/1 occupancy array into an O(log n) ranked list.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<i64>,
    n: usize,
}

impl Fenwick {
    /// An all-zero tree over indices `0..n`.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
            n,
        }
    }

    /// Number of indexable positions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree has no positions at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `delta` at index `i`.
    pub fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of entries `0..=i`.
    pub fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of entries strictly below `i` (zero when `i == 0`).
    pub fn count_below(&self, i: usize) -> i64 {
        if i == 0 {
            0
        } else {
            self.prefix(i - 1)
        }
    }

    /// Sum of all entries.
    pub fn total(&self) -> i64 {
        if self.n == 0 {
            0
        } else {
            self.prefix(self.n - 1)
        }
    }

    /// The value stored at index `i`.
    pub fn get(&self, i: usize) -> i64 {
        self.prefix(i) - self.count_below(i)
    }

    /// Deep structural validation for the workspace's usage contract:
    /// the node array covers `0..=n` and every point value is
    /// non-negative (all users store occupancy bits or multiplicities,
    /// which [`Fenwick::select`] requires).
    ///
    /// O(n log n). Panics on the first violation. Available to tests
    /// unconditionally; the composite structures built on `Fenwick`
    /// call it from their own `check_invariants`.
    pub fn check_invariants(&self) {
        assert_eq!(self.tree.len(), self.n + 1, "node array must cover 0..=n");
        let mut total = 0i64;
        for i in 0..self.n {
            let v = self.get(i);
            assert!(v >= 0, "entry {i} is negative ({v})");
            total += v;
        }
        assert_eq!(self.total(), total, "total must equal the sum of entries");
    }

    /// For a tree of non-negative entries: the smallest index `i` with
    /// `prefix(i) > k`, i.e. the position of the `(k+1)`-th unit. Returns
    /// `None` when fewer than `k + 1` units exist.
    pub fn select(&self, k: usize) -> Option<usize> {
        let mut remaining = k as i64;
        if remaining >= self.total() {
            return None;
        }
        let mut pos = 0usize; // 1-based node cursor
        let mut mask = self.tree.len().next_power_of_two() >> 1;
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        Some(pos) // 1-based node == 0-based index + 1 - 1
    }
}

/// An ordered list over a *precomputed key universe*.
///
/// Keys are dense indices `0..universe` into an externally sorted set of
/// candidate sort keys (the measures framework derives the universe
/// offline from the whole trace). Each present member occupies one key;
/// ranks are counts of present keys below it.
#[derive(Clone, Debug)]
pub struct KeyedList {
    fen: Fenwick,
    len: usize,
}

impl KeyedList {
    /// An empty list over `universe` candidate keys.
    pub fn new(universe: usize) -> Self {
        KeyedList {
            fen: Fenwick::new(universe),
            len: 0,
        }
    }

    /// Number of present members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no member is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when key `idx` is occupied.
    pub fn contains_key(&self, idx: usize) -> bool {
        self.fen.get(idx) == 1
    }

    /// Inserts a member at key `idx`, which must be vacant.
    pub fn insert_at_key(&mut self, idx: usize) {
        debug_assert!(!self.contains_key(idx), "key {idx} already occupied");
        self.fen.add(idx, 1);
        self.len += 1;
    }

    /// Removes the member at key `idx`, which must be occupied.
    pub fn remove(&mut self, idx: usize) {
        debug_assert!(self.contains_key(idx), "key {idx} not occupied");
        self.fen.add(idx, -1);
        self.len -= 1;
    }

    /// Rank of key `idx`: the number of present keys strictly below it.
    /// `idx` may be one past the universe end, giving the total count.
    pub fn rank_of_key(&self, idx: usize) -> usize {
        self.fen.count_below(idx) as usize
    }

    /// The key index of the member at `rank`, if that many are present.
    pub fn select(&self, rank: usize) -> Option<usize> {
        self.fen.select(rank)
    }

    /// Deep structural validation: every key holds 0 or 1, and the
    /// cached length equals the number of occupied keys. O(n log n).
    pub fn check_invariants(&self) {
        self.fen.check_invariants();
        let mut occupied = 0usize;
        for i in 0..self.fen.len() {
            let v = self.fen.get(i);
            assert!(v == 0 || v == 1, "key {i} occupancy must be 0/1, got {v}");
            occupied += v as usize;
        }
        assert_eq!(self.len, occupied, "len must count the occupied keys");
    }
}

const VACANT: usize = usize::MAX;

/// A stamp-keyed LRU list over dense ids with O(log n) operations.
///
/// Every [`RecencyList::move_to_front`] assigns the moved id a fresh slot
/// *below* all previously assigned ones, so slot order equals recency
/// order and rank queries reduce to occupancy prefix counts on a
/// [`Fenwick`]. When the slot space runs out the list rebuilds itself in
/// O(n log n), which amortizes to O(log n) per operation.
#[derive(Clone, Debug)]
pub struct RecencyList {
    /// Per id: its slot, or `VACANT`.
    slot_of: Vec<usize>,
    /// Per slot: the id living there, or `VACANT`.
    id_at: Vec<usize>,
    occ: Fenwick,
    /// Slots are handed out from `next_slot - 1` downward.
    next_slot: usize,
    len: usize,
}

impl RecencyList {
    /// An empty list able to hold ids `0..ids` (it grows on demand if
    /// larger ids appear).
    pub fn new(ids: usize) -> Self {
        Self::with_slot_budget(ids, 2 * ids.max(16))
    }

    /// An empty list pre-sized so that `ops` front insertions never
    /// trigger a rebuild — the right constructor when the total number of
    /// operations is known, as it is for a trace analysis pass.
    pub fn with_capacity(ids: usize, ops: usize) -> Self {
        Self::with_slot_budget(ids, ops + 2)
    }

    fn with_slot_budget(ids: usize, slots: usize) -> Self {
        RecencyList {
            slot_of: vec![VACANT; ids],
            id_at: vec![VACANT; slots],
            occ: Fenwick::new(slots),
            next_slot: slots,
            len: 0,
        }
    }

    /// Number of ids on the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the list holds no ids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `id` is on the list.
    pub fn contains(&self, id: usize) -> bool {
        id < self.slot_of.len() && self.slot_of[id] != VACANT
    }

    /// Recency rank of `id` — 0 is most recent — or `None` if absent.
    pub fn rank_of(&self, id: usize) -> Option<usize> {
        if !self.contains(id) {
            return None;
        }
        Some(self.occ.count_below(self.slot_of[id]) as usize)
    }

    /// The id at recency `rank`, if the list is that long.
    pub fn select(&self, rank: usize) -> Option<usize> {
        self.occ.select(rank).map(|slot| self.id_at[slot])
    }

    /// Moves `id` to the front, inserting it if absent.
    pub fn move_to_front(&mut self, id: usize) {
        if id >= self.slot_of.len() {
            self.slot_of.resize(id + 1, VACANT);
        }
        let old = self.slot_of[id];
        if old != VACANT {
            self.occ.add(old, -1);
            self.id_at[old] = VACANT;
            self.len -= 1;
        }
        if self.next_slot == 0 {
            self.rebuild();
        }
        self.next_slot -= 1;
        let slot = self.next_slot;
        self.occ.add(slot, 1);
        self.id_at[slot] = id;
        self.slot_of[id] = slot;
        self.len += 1;
    }

    /// Removes `id` from the list; returns whether it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        if !self.contains(id) {
            return false;
        }
        let slot = self.slot_of[id];
        self.occ.add(slot, -1);
        self.id_at[slot] = VACANT;
        self.slot_of[id] = VACANT;
        self.len -= 1;
        true
    }

    /// Ids in recency order, most recent first.
    pub fn iter_recency(&self) -> impl Iterator<Item = usize> + '_ {
        self.id_at.iter().copied().filter(|&id| id != VACANT)
    }

    /// Deep structural validation: `slot_of` and `id_at` are mutually
    /// inverse partial maps, the occupancy tree marks exactly the taken
    /// slots, every taken slot is at or above `next_slot` (slots are
    /// handed out downward), and the cached length matches. O(n log n).
    pub fn check_invariants(&self) {
        self.occ.check_invariants();
        assert_eq!(self.occ.len(), self.id_at.len(), "occupancy covers the slots");
        assert!(self.next_slot <= self.id_at.len(), "next_slot in range");
        let mut taken = 0usize;
        for (slot, &id) in self.id_at.iter().enumerate() {
            if id == VACANT {
                assert_eq!(self.occ.get(slot), 0, "vacant slot {slot} marked occupied");
                continue;
            }
            taken += 1;
            assert_eq!(self.occ.get(slot), 1, "taken slot {slot} not marked occupied");
            assert!(slot >= self.next_slot, "slot {slot} below the hand-out floor");
            assert_eq!(
                self.slot_of.get(id).copied(),
                Some(slot),
                "id {id} must map back to slot {slot}"
            );
        }
        let forward = self
            .slot_of
            .iter()
            .filter(|&&s| s != VACANT)
            .count();
        assert_eq!(forward, taken, "slot_of and id_at must agree on membership");
        assert_eq!(self.len, taken, "len must count the members");
    }

    /// Reassigns all members to the top of a fresh, larger slot space.
    fn rebuild(&mut self) {
        let members: Vec<usize> = self.iter_recency().collect();
        let slots = (4 * members.len()).max(16);
        self.id_at = vec![VACANT; slots];
        self.occ = Fenwick::new(slots);
        self.next_slot = slots - members.len();
        for (offset, &id) in members.iter().enumerate() {
            let slot = self.next_slot + offset;
            self.occ.add(slot, 1);
            self.id_at[slot] = id;
            self.slot_of[id] = slot;
        }
    }
}

/// Lazy range-add min segment tree over `i64` values.
///
/// Supports `add_range`, point `set`, range and global `min`, and
/// [`LazyMinTree::argmin`] (the leftmost position attaining the global
/// min) — everything the LLD-R analyzer needs to watch, per LRU slot, the
/// margin `LLD − recency` and harvest the blocks whose margin just went
/// negative.
#[derive(Clone, Debug)]
pub struct LazyMinTree {
    min: Vec<i64>,
    lazy: Vec<i64>,
    n: usize,
}

impl LazyMinTree {
    /// A tree over positions `0..n`, every value initialized to `fill`.
    pub fn new(n: usize, fill: i64) -> Self {
        LazyMinTree {
            min: vec![fill; 4 * n.max(1)],
            lazy: vec![0; 4 * n.max(1)],
            n,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree covers no positions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn push(&mut self, node: usize) {
        let pending = self.lazy[node];
        if pending != 0 {
            for child in [2 * node, 2 * node + 1] {
                self.min[child] += pending;
                self.lazy[child] += pending;
            }
            self.lazy[node] = 0;
        }
    }

    fn add_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, delta: i64) {
        if r <= lo || hi <= l {
            return;
        }
        if l <= lo && hi <= r {
            self.min[node] += delta;
            self.lazy[node] += delta;
            return;
        }
        self.push(node);
        let mid = lo + (hi - lo) / 2;
        self.add_rec(2 * node, lo, mid, l, r, delta);
        self.add_rec(2 * node + 1, mid, hi, l, r, delta);
        self.min[node] = self.min[2 * node].min(self.min[2 * node + 1]);
    }

    /// Adds `delta` to every position in `[l, r)`.
    pub fn add_range(&mut self, l: usize, r: usize, delta: i64) {
        if l < r {
            self.add_rec(1, 0, self.n, l, r.min(self.n), delta);
        }
    }

    fn min_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize) -> i64 {
        if r <= lo || hi <= l {
            return i64::MAX;
        }
        if l <= lo && hi <= r {
            return self.min[node];
        }
        self.push(node);
        let mid = lo + (hi - lo) / 2;
        self.min_rec(2 * node, lo, mid, l, r)
            .min(self.min_rec(2 * node + 1, mid, hi, l, r))
    }

    /// Minimum over `[l, r)`; `i64::MAX` on an empty range.
    pub fn min_range(&mut self, l: usize, r: usize) -> i64 {
        if l >= r {
            return i64::MAX;
        }
        self.min_rec(1, 0, self.n, l, r.min(self.n))
    }

    /// Minimum over all positions.
    pub fn min_all(&self) -> i64 {
        self.min[1]
    }

    /// The global minimum and the leftmost position attaining it.
    pub fn argmin(&mut self) -> (i64, usize) {
        let target = self.min[1];
        let (mut node, mut lo, mut hi) = (1, 0, self.n);
        while hi - lo > 1 {
            self.push(node);
            let mid = lo + (hi - lo) / 2;
            if self.min[2 * node] == target {
                node *= 2;
                hi = mid;
            } else {
                node = 2 * node + 1;
                lo = mid;
            }
        }
        (target, lo)
    }

    /// Sets position `i` to `value`.
    pub fn set(&mut self, i: usize, value: i64) {
        self.set_rec(1, 0, self.n, i, value);
    }

    /// Deep structural validation: every internal node's cached minimum
    /// equals the minimum of its children's *resolved* minima plus its
    /// own pending lazy delta, so range queries after any push sequence
    /// return the same answers. O(n). Panics on the first violation.
    pub fn check_invariants(&self) {
        assert_eq!(self.min.len(), self.lazy.len(), "min/lazy arrays in step");
        if self.n > 0 {
            self.resolved_min(1, 0, self.n);
        }
    }

    /// Bottom-up recomputation of the subtree minimum at `node`,
    /// asserting each cached internal value along the way.
    fn resolved_min(&self, node: usize, lo: usize, hi: usize) -> i64 {
        if hi - lo <= 1 {
            return self.min[node];
        }
        let mid = lo + (hi - lo) / 2;
        let children = self
            .resolved_min(2 * node, lo, mid)
            .min(self.resolved_min(2 * node + 1, mid, hi));
        let expect = children + self.lazy[node];
        assert_eq!(
            self.min[node], expect,
            "node {node} ([{lo}, {hi})) caches {} but resolves to {expect}",
            self.min[node]
        );
        expect
    }

    fn set_rec(&mut self, node: usize, lo: usize, hi: usize, i: usize, value: i64) {
        if hi - lo == 1 {
            self.min[node] = value;
            return;
        }
        self.push(node);
        let mid = lo + (hi - lo) / 2;
        if i < mid {
            self.set_rec(2 * node, lo, mid, i, value);
        } else {
            self.set_rec(2 * node + 1, mid, hi, i, value);
        }
        self.min[node] = self.min[2 * node].min(self.min[2 * node + 1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn fenwick_prefix_and_select_match_array() {
        let mut fen = Fenwick::new(40);
        let mut arr = vec![0i64; 40];
        let mut s = 9u64;
        for _ in 0..300 {
            let i = (lcg(&mut s) % 40) as usize;
            let flip = if arr[i] == 0 { 1 } else { -1 };
            arr[i] += flip;
            fen.add(i, flip);
            let mut run = 0;
            for (j, &v) in arr.iter().enumerate() {
                run += v;
                assert_eq!(fen.prefix(j), run);
            }
            // select(k) must return the position of the (k+1)-th unit.
            let mut seen = 0;
            for (j, &v) in arr.iter().enumerate() {
                if v == 1 {
                    assert_eq!(fen.select(seen), Some(j));
                    seen += 1;
                }
            }
            assert_eq!(fen.select(seen as usize), None);
        }
    }

    #[test]
    fn keyed_list_ranks() {
        let mut kl = KeyedList::new(10);
        for idx in [7, 2, 9, 4] {
            kl.insert_at_key(idx);
        }
        assert_eq!(kl.len(), 4);
        assert_eq!(kl.rank_of_key(2), 0);
        assert_eq!(kl.rank_of_key(7), 2);
        assert_eq!(kl.rank_of_key(10), 4);
        assert_eq!(kl.select(1), Some(4));
        kl.remove(4);
        assert_eq!(kl.rank_of_key(7), 1);
        assert!(!kl.contains_key(4));
        assert!(kl.contains_key(9));
    }

    /// Model-checks RecencyList against a plain Vec LRU stack, across
    /// enough operations to force several rebuilds.
    #[test]
    fn recency_list_matches_vec_model() {
        let ids = 23usize;
        let mut list = RecencyList::new(ids);
        let mut model: Vec<usize> = Vec::new();
        let mut s = 3u64;
        for step in 0..2_000 {
            let id = (lcg(&mut s) % ids as u64) as usize;
            match step % 7 {
                6 => {
                    let was = model.iter().position(|&x| x == id);
                    if let Some(p) = was {
                        model.remove(p);
                    }
                    assert_eq!(list.remove(id), was.is_some());
                }
                _ => {
                    if let Some(p) = model.iter().position(|&x| x == id) {
                        model.remove(p);
                    }
                    model.insert(0, id);
                    list.move_to_front(id);
                }
            }
            assert_eq!(list.len(), model.len());
            for (rank, &m) in model.iter().enumerate() {
                assert_eq!(list.rank_of(m), Some(rank));
                assert_eq!(list.select(rank), Some(m));
            }
            assert_eq!(list.select(model.len()), None);
            let in_order: Vec<usize> = list.iter_recency().collect();
            assert_eq!(in_order, model);
        }
    }

    #[test]
    fn recency_list_grows_id_space_on_demand() {
        let mut list = RecencyList::new(2);
        list.move_to_front(100);
        assert_eq!(list.rank_of(100), Some(0));
        assert!(!list.contains(50));
    }

    #[test]
    fn lazy_min_tree_matches_array_model() {
        let n = 29usize;
        let mut tree = LazyMinTree::new(n, 5);
        let mut model = vec![5i64; n];
        let mut s = 77u64;
        for _ in 0..1_500 {
            match lcg(&mut s) % 3 {
                0 => {
                    let mut l = (lcg(&mut s) % n as u64) as usize;
                    let mut r = (lcg(&mut s) % (n as u64 + 1)) as usize;
                    if l > r {
                        std::mem::swap(&mut l, &mut r);
                    }
                    let delta = (lcg(&mut s) % 7) as i64 - 3;
                    tree.add_range(l, r, delta);
                    for v in &mut model[l..r] {
                        *v += delta;
                    }
                }
                1 => {
                    let i = (lcg(&mut s) % n as u64) as usize;
                    let v = (lcg(&mut s) % 100) as i64 - 50;
                    tree.set(i, v);
                    model[i] = v;
                }
                _ => {
                    let mut l = (lcg(&mut s) % n as u64) as usize;
                    let mut r = (lcg(&mut s) % (n as u64 + 1)) as usize;
                    if l > r {
                        std::mem::swap(&mut l, &mut r);
                    }
                    let expect = model[l..r].iter().min().copied().unwrap_or(i64::MAX);
                    assert_eq!(tree.min_range(l, r), expect);
                }
            }
            let global = *model.iter().min().unwrap();
            assert_eq!(tree.min_all(), global);
            let (v, pos) = tree.argmin();
            assert_eq!(v, global);
            assert_eq!(pos, model.iter().position(|&x| x == global).unwrap());
        }
    }
}
