//! `ulc-lint` — a self-contained static-analysis pass over the workspace.
//!
//! The repo's headline guarantee is bit-identical simulator output for a
//! given trace and seed. That guarantee has source-level preconditions
//! (no iteration over randomly-ordered containers, no wall-clock reads,
//! no ambient RNG) which `rustc` does not check. This crate enforces
//! them, plus panic/unsafe/doc hygiene, with a hand-rolled lexer — no
//! crates.io dependencies, in the same spirit as the vendored stand-ins.
//!
//! * [`lexer`] tokenises Rust source (tokens + comments, with lines);
//! * [`rules`] implements the rule classes and the allowlist protocol;
//! * [`lint_workspace`] walks `crates/*/src`, `src/` and `tests/` in
//!   deterministic (sorted) order and returns every diagnostic.
//!
//! The `ulc-lint` binary prints `path:line: [rule] message` lines and
//! exits non-zero if anything is flagged; `--json=PATH` additionally
//! writes a machine-readable report for CI.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding, addressable as `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`rules::ALL_RULES`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; used by the rule implementations.
    pub fn new(file: &str, line: usize, rule: &str, message: &str) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Lints one source string under the rule set for `kind`. `path` labels
/// the diagnostics and is not opened.
pub fn lint_source(path: &str, src: &str, kind: rules::FileKind) -> Vec<Diagnostic> {
    rules::check_source(path, src, kind)
}

/// Directories under the workspace root that are never linted: vendored
/// stand-ins (external idiom, not ours), build output, and the linter's
/// own deliberately-violating fixtures.
fn skip_dir(name: &str) -> bool {
    matches!(name, "vendor" | "target" | "results" | ".git" | "fixtures")
}

/// Collects every `.rs` file to lint under `root`, sorted for
/// deterministic output.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                let name = p
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                if !skip_dir(name) {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the whole workspace rooted at `root` and returns every
/// diagnostic, sorted by file then line. Vendored crates, build output
/// and the fixture suite are skipped.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let kind = rules::FileKind::classify(&rel);
        diags.extend(rules::check_source(&rel, &src, kind));
    }
    diags.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_is_file_line_rule() {
        let d = Diagnostic::new("a/b.rs", 7, "panic", "no");
        assert_eq!(d.to_string(), "a/b.rs:7: [panic] no");
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let d = Diagnostic::new("a.rs", 1, "determinism", "m");
        let s = serde_json::to_string(&d).expect("serializable");
        assert!(s.contains("\"file\""), "{s}");
        assert!(s.contains("determinism"), "{s}");
    }
}
