//! `ulc-lint` — a self-contained static-analysis pass over the workspace.
//!
//! The repo's headline guarantees — bit-identical deterministic replay,
//! zero steady-state allocations per access, panic-free engine code —
//! have source-level preconditions which `rustc` does not check. This
//! crate enforces them with a hand-rolled multi-pass analyzer — no
//! crates.io dependencies, in the same spirit as the vendored stand-ins:
//!
//! * [`lexer`] tokenises Rust source (tokens + comments, with lines);
//! * [`parser`] extracts the item skeleton (`fn`/`impl`/`trait`/`struct`/
//!   `enum` with spans, signatures and bodies);
//! * [`graph`] builds the workspace symbol table and conservative call
//!   graph, discovers the per-access roots and computes reachability;
//! * [`rules`] implements the rule classes (per-file and
//!   interprocedural) and the allowlist protocol;
//! * [`baseline`] assigns stable fingerprints and implements the CI
//!   diff gate (`--baseline`/`--write-baseline`);
//! * [`lint_workspace`] walks `crates/*/src`, `src/` and `tests/` in
//!   deterministic (sorted) order and returns every diagnostic.
//!
//! The `ulc-lint` binary prints `path:line: [rule] message` lines and
//! exits non-zero if anything is flagged; `--json=PATH` additionally
//! writes a machine-readable report for CI, and `--baseline=PATH` turns
//! the wall into a diff gate that fails only on new findings.

#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;

use graph::FileUnit;
use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding, addressable as `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`rules::ALL_RULES`]).
    pub rule: String,
    /// Human-readable explanation (interprocedural findings embed the
    /// call-chain trace from the per-access root).
    pub message: String,
    /// Stable identity for the baseline diff gate (see [`baseline`]);
    /// empty until assigned by the pipeline.
    pub fingerprint: String,
}

impl Diagnostic {
    /// Builds a diagnostic; used by the rule implementations. The
    /// fingerprint starts empty and is assigned by the pipeline.
    pub fn new(file: &str, line: usize, rule: &str, message: &str) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.to_string(),
            fingerprint: String::new(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints one source string under the rule set for `kind`, through the
/// full pipeline (the file stands alone as its own workspace). `path`
/// labels the diagnostics and is not opened.
pub fn lint_source(path: &str, src: &str, kind: rules::FileKind) -> Vec<Diagnostic> {
    rules::check_source(path, src, kind)
}

/// Lints a set of already-loaded files as one workspace: the call graph
/// spans all of them, so a per-access root in one file reaches helpers
/// in every other. This is the multi-file entry point the fixture suite
/// drives directly.
pub fn lint_files(files: &[(String, String, rules::FileKind)]) -> Vec<Diagnostic> {
    let units: Vec<FileUnit> = files
        .iter()
        .map(|(path, src, kind)| FileUnit::new(path, src, *kind))
        .collect();
    rules::lint_units(&units)
}

/// Directories under the workspace root that are never linted: vendored
/// stand-ins (external idiom, not ours), build output, and the linter's
/// own deliberately-violating fixtures.
fn skip_dir(name: &str) -> bool {
    matches!(name, "vendor" | "target" | "results" | ".git" | "fixtures")
}

/// Collects every `.rs` file to lint under `root`, sorted for
/// deterministic output.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                let name = p
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                if !skip_dir(name) {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads every lintable file under `root` into analysis units. Vendored
/// crates, build output and the fixture suite are skipped.
pub fn load_workspace_units(root: &Path) -> io::Result<Vec<FileUnit>> {
    let mut units = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let kind = rules::FileKind::classify(&rel);
        units.push(FileUnit::new(&rel, &src, kind));
    }
    Ok(units)
}

/// Lints the whole workspace rooted at `root` and returns every
/// diagnostic, sorted by file then line, with fingerprints assigned.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let units = load_workspace_units(root)?;
    Ok(rules::lint_units(&units))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_is_file_line_rule() {
        let d = Diagnostic::new("a/b.rs", 7, "panic", "no");
        assert_eq!(d.to_string(), "a/b.rs:7: [panic] no");
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let d = Diagnostic::new("a.rs", 1, "determinism", "m");
        let s = serde_json::to_string(&d).expect("serializable");
        assert!(s.contains("\"file\""), "{s}");
        assert!(s.contains("determinism"), "{s}");
        assert!(s.contains("\"fingerprint\""), "{s}");
    }

    #[test]
    fn lint_files_connects_the_graph_across_files() {
        let files = vec![
            (
                "crates/a/src/root.rs".to_string(),
                "fn access_into(b: u32) { helper(b); }\n".to_string(),
                rules::FileKind::Library,
            ),
            (
                "crates/b/src/helper.rs".to_string(),
                "pub fn helper(b: u32) { let v = vec![b]; let _ = v; }\n".to_string(),
                rules::FileKind::Library,
            ),
        ];
        let d: Vec<_> = lint_files(&files)
            .into_iter()
            .filter(|d| d.rule == rules::RULE_HOT_PATH_ALLOC)
            .collect();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/b/src/helper.rs");
        assert!(!d[0].fingerprint.is_empty());
    }
}
