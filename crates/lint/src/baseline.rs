//! Stable diagnostic fingerprints and the CI baseline diff gate.
//!
//! The interprocedural rules make findings *global* properties: edit one
//! helper and a diagnostic can appear three modules away. A CI gate that
//! fails on any finding would then block unrelated work, and a gate that
//! fails on none would let regressions rot. The middle path is a
//! *baseline*: a committed set of fingerprints for the findings the team
//! has already seen, so `ulc-lint --baseline=PATH` fails only on **new**
//! findings (and `--write-baseline` re-records the set after triage).
//!
//! Fingerprints must survive harmless edits, so they hash the file path,
//! the rule and the *digit-stripped* message (line numbers inside
//! call-chain traces churn on every unrelated edit), plus an occurrence
//! index to keep several identical findings in one file distinct. They
//! deliberately exclude the line number itself: moving a function does
//! not create a "new" finding.
//!
//! The baseline file is plain text — one fingerprint per line, `#`
//! comments ignored — so diffs review like any other source change.

use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// FNV-1a 64-bit over a byte stream: tiny, dependency-free and stable
/// across platforms and releases (unlike `DefaultHasher`).
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The message with ASCII digits removed: call-chain traces embed
/// `file:line` hops whose numbers churn on unrelated edits.
fn normalized(message: &str) -> String {
    message.chars().filter(|c| !c.is_ascii_digit()).collect()
}

/// Computes the fingerprint of a `(file, rule, message, occurrence)`
/// quadruple as a 16-hex-digit string.
pub fn fingerprint(file: &str, rule: &str, message: &str, occurrence: usize) -> String {
    let norm = normalized(message);
    let stream = file
        .bytes()
        .chain([0u8])
        .chain(rule.bytes())
        .chain([0u8])
        .chain(norm.bytes())
        .chain([0u8])
        .chain(occurrence.to_le_bytes());
    format!("{:016x}", fnv1a(stream))
}

/// Assigns a fingerprint to every diagnostic, in order: diagnostics that
/// normalize identically within one file get increasing occurrence
/// indices, so `k` identical findings stay `k` distinct fingerprints.
pub fn assign_fingerprints(diags: &mut [Diagnostic]) {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for d in diags.iter_mut() {
        let key = (d.file.clone(), d.rule.clone(), normalized(&d.message));
        let occurrence = counts.entry(key).or_insert(0);
        d.fingerprint = fingerprint(&d.file, &d.rule, &d.message, *occurrence);
        *occurrence += 1;
    }
}

/// Reads a baseline file: one fingerprint per line (first whitespace
/// field; the rest is human-readable context), `#` comments and blank
/// lines ignored.
pub fn read_baseline(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = fs::read_to_string(path)?;
    let mut set = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(fp) = line.split_whitespace().next() {
            set.insert(fp.to_string());
        }
    }
    Ok(set)
}

/// Writes the baseline for `diags`: a header comment plus one
/// `fingerprint rule file:line` line per finding (only the fingerprint
/// is parsed back; rule and location are context for reviewers).
pub fn write_baseline(path: &Path, diags: &[Diagnostic]) -> io::Result<()> {
    let mut out = String::from(
        "# ulc-lint baseline: known findings, one fingerprint per line.\n\
         # Regenerate with `ulc-lint --write-baseline=<this file>` after triage;\n\
         # the diff gate (`--baseline`) fails only on fingerprints not listed here.\n",
    );
    for d in diags {
        out.push_str(&format!(
            "{} {} {}:{}\n",
            d.fingerprint, d.rule, d.file, d.line
        ));
    }
    fs::write(path, out)
}

/// The diagnostics whose fingerprints are not in `baseline` — the
/// findings the diff gate fails on.
pub fn new_findings<'a>(
    diags: &'a [Diagnostic],
    baseline: &BTreeSet<String>,
) -> Vec<&'a Diagnostic> {
    diags
        .iter()
        .filter(|d| !baseline.contains(&d.fingerprint))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &str, msg: &str) -> Diagnostic {
        Diagnostic::new(file, line, rule, msg)
    }

    #[test]
    fn fingerprints_ignore_lines_and_embedded_numbers() {
        let a = fingerprint("a.rs", "panic", "chain x (a.rs:10) → y (a.rs:20)", 0);
        let b = fingerprint("a.rs", "panic", "chain x (a.rs:11) → y (a.rs:99)", 0);
        assert_eq!(a, b);
        let c = fingerprint("b.rs", "panic", "chain x (a.rs:10) → y (a.rs:20)", 0);
        assert_ne!(a, c, "file is part of the identity");
    }

    #[test]
    fn identical_findings_get_distinct_occurrences() {
        let mut diags = vec![
            diag("a.rs", 3, "panic", "`unwrap()` in library code"),
            diag("a.rs", 9, "panic", "`unwrap()` in library code"),
        ];
        assign_fingerprints(&mut diags);
        assert_ne!(diags[0].fingerprint, diags[1].fingerprint);
        // Re-running on the same set reproduces the same fingerprints.
        let first = diags[0].fingerprint.clone();
        assign_fingerprints(&mut diags);
        assert_eq!(diags[0].fingerprint, first);
    }

    #[test]
    fn baseline_round_trips_and_diffs() {
        let dir = std::env::temp_dir().join("ulc_lint_baseline_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("baseline.txt");
        let mut old = vec![diag("a.rs", 3, "panic", "`unwrap()` in library code")];
        assign_fingerprints(&mut old);
        write_baseline(&path, &old).expect("write");
        let set = read_baseline(&path).expect("read");
        assert_eq!(set.len(), 1);
        assert!(new_findings(&old, &set).is_empty(), "old finding is known");

        let mut newer = vec![
            diag("a.rs", 3, "panic", "`unwrap()` in library code"),
            diag("b.rs", 1, "determinism", "`thread_rng` is unseeded"),
        ];
        assign_fingerprints(&mut newer);
        let fresh = new_findings(&newer, &set);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].file, "b.rs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_context_fields_are_ignored_on_read() {
        let dir = std::env::temp_dir().join("ulc_lint_baseline_test2");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("baseline.txt");
        std::fs::write(&path, "# header\n\nabcdef0123456789 panic a.rs:3\n").expect("write");
        let set = read_baseline(&path).expect("read");
        assert!(set.contains("abcdef0123456789"), "{set:?}");
        std::fs::remove_file(&path).ok();
    }
}
