//! A recursive-descent *item* parser on top of [`crate::lexer`].
//!
//! The interprocedural rules (DESIGN.md §5g) need more than a token
//! stream: they need to know where every function lives, which `impl`
//! block owns it, which trait it implements, and what its body spans —
//! so the call graph can connect a per-access root to the helpers it
//! reaches. This module extracts exactly that item skeleton:
//!
//! * [`FnItem`] — every `fn`, with its enclosing `impl`/`trait` context,
//!   signature and body token ranges, and test-exemption flag;
//! * [`StructItem`] — struct fields with the head identifier of each
//!   field's type (for impl-receiver disambiguation of method calls);
//! * [`EnumItem`] — enum variants with lines (for the `plane-exhaustive`
//!   rule).
//!
//! It is *not* a full Rust parser: expressions are never analysed, and
//! exotic items (macros, GATs, const generics with brace expressions)
//! are skipped conservatively. Whatever the parser cannot classify it
//! leaves out of the item table, which makes the downstream analyses
//! under-approximate rather than crash — the same totality contract as
//! the lexer.

use crate::lexer::{LexedFile, Token, TokenKind};

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The enclosing `impl` block's self type (last path segment), or the
    /// enclosing `trait` name for trait-declaration methods.
    pub self_ty: Option<String>,
    /// The trait being implemented (`impl Trait for Type`), or the trait
    /// being declared for trait-declaration methods.
    pub trait_of: Option<String>,
    /// `true` for methods declared inside a `trait { … }` block (default
    /// bodies included).
    pub is_trait_decl: bool,
    /// Token range `[fn keyword, body open or terminating semicolon)` —
    /// the signature, including name, generics and parameters.
    pub sig: (usize, usize),
    /// Token range `[open brace, close brace]` of the body, if any.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits under `#[cfg(test)]`/`#[test]`.
    pub in_test: bool,
}

/// One parsed struct with its field types.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// `(field name, head identifier of the field's type, head of its
    /// first generic argument)` triples, e.g. `("queues", "Vec",
    /// Some("VecDeque"))` for `queues: Vec<VecDeque<Message>>`. The
    /// element head is what an indexed receiver (`self.queues[i].m(…)`)
    /// dispatches on.
    pub fields: Vec<(String, String, Option<String>)>,
}

/// One parsed enum with its variants.
#[derive(Clone, Debug)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// `(variant name, 1-based line)` pairs in declaration order.
    pub variants: Vec<(String, usize)>,
}

/// The item skeleton of one source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every function item, in source order.
    pub fns: Vec<FnItem>,
    /// Every struct item, in source order.
    pub structs: Vec<StructItem>,
    /// Every enum item, in source order.
    pub enums: Vec<EnumItem>,
}

/// Index of the punct closing the group opened at `open_idx`, or `None`.
pub fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item, so the
/// in-library test modules and unit tests are exempt from the library
/// rules, exactly like files under `tests/`.
pub fn test_token_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            let body = &tokens[i + 2..attr_end];
            let is_test_attr = (body.len() == 1 && body[0].is_ident("test"))
                || (body.first().is_some_and(|t| t.is_ident("cfg"))
                    && body.iter().any(|t| t.is_ident("test")));
            if is_test_attr {
                // The attribute governs the next item: everything through
                // the item's closing brace (or terminating semicolon).
                let mut j = attr_end + 1;
                // Skip further attributes on the same item.
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => return mask,
                    }
                }
                let mut end = tokens.len() - 1;
                for (k, t) in tokens.iter().enumerate().skip(j) {
                    if t.is_punct(';') {
                        end = k;
                        break;
                    }
                    if t.is_punct('{') {
                        end = matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                }
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Parses the item skeleton of a lexed file.
pub fn parse(file: &LexedFile) -> ParsedFile {
    let in_test = test_token_mask(&file.tokens);
    let mut out = ParsedFile::default();
    let ctx = Ctx {
        self_ty: None,
        trait_of: None,
        is_trait_decl: false,
    };
    parse_range(&file.tokens, &in_test, 0, file.tokens.len(), &ctx, &mut out);
    out
}

#[derive(Clone, Debug)]
struct Ctx {
    self_ty: Option<String>,
    trait_of: Option<String>,
    is_trait_decl: bool,
}

/// Skips a balanced `<…>` generics group starting at `i` (which must sit
/// on the `<`). A `>` directly preceded by `-` is the arrow of an `Fn()
/// -> T` bound, not a closer. Returns the index just past the final `>`.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut k = i;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(k > 0 && tokens[k - 1].is_punct('-')) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Reads one type path starting at `i`, skipping leading `&`/`mut`/
/// `dyn`/lifetimes and per-segment generic arguments. Returns the last
/// path segment and the index just past the path, or `None` when `i`
/// does not start a path.
pub fn read_path(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut k = i;
    while tokens.get(k).is_some_and(|t| {
        t.is_punct('&') || t.is_ident("mut") || t.is_ident("dyn") || t.kind == TokenKind::Lifetime
    }) {
        k += 1;
    }
    let first = tokens.get(k)?;
    if first.kind != TokenKind::Ident {
        return None;
    }
    let mut last = first.text.clone();
    k += 1;
    loop {
        if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
            k = skip_generics(tokens, k);
        }
        if tokens.get(k).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            last = tokens[k + 2].text.clone();
            k += 3;
        } else {
            break;
        }
    }
    Some((last, k))
}

/// The head of the first generic argument of the type path at `i`
/// (`Vec<LruCache<K>>` → `LruCache`) — the element type an indexed
/// receiver dispatches on. `None` when the path takes no generic
/// arguments, the first argument is not a plain uppercase-initial path,
/// or the generics belong to a non-final segment.
pub fn elem_head(tokens: &[Token], i: usize) -> Option<String> {
    let mut k = i;
    while tokens.get(k).is_some_and(|t| {
        t.is_punct('&') || t.is_ident("mut") || t.is_ident("dyn") || t.kind == TokenKind::Lifetime
    }) {
        k += 1;
    }
    if tokens.get(k)?.kind != TokenKind::Ident {
        return None;
    }
    k += 1;
    let mut elem = None;
    loop {
        if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
            elem = read_path(tokens, k + 1).map(|(head, _)| head);
            k = skip_generics(tokens, k);
        }
        if tokens.get(k).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            elem = None;
            k += 3;
        } else {
            break;
        }
    }
    elem.filter(|e| e.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
}

/// Finds the first `{` or `;` at bracket depth 0 starting at `i`; returns
/// `(index, is_brace)`.
fn find_body_open(tokens: &[Token], i: usize, hi: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut k = i;
    while k < hi {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('{') {
            return Some((k, true));
        } else if depth == 0 && t.is_punct(';') {
            return Some((k, false));
        }
        k += 1;
    }
    None
}

fn parse_range(
    tokens: &[Token],
    in_test: &[bool],
    lo: usize,
    hi: usize,
    ctx: &Ctx,
    out: &mut ParsedFile,
) {
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                let Some((self_ty, trait_of, open)) = parse_impl_header(tokens, i, hi) else {
                    i += 1;
                    continue;
                };
                let close = matching(tokens, open, '{', '}').unwrap_or(hi.saturating_sub(1));
                let inner = Ctx {
                    self_ty: Some(self_ty),
                    trait_of,
                    is_trait_decl: false,
                };
                parse_range(tokens, in_test, open + 1, close, &inner, out);
                i = close + 1;
            }
            "trait" => {
                let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some((open, is_brace)) = find_body_open(tokens, i + 2, hi) else {
                    break;
                };
                if !is_brace {
                    i = open + 1; // trait alias `trait X = …;`
                    continue;
                }
                let close = matching(tokens, open, '{', '}').unwrap_or(hi.saturating_sub(1));
                let inner = Ctx {
                    self_ty: Some(name.text.clone()),
                    trait_of: Some(name.text.clone()),
                    is_trait_decl: true,
                };
                parse_range(tokens, in_test, open + 1, close, &inner, out);
                i = close + 1;
            }
            "fn" => {
                let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    i += 1; // `fn(u32) -> u32` pointer type
                    continue;
                };
                let Some((open, is_brace)) = find_body_open(tokens, i + 2, hi) else {
                    break;
                };
                let body = if is_brace {
                    let close = matching(tokens, open, '{', '}').unwrap_or(hi.saturating_sub(1));
                    Some((open, close))
                } else {
                    None
                };
                out.fns.push(FnItem {
                    name: name.text.clone(),
                    line: t.line,
                    self_ty: ctx.self_ty.clone(),
                    trait_of: ctx.trait_of.clone(),
                    is_trait_decl: ctx.is_trait_decl,
                    sig: (i, open),
                    body,
                    in_test: in_test.get(i).copied().unwrap_or(false),
                });
                if let Some((bo, bc)) = body {
                    // Nested `fn` items inside the body become their own
                    // (free) items; the outer body range still covers
                    // their tokens, which keeps the analyses conservative.
                    let inner = Ctx {
                        self_ty: None,
                        trait_of: None,
                        is_trait_decl: false,
                    };
                    parse_range(tokens, in_test, bo + 1, bc, &inner, out);
                    i = bc + 1;
                } else {
                    i = open + 1;
                }
            }
            "struct" => {
                let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some((open, is_brace)) = find_body_open(tokens, i + 2, hi) else {
                    break;
                };
                if !is_brace {
                    // Unit or tuple struct: no named fields to record.
                    out.structs.push(StructItem {
                        name: name.text.clone(),
                        line: t.line,
                        fields: Vec::new(),
                    });
                    i = open + 1;
                    continue;
                }
                let close = matching(tokens, open, '{', '}').unwrap_or(hi.saturating_sub(1));
                out.structs.push(StructItem {
                    name: name.text.clone(),
                    line: t.line,
                    fields: parse_fields(tokens, open, close),
                });
                i = close + 1;
            }
            "enum" => {
                let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some((open, is_brace)) = find_body_open(tokens, i + 2, hi) else {
                    break;
                };
                if !is_brace {
                    i = open + 1;
                    continue;
                }
                let close = matching(tokens, open, '{', '}').unwrap_or(hi.saturating_sub(1));
                out.enums.push(EnumItem {
                    name: name.text.clone(),
                    line: t.line,
                    variants: parse_variants(tokens, open, close),
                });
                i = close + 1;
            }
            "macro_rules" => {
                // `macro_rules! name { … }` — token soup; skip wholesale.
                let Some((open, is_brace)) = find_body_open(tokens, i + 1, hi) else {
                    break;
                };
                i = if is_brace {
                    matching(tokens, open, '{', '}').unwrap_or(hi.saturating_sub(1)) + 1
                } else {
                    open + 1
                };
            }
            _ => i += 1,
        }
    }
}

/// Parses an `impl` header starting at the `impl` keyword: returns the
/// self type's last path segment, the implemented trait's last segment
/// (for `impl Trait for Type`), and the index of the body's `{`.
fn parse_impl_header(tokens: &[Token], i: usize, hi: usize) -> Option<(String, Option<String>, usize)> {
    let mut k = i + 1;
    if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
        k = skip_generics(tokens, k);
    }
    if tokens.get(k).is_some_and(|t| t.is_punct('!')) {
        k += 1; // negative impl
    }
    let (first, after) = read_path(tokens, k)?;
    k = after;
    let (self_ty, trait_of) = if tokens.get(k).is_some_and(|t| t.is_ident("for")) {
        let (ty, after_ty) = read_path(tokens, k + 1)?;
        k = after_ty;
        (ty, Some(first))
    } else {
        (first, None)
    };
    // Skip a `where` clause (or trailing generics noise) up to the body.
    let (open, is_brace) = find_body_open(tokens, k, hi)?;
    if !is_brace {
        return None;
    }
    Some((self_ty, trait_of, open))
}

/// Extracts `(name, type-head, element-head)` field triples from a
/// struct body.
fn parse_fields(
    tokens: &[Token],
    open: usize,
    close: usize,
) -> Vec<(String, String, Option<String>)> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut k = open + 1;
    while k < close {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('<') {
            k = skip_generics(tokens, k);
            continue;
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
            && !(k > open + 1 && tokens[k - 1].is_punct(':'))
        {
            if let Some((ty, after)) = read_path(tokens, k + 2) {
                fields.push((t.text.clone(), ty, elem_head(tokens, k + 2)));
                k = after;
                continue;
            }
        }
        k += 1;
    }
    fields
}

/// Extracts `(variant, line)` pairs from an enum body.
fn parse_variants(tokens: &[Token], open: usize, close: usize) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &tokens[k];
        if t.is_punct('#') && tokens.get(k + 1).is_some_and(|n| n.is_punct('[')) {
            k = matching(tokens, k + 1, '[', ']').map_or(k + 1, |e| e + 1);
            continue;
        }
        if t.kind == TokenKind::Ident {
            variants.push((t.text.clone(), t.line));
            // Skip the variant's payload and discriminant up to the comma.
            let mut depth = 0usize;
            while k < close {
                let x = &tokens[k];
                if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                    depth += 1;
                } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && x.is_punct(',') {
                    break;
                }
                k += 1;
            }
        }
        k += 1;
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_fn_and_method_contexts() {
        let src = "fn free() {}\nimpl Foo { fn m(&self) {} }\nimpl Bar for Foo { fn t(&self) {} }\ntrait Baz { fn d(&self); fn e(&self) { self.d() } }\n";
        let p = parsed(src);
        let names: Vec<(&str, Option<&str>, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.self_ty.as_deref(),
                    f.trait_of.as_deref(),
                    f.is_trait_decl,
                )
            })
            .collect();
        assert_eq!(
            names,
            [
                ("free", None, None, false),
                ("m", Some("Foo"), None, false),
                ("t", Some("Foo"), Some("Bar"), false),
                ("d", Some("Baz"), Some("Baz"), true),
                ("e", Some("Baz"), Some("Baz"), true),
            ]
        );
        assert!(p.fns[3].body.is_none(), "declaration without body");
        assert!(p.fns[4].body.is_some(), "default body recorded");
    }

    #[test]
    fn generic_impls_resolve_last_segment() {
        let src = "impl<P: Plane> proto::UlcMulti<P> { fn access_into(&mut self) {} }\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("UlcMulti"));
    }

    #[test]
    fn fn_bound_arrow_does_not_unbalance_generics() {
        let src = "impl<F: Fn(u32) -> bool> Holder<F> { fn run(&self) {} }\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Holder"));
        assert_eq!(p.fns[0].name, "run");
    }

    #[test]
    fn struct_fields_record_type_heads() {
        let src = "struct S { a: u32, pub queues: Vec<VecDeque<M>>, stack: core::UniLruStack, r: &'a mut Batch }\n";
        let p = parsed(src);
        assert_eq!(
            p.structs[0].fields,
            [
                ("a".to_string(), "u32".to_string(), None),
                (
                    "queues".to_string(),
                    "Vec".to_string(),
                    Some("VecDeque".to_string())
                ),
                ("stack".to_string(), "UniLruStack".to_string(), None),
                ("r".to_string(), "Batch".to_string(), None),
            ]
        );
    }

    #[test]
    fn enum_variants_with_payloads() {
        let src = "enum Message { Demote { block: B, mru: bool }, CacheRequest(B), EvictNotice,\n Reload = 3 }\n";
        let p = parsed(src);
        let names: Vec<&str> = p.enums[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, ["Demote", "CacheRequest", "EvictNotice", "Reload"]);
        assert_eq!(p.enums[0].variants[3].1, 2, "Reload sits on line 2");
    }

    #[test]
    fn bodies_span_and_nested_fns_are_items() {
        let src = "fn outer() { fn inner() {} inner(); }\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "outer");
        assert_eq!(p.fns[1].name, "inner");
    }

    #[test]
    fn test_items_are_marked() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}\n";
        let p = parsed(src);
        let by_name: Vec<(&str, bool)> =
            p.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(by_name, [("helper", true), ("live", false)]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "type Cb = fn(u32) -> u32;\nfn real(cb: Cb) { cb(1); }\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src = "macro_rules! m { ($x:expr) => { fn not_an_item() {} }; }\nfn after() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
    }
}
