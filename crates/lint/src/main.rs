//! CLI for the workspace lint pass.
//!
//! ```text
//! ulc-lint [--root=PATH] [--json=PATH]
//! ```
//!
//! Prints one `path:line: [rule] message` line per finding and exits 1
//! if anything is flagged. `--json=PATH` also writes the findings as a
//! JSON array (always written, `[]` when clean) for CI consumption.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if let Some(p) = arg.strip_prefix("--root=") {
            root = PathBuf::from(p);
        } else if let Some(p) = arg.strip_prefix("--json=") {
            json_out = Some(PathBuf::from(p));
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: ulc-lint [--root=PATH] [--json=PATH]");
            return ExitCode::SUCCESS;
        } else {
            eprintln!("ulc-lint: unknown argument `{arg}`");
            return ExitCode::from(2);
        }
    }

    let diags = match ulc_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ulc-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("ulc-lint: cannot create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        let json = match serde_json::to_string_pretty(&diags) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("ulc-lint: JSON encoding failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("ulc-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("ulc-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("ulc-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
