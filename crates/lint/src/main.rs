//! CLI for the workspace lint pass.
//!
//! ```text
//! ulc-lint [--root=PATH] [--json=PATH] [--baseline=PATH | --write-baseline=PATH]
//! ulc-lint --explain=RULE
//! ulc-lint --version | --help
//! ```
//!
//! Prints one `path:line: [rule] message` line per finding and exits 1
//! if anything is flagged (with `--baseline`, only if anything *new* is
//! flagged). `--json=PATH` also writes the findings — fingerprints
//! included — as a JSON array (always written, `[]` when clean) for CI
//! consumption.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ulc-lint [OPTIONS]

A self-contained static-analysis pass over the ULC workspace: per-file
hygiene rules plus interprocedural zero-alloc/no-panic reachability over
the workspace call graph (DESIGN.md \u{a7}5c, \u{a7}5g).

options:
  --root=PATH            workspace root to lint (default: .)
  --json=PATH            also write the findings as a JSON array
  --baseline=PATH        diff gate: exit 1 only on findings whose
                         fingerprint is not listed in PATH
  --write-baseline=PATH  record the current findings as the new baseline
                         and exit 0
  --explain=RULE         print what RULE checks and why, then exit
  --version              print the version and exit
  -h, --help             print this help and exit

exit codes: 0 clean (or no new findings under --baseline), 1 findings,
2 usage or I/O error.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut baseline_in: Option<PathBuf> = None;
    let mut baseline_out: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if let Some(p) = arg.strip_prefix("--root=") {
            root = PathBuf::from(p);
        } else if let Some(p) = arg.strip_prefix("--json=") {
            json_out = Some(PathBuf::from(p));
        } else if let Some(p) = arg.strip_prefix("--baseline=") {
            baseline_in = Some(PathBuf::from(p));
        } else if let Some(p) = arg.strip_prefix("--write-baseline=") {
            baseline_out = Some(PathBuf::from(p));
        } else if let Some(rule) = arg.strip_prefix("--explain=") {
            return match ulc_lint::rules::explain(rule) {
                Some(text) => {
                    println!("{rule}: {text}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!(
                        "ulc-lint: unknown rule `{rule}`; known rules: {}",
                        ulc_lint::rules::ALL_RULES.join(", ")
                    );
                    ExitCode::from(2)
                }
            };
        } else if arg == "--version" {
            println!("ulc-lint {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        } else if arg == "--help" || arg == "-h" {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        } else {
            eprintln!("ulc-lint: unknown argument `{arg}`");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    if baseline_in.is_some() && baseline_out.is_some() {
        eprintln!("ulc-lint: --baseline and --write-baseline are mutually exclusive");
        return ExitCode::from(2);
    }

    let diags = match ulc_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "ulc-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_out {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("ulc-lint: cannot create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        let json = match serde_json::to_string_pretty(&diags) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("ulc-lint: JSON encoding failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("ulc-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = baseline_out {
        if let Err(e) = ulc_lint::baseline::write_baseline(&path, &diags) {
            eprintln!("ulc-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ulc-lint: baseline recorded ({} finding(s)) to {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline_in {
        let known = match ulc_lint::baseline::read_baseline(&path) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("ulc-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let fresh = ulc_lint::baseline::new_findings(&diags, &known);
        for d in &diags {
            let marker = if known.contains(&d.fingerprint) {
                "known"
            } else {
                "NEW"
            };
            println!("{d} [{marker}]");
        }
        return if fresh.is_empty() {
            eprintln!(
                "ulc-lint: no new findings ({} known baseline finding(s))",
                diags.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "ulc-lint: {} NEW finding(s) not in baseline {}",
                fresh.len(),
                path.display()
            );
            ExitCode::FAILURE
        };
    }

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("ulc-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("ulc-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
