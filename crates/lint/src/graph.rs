//! Workspace symbol table, conservative call graph and reachability.
//!
//! The zero-allocation and panic-free contracts are properties of the
//! *per-access call tree*, not of any fixed file list: a root like
//! `access_into` must not reach an allocating helper no matter how many
//! modules away it lives (DESIGN.md §5g). This module builds the graph
//! those rules walk:
//!
//! * a **symbol table** over every parsed library file (free functions,
//!   inherent and trait methods, struct field types);
//! * **call edges** resolved by name, with impl-receiver disambiguation
//!   where the receiver's type is syntactically known (`self.field.m()`
//!   through the struct table, `let x: Ty` / `Ty::new()` locals, `Ty::m`
//!   paths) and a conservative *all-functions-of-that-name* fallback
//!   everywhere else — so the graph over-approximates and reachability
//!   findings never silently miss a call;
//! * **trait-method edges**: a call resolving to a trait method connects
//!   to the declaration's default body and to every implementor;
//! * **root discovery**: per-access roots are every [`ROOT_FN_NAMES`]
//!   body (`access_into`, the plane delivery fns, the obs recording path
//!   and the sharded executor's epoch loops) plus any function carrying
//!   a `// lint:hot-root` marker; a `// lint:cold-path(reason)` marker
//!   prunes traversal into deliberate non-steady-state code (crash
//!   recovery, reconciliation) that allocates by design.
//!
//! Reachability is a deterministic multi-source BFS that records, for
//! every reachable function, the first parent and call line that
//! discovered it — the spine of the `root → helper → site` call-chain
//! traces in the diagnostics.

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::parser::{parse, ParsedFile};
use crate::rules::FileKind;
use std::collections::{BTreeMap, BTreeSet};

/// Function names that are per-access roots by convention: the pooled
/// scratch-engine entry points of every protocol and message plane, the
/// observability recording path (`RingRecorder::record_event`, plus the
/// time-resolved additions of DESIGN.md §5j — `record_rpc` on every RPC
/// round, `sample_window` on every timeline mutation, `span_end` on
/// every span close) whose steady-state bodies must stay
/// allocation-free with a recorder and timeline attached (DESIGN.md
/// §5h/§5j), and the sharded replay executor's per-epoch inner loops
/// (`advance_client_run` on the worker side, `commit_epoch` on the
/// deterministic commit side — DESIGN.md §5i), which run once per
/// reference and are held to the same bar.
pub const ROOT_FN_NAMES: [&str; 9] = [
    "access_into",
    "deliver_into",
    "take_crashes_into",
    "record_event",
    "record_rpc",
    "sample_window",
    "span_end",
    "advance_client_run",
    "commit_epoch",
];

/// Marker comment that adds the next function to the root set.
pub const HOT_ROOT_MARKER: &str = "lint:hot-root";

/// Marker comment that prunes traversal into the next function (with a
/// mandatory reason): crash-recovery and reconciliation paths allocate
/// by design and are not steady state.
pub const COLD_PATH_MARKER: &str = "lint:cold-path";

/// One analysed source file, as the graph consumes it.
#[derive(Clone, Debug)]
pub struct FileUnit {
    /// Repo-relative path (diagnostic label).
    pub path: String,
    /// Rule-set classification of the file.
    pub kind: FileKind,
    /// The lexed token/comment streams.
    pub lexed: LexedFile,
    /// The parsed item skeleton.
    pub parsed: ParsedFile,
}

impl FileUnit {
    /// Lexes and parses `src` into an analysis unit labelled `path`.
    pub fn new(path: &str, src: &str, kind: FileKind) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        FileUnit {
            path: path.to_string(),
            kind,
            lexed,
            parsed,
        }
    }
}

/// Graph node index.
pub type NodeId = usize;

/// One call-graph node: a function body in a library file.
#[derive(Clone, Debug)]
pub struct Node {
    /// Index of the owning file in the `FileUnit` slice.
    pub file: usize,
    /// Index of the function in that file's `ParsedFile::fns`.
    pub item: usize,
    /// The function name.
    pub name: String,
    /// The enclosing impl/trait type, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body token range (open brace, close brace).
    pub body: (usize, usize),
    /// Whether this node is a per-access root (by name or marker).
    pub is_root: bool,
    /// Whether a `lint:cold-path` marker prunes traversal here.
    pub is_cold: bool,
}

impl Node {
    /// Display label: `Type::name` or plain `name`.
    pub fn label(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, in (file, item) order.
    pub nodes: Vec<Node>,
    /// Outgoing edges per node as `(callee, call line)`, sorted and
    /// deduplicated.
    pub edges: Vec<Vec<(NodeId, usize)>>,
    /// Root node ids, sorted.
    pub roots: Vec<NodeId>,
}

/// Where a reachable node was first discovered from.
#[derive(Clone, Copy, Debug)]
pub struct Provenance {
    /// The discovering caller (`None` for roots).
    pub parent: Option<NodeId>,
    /// Line of the discovering call site (the root's own line for roots).
    pub call_line: usize,
}

/// The reachable set of the graph, with discovery provenance.
#[derive(Debug, Default)]
pub struct Reachability {
    /// Reachable nodes in BFS discovery order.
    pub order: Vec<NodeId>,
    /// Provenance per reachable node.
    pub provenance: BTreeMap<NodeId, Provenance>,
}

impl Reachability {
    /// Whether `node` is reachable from any root.
    pub fn contains(&self, node: NodeId) -> bool {
        self.provenance.contains_key(&node)
    }
}

/// Keywords that look like calls (`if (…)`) but are not.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "fn", "let",
];

impl CallGraph {
    /// Builds the symbol table and call graph over `files`. Only
    /// non-test functions with bodies in [`FileKind::Library`] files
    /// become nodes: tests and binaries call *into* the engine, never
    /// the other way around, so including them would only manufacture
    /// false name-collision paths.
    pub fn build(files: &[FileUnit]) -> CallGraph {
        let mut g = CallGraph::default();
        // ---- nodes -------------------------------------------------
        for (fi, f) in files.iter().enumerate() {
            if f.kind != FileKind::Library {
                continue;
            }
            let (hot_marks, cold_marks) = marker_lines(f);
            let fn_lines: Vec<usize> = f.parsed.fns.iter().map(|x| x.line).collect();
            let hot_gov = governed(&hot_marks, &fn_lines);
            let cold_gov = governed(&cold_marks, &fn_lines);
            for (ii, item) in f.parsed.fns.iter().enumerate() {
                let Some(body) = item.body else { continue };
                if item.in_test {
                    continue;
                }
                let is_root = ROOT_FN_NAMES.contains(&item.name.as_str())
                    || hot_gov.contains(&item.line);
                let is_cold = cold_gov.contains(&item.line);
                g.nodes.push(Node {
                    file: fi,
                    item: ii,
                    name: item.name.clone(),
                    self_ty: item.self_ty.clone(),
                    line: item.line,
                    body,
                    is_root,
                    is_cold,
                });
            }
        }
        // ---- symbol tables -----------------------------------------
        let mut free_by_name: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut methods_by_ty: BTreeMap<(&str, &str), Vec<NodeId>> = BTreeMap::new();
        let mut traits_of_ty: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        let mut impls_of_trait: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (id, n) in g.nodes.iter().enumerate() {
            match &n.self_ty {
                None => free_by_name.entry(&n.name).or_default().push(id),
                Some(ty) => {
                    methods_by_name.entry(&n.name).or_default().push(id);
                    methods_by_ty.entry((ty, &n.name)).or_default().push(id);
                }
            }
        }
        let mut field_ty: BTreeMap<(&str, &str), &str> = BTreeMap::new();
        let mut field_elem: BTreeMap<(&str, &str), &str> = BTreeMap::new();
        for f in files {
            for s in &f.parsed.structs {
                for (fname, fty, felem) in &s.fields {
                    field_ty.entry((&s.name, fname)).or_insert(fty);
                    // Element types matter only where indexing can reach
                    // them: `self.field[i].m(…)` on a std sequence.
                    if let (Some(elem), "Vec" | "VecDeque") = (felem, fty.as_str()) {
                        field_elem.entry((&s.name, fname)).or_insert(elem);
                    }
                }
            }
            for item in &f.parsed.fns {
                if let (Some(ty), Some(tr), false) =
                    (&item.self_ty, &item.trait_of, item.is_trait_decl)
                {
                    traits_of_ty.entry(ty).or_default().insert(tr);
                    impls_of_trait.entry(tr).or_default().insert(ty);
                }
            }
        }
        // ---- edges -------------------------------------------------
        let tables = Tables {
            free_by_name,
            methods_by_name,
            methods_by_ty,
            traits_of_ty,
            impls_of_trait,
            field_ty,
            field_elem,
        };
        g.edges = vec![Vec::new(); g.nodes.len()];
        for id in 0..g.nodes.len() {
            let callees = extract_edges(&g, files, id, &tables);
            g.edges[id] = callees;
        }
        g.roots = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_root && !n.is_cold)
            .map(|(id, _)| id)
            .collect();
        g
    }

    /// Deterministic multi-source BFS from the roots, pruned at
    /// `lint:cold-path` nodes.
    pub fn reachable(&self) -> Reachability {
        let mut r = Reachability::default();
        let mut queue = std::collections::VecDeque::new();
        for &root in &self.roots {
            if r.provenance.contains_key(&root) {
                continue;
            }
            r.provenance.insert(
                root,
                Provenance {
                    parent: None,
                    call_line: self.nodes[root].line,
                },
            );
            r.order.push(root);
            queue.push_back(root);
        }
        while let Some(id) = queue.pop_front() {
            for &(callee, line) in &self.edges[id] {
                if self.nodes[callee].is_cold || r.provenance.contains_key(&callee) {
                    continue;
                }
                r.provenance.insert(
                    callee,
                    Provenance {
                        parent: Some(id),
                        call_line: line,
                    },
                );
                r.order.push(callee);
                queue.push_back(callee);
            }
        }
        r
    }

    /// The discovery chain `root → … → node` as `(label, file path,
    /// line)` hops: the root hop carries its declaration line in its
    /// own file, every later hop the line of the call site that reached
    /// it — which lives in the *caller's* file.
    pub fn chain(
        &self,
        files: &[FileUnit],
        reach: &Reachability,
        node: NodeId,
    ) -> Vec<(String, String, usize)> {
        let mut rev = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            let Some(p) = reach.provenance.get(&id) else { break };
            let n = &self.nodes[id];
            let fi = p.parent.map_or(n.file, |par| self.nodes[par].file);
            rev.push((n.label(), files[fi].path.clone(), p.call_line));
            cur = p.parent;
        }
        rev.reverse();
        rev
    }

    /// The node whose body (in file `fi`) contains token index `tok`,
    /// preferring the innermost (shortest) span.
    pub fn node_at(&self, fi: usize, tok: usize) -> Option<NodeId> {
        let mut best: Option<(usize, NodeId)> = None;
        for (id, n) in self.nodes.iter().enumerate() {
            if n.file == fi && n.body.0 <= tok && tok <= n.body.1 {
                let span = n.body.1 - n.body.0;
                if best.is_none_or(|(s, _)| span < s) {
                    best = Some((span, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

/// `(hot-root lines, cold-path lines)` marker anchors in a file: a marker
/// on line `l` governs a `fn` starting on `l` (trailing style) or within
/// the three lines below (banner style, allowing attributes between).
fn marker_lines(f: &FileUnit) -> (Vec<(usize, usize)>, Vec<(usize, usize)>) {
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for c in &f.lexed.comments {
        let text = c.text.trim();
        if text.starts_with(HOT_ROOT_MARKER) {
            hot.push((c.line, c.end_line));
        } else if text.starts_with(COLD_PATH_MARKER) {
            cold.push((c.line, c.end_line));
        }
    }
    (hot, cold)
}

/// Whether a marker comment anchored at one of `marks` (each a
/// `(start line, end line)` pair) *could* govern an item starting on
/// `line`: the marker sits on the item's own line (trailing style) or
/// within the three lines above it (banner style, leaving room for
/// attributes). Used for dangling-marker detection; actual binding is
/// nearest-item-wins, via [`governed`].
pub fn marked(marks: &[(usize, usize)], line: usize) -> bool {
    marks
        .iter()
        .any(|&(start, end)| line == start || (line > end && line - end <= 3))
}

/// The item lines governed by `marks`: each marker binds to the nearest
/// item starting on its own line or within the three lines below it —
/// never to later items that also happen to fall inside the window.
pub fn governed(marks: &[(usize, usize)], item_lines: &[usize]) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for &(start, end) in marks {
        let best = item_lines
            .iter()
            .copied()
            .filter(|&l| l == start || (l > end && l - end <= 3))
            .min();
        if let Some(l) = best {
            out.insert(l);
        }
    }
    out
}

struct Tables<'a> {
    free_by_name: BTreeMap<&'a str, Vec<NodeId>>,
    methods_by_name: BTreeMap<&'a str, Vec<NodeId>>,
    methods_by_ty: BTreeMap<(&'a str, &'a str), Vec<NodeId>>,
    traits_of_ty: BTreeMap<&'a str, BTreeSet<&'a str>>,
    impls_of_trait: BTreeMap<&'a str, BTreeSet<&'a str>>,
    field_ty: BTreeMap<(&'a str, &'a str), &'a str>,
    field_elem: BTreeMap<(&'a str, &'a str), &'a str>,
}

/// Std-surface receiver types whose methods cannot call back into
/// workspace code. A resolved receiver of one of these with no
/// workspace methods yields *no* edges instead of the all-names
/// fallback: `out.push(ev)` on a `Vec` is the std method, not a call to
/// whatever workspace `fn push` happens to exist.
const STD_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "Option", "Result", "BTreeMap", "BTreeSet", "HashMap",
    "HashSet", "Rc", "Arc", "Cow", "PathBuf", "Path", "str", "bool", "char", "u8", "u16", "u32",
    "u64", "u128", "usize", "i8", "i16", "i32", "i64", "f32", "f64",
];

impl<'a> Tables<'a> {
    /// Methods named `m` on type `ty`, including default bodies of traits
    /// `ty` implements. Empty when the type is unknown to the workspace.
    fn methods_on_ty(&self, ty: &str, m: &str) -> Vec<NodeId> {
        let mut out = self
            .methods_by_ty
            .get(&(ty, m))
            .cloned()
            .unwrap_or_default();
        if let Some(traits) = self.traits_of_ty.get(ty) {
            for tr in traits {
                if let Some(defaults) = self.methods_by_ty.get(&(tr, m)) {
                    out.extend_from_slice(defaults);
                }
            }
        }
        out
    }

    /// Resolves `A::m(…)`: inherent/trait-impl methods of `A`, every
    /// implementor when `A` is a trait, free functions as the
    /// module-path fallback (`intern::helper(…)`).
    fn path_call(&self, a: &str, m: &str) -> Vec<NodeId> {
        let mut out = self.methods_on_ty(a, m);
        if let Some(tys) = self.impls_of_trait.get(a) {
            for ty in tys {
                if let Some(ids) = self.methods_by_ty.get(&(*ty, m)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        if out.is_empty() {
            out = self.free_by_name.get(m).cloned().unwrap_or_default();
        }
        out
    }

    /// Resolves a method call whose receiver's type head is known:
    /// the type's own (and trait-default) methods when it has any; no
    /// edges when the type is a std container (its methods do not call
    /// back into workspace code); the all-names fallback otherwise (the
    /// head may be a generic parameter or an alias we cannot see
    /// through).
    fn typed_call(&self, ty: &str, m: &str) -> Vec<NodeId> {
        let own = self.methods_on_ty(ty, m);
        if !own.is_empty() {
            return own;
        }
        if STD_TYPES.contains(&ty) {
            return Vec::new();
        }
        self.all_named(m)
    }

    /// The conservative fallback for a method whose receiver type is
    /// unknown: every *method* of that name. Free functions are
    /// excluded — a dot-call can only ever dispatch to a method, so an
    /// unrelated free `fn push` somewhere in the workspace is not a
    /// candidate for `x.push(…)`.
    fn all_named(&self, m: &str) -> Vec<NodeId> {
        self.methods_by_name.get(m).cloned().unwrap_or_default()
    }
}

/// Parameter, `let`-binding and `for`-binding types of one function, by
/// head identifier.
fn local_types(files: &[FileUnit], node: &Node, tables: &Tables) -> BTreeMap<String, String> {
    let tokens = &files[node.file].lexed.tokens;
    let item = &files[node.file].parsed.fns[node.item];
    let mut map = BTreeMap::new();
    // Parameters: `name: Type` pairs inside the signature parens.
    let mut k = item.sig.0;
    while k < item.sig.1 {
        let t = &tokens[k];
        if t.kind == TokenKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
        {
            if let Some((ty, after)) = crate::parser::read_path(tokens, k + 2) {
                map.insert(t.text.clone(), ty);
                k = after;
                continue;
            }
        }
        k += 1;
    }
    // `let [mut] name : Type` / `let [mut] name = Type::…`.
    let (bo, bc) = node.body;
    let mut k = bo;
    while k < bc {
        if tokens[k].is_ident("let") {
            let mut j = k + 1;
            if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) {
                if tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && !tokens.get(j + 2).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some((ty, _)) = crate::parser::read_path(tokens, j + 2) {
                        map.insert(name.text.clone(), ty);
                    }
                } else if tokens.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && tokens.get(j + 3).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 4).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(ctor_ty) = tokens.get(j + 2).filter(|t| t.kind == TokenKind::Ident)
                    {
                        map.insert(name.text.clone(), ctor_ty.text.clone());
                    }
                }
            }
        }
        // `for [&][mut] pat in [&[mut]] self.field.iter()/iter_mut()
        // [.enumerate()]`: the loop binding carries the field's element
        // type (`for (i, level) in self.shared.iter_mut().enumerate()`
        // binds `level` to the element head of `shared`).
        if tokens[k].is_ident("for") {
            let mut j = k + 1;
            while tokens
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            let mut single = None;
            let mut tuple_last = None;
            if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                j += 1;
                while j < bc && !tokens[j].is_punct(')') {
                    if tokens[j].kind == TokenKind::Ident && !tokens[j].is_ident("mut") {
                        tuple_last = Some(tokens[j].text.clone());
                    }
                    j += 1;
                }
                j += 1;
            } else if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                single = Some(tokens[j].text.clone());
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_ident("in")) {
                j += 1;
                while tokens
                    .get(j)
                    .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
                {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_ident("self"))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('.'))
                    && tokens.get(j + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                    && tokens.get(j + 3).is_some_and(|t| t.is_punct('.'))
                    && tokens
                        .get(j + 4)
                        .is_some_and(|t| t.is_ident("iter") || t.is_ident("iter_mut"))
                    && tokens.get(j + 5).is_some_and(|t| t.is_punct('('))
                    && tokens.get(j + 6).is_some_and(|t| t.is_punct(')'))
                {
                    let field = tokens[j + 2].text.as_str();
                    let enumerated = tokens.get(j + 7).is_some_and(|t| t.is_punct('.'))
                        && tokens.get(j + 8).is_some_and(|t| t.is_ident("enumerate"));
                    // Plain iteration binds the single pattern;
                    // `.enumerate()` binds the tuple's last ident.
                    let bound = if enumerated { tuple_last } else { single };
                    if let (Some(name), Some(sty)) = (bound, node.self_ty.as_deref()) {
                        if let Some(elem) = tables.field_elem.get(&(sty, field)) {
                            map.insert(name, elem.to_string());
                        }
                    }
                }
            }
        }
        k += 1;
    }
    map
}

/// The index of the `[` matching the `]` at `close`, scanning backward.
fn matching_back(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = close;
    loop {
        let t = &tokens[k];
        if t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('[') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
}

/// Extracts the outgoing call edges of one node.
fn extract_edges(
    g: &CallGraph,
    files: &[FileUnit],
    id: NodeId,
    tables: &Tables,
) -> Vec<(NodeId, usize)> {
    let node = &g.nodes[id];
    let tokens = &files[node.file].lexed.tokens;
    let locals = local_types(files, node, tables);
    let (bo, bc) = node.body;
    let mut out: BTreeMap<NodeId, usize> = BTreeMap::new();
    let record = |ids: Vec<NodeId>, line: usize, out: &mut BTreeMap<NodeId, usize>| {
        for callee in ids {
            out.entry(callee).or_insert(line);
        }
    };
    for k in bo + 1..bc {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident || !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let name = t.text.as_str();
        let prev_dot = k > 0 && tokens[k - 1].is_punct('.');
        let prev_path = k >= 2 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':');
        if prev_dot {
            // Method call: try to pin the receiver's type.
            let candidates = if k >= 2
                && tokens[k - 2].is_ident("self")
                && !(k >= 3 && tokens[k - 3].is_punct('.'))
            {
                // `self.m(…)` — the current impl type's own method; in
                // a trait default body, any implementor's.
                match &node.self_ty {
                    Some(ty) if files[node.file].parsed.fns[node.item].is_trait_decl => {
                        tables.path_call(ty, name)
                    }
                    Some(ty) => tables.typed_call(ty, name),
                    None => tables.all_named(name),
                }
            } else if k >= 4
                && tokens[k - 3].is_punct('.')
                && tokens[k - 4].kind == TokenKind::Ident
                && tokens[k - 2].kind == TokenKind::Ident
                && !(k >= 5 && tokens[k - 5].is_punct('.'))
            {
                // `self.field.m(…)` / `local.field.m(…)` — through the
                // struct field table of the base's type.
                let base = tokens[k - 4].text.as_str();
                let base_ty = if base == "self" {
                    node.self_ty.clone()
                } else {
                    locals.get(base).cloned()
                };
                let field = tokens[k - 2].text.as_str();
                let fty = base_ty
                    .as_deref()
                    .and_then(|ty| tables.field_ty.get(&(ty, field)).copied());
                match fty {
                    Some(ty) => tables.typed_call(ty, name),
                    None => tables.all_named(name),
                }
            } else if k >= 2
                && tokens[k - 2].kind == TokenKind::Ident
                && !(k >= 3 && (tokens[k - 3].is_punct('.') || tokens[k - 3].is_punct(':')))
            {
                // `local.m(…)` — through the let/param type map.
                match locals.get(&tokens[k - 2].text) {
                    Some(ty) => tables.typed_call(ty, name),
                    None => tables.all_named(name),
                }
            } else if k >= 2 && tokens[k - 2].is_punct(']') {
                // `…[i].m(…)` — dispatch on the container's element type
                // when the container is a `self.field` std sequence
                // (`self.clients[c].access(b)` with `clients:
                // Vec<LruCache<…>>` resolves to `LruCache::access`).
                let elem = matching_back(tokens, k - 2).and_then(|open| {
                    if open >= 3
                        && tokens[open - 1].kind == TokenKind::Ident
                        && tokens[open - 2].is_punct('.')
                        && tokens[open - 3].is_ident("self")
                    {
                        let field = tokens[open - 1].text.as_str();
                        node.self_ty
                            .as_deref()
                            .and_then(|ty| tables.field_elem.get(&(ty, field)).copied())
                    } else {
                        None
                    }
                });
                match elem {
                    Some(ty) => tables.typed_call(ty, name),
                    None => tables.all_named(name),
                }
            } else {
                tables.all_named(name)
            };
            record(candidates, t.line, &mut out);
        } else if prev_path && k >= 3 && tokens[k - 3].kind == TokenKind::Ident {
            let a = if tokens[k - 3].is_ident("Self") {
                node.self_ty.clone().unwrap_or_default()
            } else {
                tokens[k - 3].text.clone()
            };
            record(tables.path_call(&a, name), t.line, &mut out);
        } else if !prev_path && !NON_CALL_KEYWORDS.contains(&name) {
            let frees = tables.free_by_name.get(name).cloned().unwrap_or_default();
            record(frees, t.line, &mut out);
        }
    }
    let mut edges: Vec<(NodeId, usize)> = out.into_iter().collect();
    edges.sort_by_key(|&(callee, _)| callee);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(path: &str, src: &str) -> FileUnit {
        FileUnit::new(path, src, FileKind::classify(path))
    }

    fn find(g: &CallGraph, name: &str) -> NodeId {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name} missing"))
    }

    #[test]
    fn roots_are_discovered_by_name_and_marker() {
        let files = [unit(
            "crates/x/src/a.rs",
            "impl E {\n    fn access_into(&mut self) { self.helper(); }\n    fn helper(&mut self) {}\n}\n// lint:hot-root explicit per-access entry\nfn pump() {}\nfn idle() {}\n",
        )];
        let g = CallGraph::build(&files);
        let labels: Vec<String> = g.roots.iter().map(|&r| g.nodes[r].label()).collect();
        assert_eq!(labels, ["E::access_into", "pump"]);
    }

    #[test]
    fn reachability_follows_field_typed_calls_across_files() {
        let files = [
            unit(
                "crates/x/src/root.rs",
                "struct Eng { h: Helper }\nimpl Eng { fn access_into(&mut self) { self.h.step(); } }\n",
            ),
            unit(
                "crates/y/src/helper.rs",
                "pub struct Helper;\nimpl Helper { pub fn step(&mut self) { grow(); } }\nfn grow() {}\nfn unrelated() {}\n",
            ),
        ];
        let g = CallGraph::build(&files);
        let r = g.reachable();
        assert!(r.contains(find(&g, "step")));
        assert!(r.contains(find(&g, "grow")));
        assert!(!r.contains(find(&g, "unrelated")));
        let chain = g.chain(&files, &r, find(&g, "grow"));
        let labels: Vec<&str> = chain.iter().map(|(l, _, _)| l.as_str()).collect();
        assert_eq!(labels, ["Eng::access_into", "Helper::step", "grow"]);
    }

    #[test]
    fn trait_calls_reach_all_implementors() {
        let files = [unit(
            "crates/x/src/t.rs",
            "trait Plane { fn send(&mut self); }\nimpl Plane for A { fn send(&mut self) { a_only(); } }\nimpl Plane for B { fn send(&mut self) { b_only(); } }\nstruct Eng { plane: P }\nimpl Eng { fn access_into(&mut self) { self.plane.send(); } }\nfn a_only() {}\nfn b_only() {}\n",
        )];
        let g = CallGraph::build(&files);
        let r = g.reachable();
        assert!(r.contains(find(&g, "a_only")));
        assert!(r.contains(find(&g, "b_only")));
    }

    #[test]
    fn std_receivers_resolve_to_no_workspace_edges() {
        // `out.push(…)` on a `Vec` param must not edge to an unrelated
        // workspace `fn push`.
        let files = [
            unit(
                "crates/x/src/a.rs",
                "fn take_crashes_into(out: &mut Vec<usize>) { out.push(1); }\n",
            ),
            unit("crates/y/src/b.rs", "fn push(n: usize) { helper(n); }\nfn helper(_n: usize) {}\n"),
        ];
        let g = CallGraph::build(&files);
        let r = g.reachable();
        assert!(!r.contains(find(&g, "push")));
        assert!(!r.contains(find(&g, "helper")));
    }

    #[test]
    fn indexed_receivers_dispatch_on_the_element_type() {
        let files = [unit(
            "crates/x/src/a.rs",
            "struct Eng { clients: Vec<Client> }\n\
             impl Eng { fn access_into(&mut self) { self.clients[0].touch(); } }\n\
             struct Client;\n\
             impl Client { fn touch(&mut self) {} }\n\
             struct Other;\n\
             impl Other { fn touch(&mut self) {} }\n",
        )];
        let g = CallGraph::build(&files);
        let r = g.reachable();
        let touched: Vec<String> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|&(id, n)| n.name == "touch" && r.contains(id))
            .map(|(_, n)| n.label())
            .collect();
        assert_eq!(touched, ["Client::touch"]);
    }

    #[test]
    fn cold_path_marker_prunes_traversal() {
        let files = [unit(
            "crates/x/src/c.rs",
            "impl E {\n    fn access_into(&mut self) { self.apply_crashes(); self.fast(); }\n    // lint:cold-path crash recovery allocates by design\n    fn apply_crashes(&mut self) { rebuild(); }\n    fn fast(&mut self) {}\n}\nfn rebuild() {}\n",
        )];
        let g = CallGraph::build(&files);
        let r = g.reachable();
        assert!(r.contains(find(&g, "fast")));
        assert!(!r.contains(find(&g, "apply_crashes")));
        assert!(!r.contains(find(&g, "rebuild")));
    }

    #[test]
    fn tests_and_binaries_stay_out_of_the_graph() {
        let files = [
            unit(
                "crates/x/src/a.rs",
                "impl E { fn access_into(&mut self) { self.collect_stats(); } }\n#[cfg(test)]\nmod tests { fn collect_stats() {} }\n",
            ),
            unit("crates/x/src/bin/tool.rs", "fn collect_stats() {}\n"),
            unit("crates/x/tests/t.rs", "fn collect_stats() {}\n"),
        ];
        let g = CallGraph::build(&files);
        assert!(
            !g.nodes.iter().any(|n| n.name == "collect_stats"),
            "{:?}",
            g.nodes
        );
    }

    #[test]
    fn local_let_types_pin_method_targets() {
        let files = [unit(
            "crates/x/src/l.rs",
            "struct Pool;\nimpl Pool { fn refill(&mut self) { refill_impl(); } }\nstruct Other;\nimpl Other { fn refill(&mut self) { other_impl(); } }\nfn access_into() { let mut p: Pool = make(); p.refill(); }\nfn make() -> Pool { Pool }\nfn refill_impl() {}\nfn other_impl() {}\n",
        )];
        let g = CallGraph::build(&files);
        let r = g.reachable();
        assert!(r.contains(find(&g, "refill_impl")));
        assert!(
            !r.contains(find(&g, "other_impl")),
            "typed receiver must disambiguate"
        );
    }
}
