//! The lint rules, the allowlist protocol and the per-file driver.
//!
//! Six rule classes guard the repo's headline guarantees (see DESIGN.md
//! §5c):
//!
//! * [`RULE_DETERMINISM`] — no iteration over `HashMap`/`HashSet` (their
//!   order is seeded per-process, so any result derived from it breaks
//!   the bit-identical-output guarantee), no `Instant::now`/`SystemTime`,
//!   and no ambient/environment RNG in simulator code — `thread_rng`,
//!   `rand::random`, `from_entropy`, `from_os_rng`, `OsRng` are all
//!   flagged so fault injection (`FaultyPlane`) stays replayable from its
//!   scenario seed;
//! * [`RULE_UNSAFE`] — every `unsafe` token must be justified by a
//!   `// SAFETY:` comment immediately above it;
//! * [`RULE_PANIC`] — library code must not `unwrap()`, use `expect`
//!   without a message, or `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!`; the sanctioned form for unreachable states is
//!   `expect("invariant: …")` with a string-literal message;
//! * [`RULE_DOCS`] — public items in library code need doc comments;
//! * [`RULE_HOT_PATH_MAP`] — the simulation hot-path modules listed in
//!   [`HOT_PATH_MODULES`] must not reintroduce `std::collections`
//!   `HashMap`/`HashSet` (SipHash per operation): per-block state belongs
//!   in `ulc_trace::BlockMap` dense tables or vendored `FxHashMap`
//!   (see DESIGN.md §5e);
//! * [`RULE_HOT_PATH_ALLOC`] — the per-access function bodies of the
//!   scratch-engine modules in [`HOT_ALLOC_MODULES`] must not heap
//!   allocate (`Vec::new`, `vec!`, `.clone()`, `.to_vec()`, `.collect()`
//!   and friends): variable-length side effects go through the reusable
//!   `AccessScratch`/`DeliveryBatch` pools so the steady state performs
//!   zero allocations per access (see DESIGN.md §5f). By-value
//!   compatibility wrappers justify themselves with an allow comment.
//!
//! A diagnostic is suppressed by an allowlist comment on the same line or
//! the line above the offending code:
//!
//! ```text
//! // lint:allow(determinism) accumulation is order-insensitive
//! for (_, &o) in self.owner.iter() { alloc[o as usize] += 1; }
//! ```
//!
//! `// lint:allow-file(<rule>) reason` suppresses a rule for the whole
//! file. A reason is mandatory; a malformed or reason-less allow comment
//! is itself reported under the `allow-syntax` rule.

use crate::lexer::{lex, Comment, CommentStyle, LexedFile, Token, TokenKind};
use crate::Diagnostic;
use std::collections::BTreeSet;

/// Rule name: deterministic-iteration and wall-clock/ambient-RNG hygiene.
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule name: `unsafe` must carry a `// SAFETY:` comment.
pub const RULE_UNSAFE: &str = "unsafe-comment";
/// Rule name: panic hygiene in library code.
pub const RULE_PANIC: &str = "panic";
/// Rule name: doc coverage of public items.
pub const RULE_DOCS: &str = "missing-docs";
/// Rule name: malformed allowlist comments.
pub const RULE_ALLOW_SYNTAX: &str = "allow-syntax";
/// Rule name: std hash tables in simulation hot-path modules.
pub const RULE_HOT_PATH_MAP: &str = "hot-path-map";
/// Rule name: heap allocation in per-access scratch-engine functions.
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// Every rule the pass knows, in reporting order.
pub const ALL_RULES: [&str; 7] = [
    RULE_DETERMINISM,
    RULE_UNSAFE,
    RULE_PANIC,
    RULE_DOCS,
    RULE_ALLOW_SYNTAX,
    RULE_HOT_PATH_MAP,
    RULE_HOT_PATH_ALLOC,
];

/// Per-reference hot-path modules of the simulation engine: code here
/// runs for every trace record, so per-block state must use interned
/// dense tables (`ulc_trace::BlockMap`) or the vendored `FxHashMap` —
/// never SipHash `std::collections` tables. Matched as path suffixes.
pub const HOT_PATH_MODULES: [&str; 10] = [
    "crates/core/src/stack.rs",
    "crates/core/src/multi.rs",
    "crates/hierarchy/src/uni_lru.rs",
    "crates/hierarchy/src/eviction_based.rs",
    "crates/hierarchy/src/plane.rs",
    "crates/cache/src/lru.rs",
    "crates/cache/src/lirs.rs",
    "crates/cache/src/opt.rs",
    "crates/cache/src/distance.rs",
    "crates/trace/src/intern.rs",
];

/// Whether `path` names one of the [`HOT_PATH_MODULES`].
fn is_hot_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    HOT_PATH_MODULES.iter().any(|m| p.ends_with(m))
}

/// Modules under the zero-allocation steady-state contract (DESIGN.md
/// §5f): the protocol engines and message planes whose per-access paths
/// route every variable-length side effect through a caller-owned
/// `AccessScratch`, `AccessOutcome` or `DeliveryBatch` pool. Heap
/// allocation inside their per-access functions ([`HOT_ALLOC_FNS`]) is a
/// contract violation; the throughput harness gates the same property
/// dynamically via the `alloc_stats` counting allocator. Matched as path
/// suffixes. The generic cache policy structs (`crates/cache`) are
/// exempt: their `K: Clone` keys are `Copy` on the simulation path, and
/// they are not part of the gated engines.
pub const HOT_ALLOC_MODULES: [&str; 10] = [
    "crates/core/src/stack.rs",
    "crates/core/src/scratch.rs",
    "crates/core/src/single.rs",
    "crates/core/src/multi.rs",
    "crates/hierarchy/src/uni_lru.rs",
    "crates/hierarchy/src/ind_lru.rs",
    "crates/hierarchy/src/eviction_based.rs",
    "crates/hierarchy/src/mq_server.rs",
    "crates/hierarchy/src/demotion_buffer.rs",
    "crates/hierarchy/src/plane.rs",
];

/// Per-access entry points whose bodies the [`RULE_HOT_PATH_ALLOC`] rule
/// scans. Covers the access path itself, its demotion/eviction cascade,
/// and the steady-state message pumping. Deliberately excludes the
/// crash-recovery path (`apply_crashes`, `reconcile*`, `repair_*`):
/// rebuilding state after an injected crash allocates by design and is
/// not steady state.
const HOT_ALLOC_FNS: [&str; 20] = [
    "access",
    "access_into",
    "cascade",
    "trim",
    "reset",
    "note_temp_lru",
    "pump",
    "apply_demote",
    "apply_directive",
    "apply_effect",
    "apply_replacement",
    "drain_server_inbox",
    "deliver_notices",
    "apply_reload_orders",
    "send",
    "deliver",
    "deliver_into",
    "take_crashes",
    "take_crashes_into",
    "enqueue",
];

/// Whether `path` names one of the [`HOT_ALLOC_MODULES`].
fn is_hot_alloc_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    HOT_ALLOC_MODULES.iter().any(|m| p.ends_with(m))
}

/// How a file participates in the rule set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A library source file (`crates/*/src/**`, excluding `bin/`):
    /// every rule applies.
    Library,
    /// A binary source file (`src/bin/**`, `src/main.rs`): determinism and
    /// unsafe hygiene apply; panic and doc coverage do not (a CLI may
    /// abort and needs no rustdoc surface).
    Binary,
    /// Tests, benches, examples and fixtures: only unsafe hygiene applies
    /// (tests are free to unwrap and to iterate maps they assert over).
    Test,
}

impl FileKind {
    /// Classifies a repo-relative path.
    pub fn classify(path: &str) -> FileKind {
        let p = path.replace('\\', "/");
        if p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
            || p.starts_with("tests/")
            || p.starts_with("examples/")
        {
            FileKind::Test
        } else if p.contains("/bin/") || p.ends_with("/main.rs") || p == "main.rs" {
            FileKind::Binary
        } else {
            FileKind::Library
        }
    }
}

/// Iteration-producing methods on map types (non-deterministic order).
const MAP_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Map methods whose result is order-independent, allowed in `for` heads.
const MAP_SAFE_METHODS: [&str; 8] = [
    "len",
    "is_empty",
    "get",
    "get_mut",
    "contains_key",
    "contains",
    "entry",
    "capacity",
];

const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// One parsed allowlist comment.
#[derive(Clone, Debug)]
struct Allow {
    rule: String,
    whole_file: bool,
    /// Diagnostics on these lines are suppressed (empty for whole-file).
    lines: (usize, usize),
}

/// Lints one file's source text. `path` is used only for labelling
/// diagnostics; `kind` decides which rules run.
pub fn check_source(path: &str, src: &str, kind: FileKind) -> Vec<Diagnostic> {
    let file = lex(src);
    let in_test = test_token_mask(&file.tokens);
    let mut diags = Vec::new();

    let (allows, mut allow_diags) = parse_allows(path, &file.comments);
    diags.append(&mut allow_diags);

    if matches!(kind, FileKind::Library | FileKind::Binary) {
        determinism_rule(path, &file, &in_test, &mut diags);
    }
    unsafe_rule(path, &file, &mut diags);
    if kind == FileKind::Library {
        panic_rule(path, &file, &in_test, &mut diags);
        docs_rule(path, &file, &in_test, &mut diags);
        if is_hot_path(path) {
            hot_path_map_rule(path, &file, &in_test, &mut diags);
        }
        if is_hot_alloc_path(path) {
            hot_path_alloc_rule(path, &file, &in_test, &mut diags);
        }
    }

    diags.retain(|d| {
        d.rule == RULE_ALLOW_SYNTAX
            || !allows.iter().any(|a| {
                a.rule == d.rule && (a.whole_file || (a.lines.0 <= d.line && d.line <= a.lines.1))
            })
    });
    diags.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    diags
}

/// Parses `lint:allow(...)` comments; returns the allows plus syntax
/// diagnostics for malformed ones.
fn parse_allows(path: &str, comments: &[Comment]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        if c.style != CommentStyle::Line {
            continue;
        }
        let text = c.text.trim();
        let Some(rest) = text
            .strip_prefix("lint:allow-file(")
            .map(|r| (r, true))
            .or_else(|| text.strip_prefix("lint:allow(").map(|r| (r, false)))
        else {
            if text.starts_with("lint:allow") {
                diags.push(Diagnostic::new(
                    path,
                    c.line,
                    RULE_ALLOW_SYNTAX,
                    "malformed allow comment: expected `lint:allow(<rule>) reason`",
                ));
            }
            continue;
        };
        let (rest, whole_file) = rest;
        let Some((rule, reason)) = rest.split_once(')') else {
            diags.push(Diagnostic::new(
                path,
                c.line,
                RULE_ALLOW_SYNTAX,
                "unclosed rule name in allow comment",
            ));
            continue;
        };
        let rule = rule.trim();
        if !ALL_RULES.contains(&rule) {
            diags.push(Diagnostic::new(
                path,
                c.line,
                RULE_ALLOW_SYNTAX,
                &format!("unknown rule `{rule}` in allow comment"),
            ));
            continue;
        }
        if reason.trim().is_empty() {
            diags.push(Diagnostic::new(
                path,
                c.line,
                RULE_ALLOW_SYNTAX,
                &format!("allow comment for `{rule}` needs a reason"),
            ));
            continue;
        }
        allows.push(Allow {
            rule: rule.to_string(),
            whole_file,
            // Covers its own line (trailing style) and the next (banner
            // style above the offending statement).
            lines: (c.line, c.end_line + 1),
        });
    }
    (allows, diags)
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item, so the
/// in-library test modules and unit tests are exempt from the library
/// rules, exactly like files under `tests/`.
fn test_token_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching(tokens, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            let body = &tokens[i + 2..attr_end];
            let is_test_attr = (body.len() == 1 && body[0].is_ident("test"))
                || (body.first().is_some_and(|t| t.is_ident("cfg"))
                    && body.iter().any(|t| t.is_ident("test")));
            if is_test_attr {
                // The attribute governs the next item: everything through
                // the item's closing brace (or terminating semicolon).
                let mut j = attr_end + 1;
                // Skip further attributes on the same item.
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => return mask,
                    }
                }
                let mut end = tokens.len() - 1;
                for (k, t) in tokens.iter().enumerate().skip(j) {
                    if t.is_punct(';') {
                        end = k;
                        break;
                    }
                    if t.is_punct('{') {
                        end = matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                }
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the punct closing the group opened at `open_idx`, or `None`.
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Names bound to `HashMap`/`HashSet` values in this file: struct fields,
/// `let` bindings and parameters, found from type ascriptions
/// (`name: HashMap<…>`) and constructor assignments
/// (`name = HashMap::new()`).
fn map_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `&`, `mut` and path prefixes to the binding site.
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            if prev.is_punct('&') || prev.is_ident("mut") || prev.kind == TokenKind::Lifetime {
                j -= 1;
            } else if prev.is_punct(':')
                && j >= 2
                && tokens[j - 2].is_punct(':')
            {
                // `std::collections::HashMap` — step over the whole path.
                j -= 2;
                while j > 0 && tokens[j - 1].kind == TokenKind::Ident {
                    if j >= 3 && tokens[j - 2].is_punct(':') && tokens[j - 3].is_punct(':') {
                        j -= 3;
                    } else {
                        j -= 1;
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].kind == TokenKind::Ident {
            // `name: HashMap<…>` (field, param or struct-literal init).
            names.insert(tokens[j - 2].text.clone());
        } else if j >= 2 && tokens[j - 1].is_punct('=') && tokens[j - 2].kind == TokenKind::Ident {
            // `name = HashMap::new()` / `= HashMap::from(…)`.
            names.insert(tokens[j - 2].text.clone());
        }
    }
    names
}

fn determinism_rule(path: &str, file: &LexedFile, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let maps = map_typed_names(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        // Wall clocks and ambient RNG.
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            let is_now_call = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"));
            if is_now_call || t.is_ident("SystemTime") {
                diags.push(Diagnostic::new(
                    path,
                    t.line,
                    RULE_DETERMINISM,
                    &format!("`{}` reads the wall clock; simulator outputs must not depend on it", t.text),
                ));
            }
            continue;
        }
        if t.is_ident("thread_rng") {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_DETERMINISM,
                "`thread_rng` is unseeded; use `ulc_trace::seeded_rng` instead",
            ));
            continue;
        }
        // Non-vendored entropy sources: anything that seeds from the
        // environment makes a `FaultScenario` (and any simulator output
        // derived from it) unreproducible.
        if t.is_ident("from_entropy") || t.is_ident("from_os_rng") || t.is_ident("OsRng") {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_DETERMINISM,
                &format!(
                    "`{}` seeds from the environment; fault planes and simulators \
                     must seed explicitly (`StdRng::seed_from_u64`)",
                    t.text
                ),
            ));
            continue;
        }
        // `rand::random()` — ambient thread-local RNG by another name.
        if t.is_ident("random")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("rand")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
        {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_DETERMINISM,
                "`rand::random` draws from the ambient thread RNG; seed explicitly instead",
            ));
            continue;
        }
        // `map.iter()`-family calls on known map-typed names.
        if t.kind == TokenKind::Ident
            && maps.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
        {
            if let Some(m) = tokens.get(i + 2) {
                if MAP_ITER_METHODS.contains(&m.text.as_str())
                    && tokens.get(i + 3).is_some_and(|p| p.is_punct('('))
                {
                    diags.push(Diagnostic::new(
                        path,
                        m.line,
                        RULE_DETERMINISM,
                        &format!(
                            "`{}.{}()` iterates a HashMap/HashSet in non-deterministic order; \
                             use a BTreeMap/sorted keys or justify with an allow comment",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
        // `for … in map { … }` / `for … in &map { … }` over a bare map.
        if t.is_ident("for") {
            let Some(in_idx) = tokens[i..]
                .iter()
                .position(|x| x.is_ident("in"))
                .map(|p| p + i)
            else {
                continue;
            };
            let mut k = in_idx + 1;
            let mut depth = 0usize;
            while let Some(x) = tokens.get(k) {
                if depth == 0 && x.is_punct('{') {
                    break;
                }
                match () {
                    _ if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') => depth += 1,
                    _ if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') => {
                        depth = depth.saturating_sub(1)
                    }
                    _ => {}
                }
                if depth == 0 && x.kind == TokenKind::Ident && maps.contains(&x.text) {
                    let followed_by_dot = tokens.get(k + 1).is_some_and(|n| n.is_punct('.'));
                    let safe_call = followed_by_dot
                        && tokens
                            .get(k + 2)
                            .is_some_and(|m| MAP_SAFE_METHODS.contains(&m.text.as_str()));
                    if !followed_by_dot {
                        diags.push(Diagnostic::new(
                            path,
                            x.line,
                            RULE_DETERMINISM,
                            &format!(
                                "`for … in {}` iterates a HashMap/HashSet in \
                                 non-deterministic order",
                                x.text
                            ),
                        ));
                    } else if !safe_call {
                        // `map.iter()` inside a for-head is caught by the
                        // method check above; anything else unknown is
                        // left alone to avoid false positives.
                    }
                }
                k += 1;
            }
        }
    }
}

/// Flags `HashMap`/`HashSet` tokens in hot-path modules. `FxHashMap` and
/// `BTreeMap` idents are distinct tokens and pass untouched; test modules
/// are exempt like everywhere else.
fn hot_path_map_rule(path: &str, file: &LexedFile, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    for (i, t) in file.tokens.iter().enumerate() {
        if in_test[i] || !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        diags.push(Diagnostic::new(
            path,
            t.line,
            RULE_HOT_PATH_MAP,
            &format!(
                "`{}` in hot-path module; use `ulc_trace::BlockMap` or the vendored \
                 `FxHashMap`, or justify with `lint:allow(hot-path-map)`",
                t.text
            ),
        ));
    }
}

/// Allocating methods (called as `.name(...)`) forbidden inside hot-path
/// per-access bodies.
const ALLOC_METHODS: [&str; 5] = ["clone", "to_vec", "to_owned", "to_string", "collect"];

/// Owner types whose `new`/`with_capacity`/`from` constructors allocate.
const ALLOC_TYPES: [&str; 4] = ["Vec", "VecDeque", "Box", "String"];

/// Flags heap allocation inside the per-access functions
/// ([`HOT_ALLOC_FNS`]) of the scratch-engine modules
/// ([`HOT_ALLOC_MODULES`]): allocating method calls, `vec!`/`format!`
/// invocations and allocating constructors. The by-value compatibility
/// wrappers (`access`, `deliver`, `take_crashes`) keep their allocations
/// behind `lint:allow(hot-path-alloc)` comments naming the `_into`
/// replacement, so the rule also documents where the allocation-free
/// path lives.
fn hot_path_alloc_rule(path: &str, file: &LexedFile, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let mut i = 0;
    while i < tokens.len() {
        if in_test[i] || !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1) else { break };
        if !HOT_ALLOC_FNS.contains(&name.text.as_str()) {
            i += 1;
            continue;
        }
        // Find the body's opening brace; a `;` first means a trait
        // method without a default body — nothing to scan.
        let mut j = i + 2;
        let open = loop {
            match tokens.get(j) {
                None => break None,
                Some(x) if x.is_punct(';') => break None,
                Some(x) if x.is_punct('{') => break Some(j),
                Some(_) => j += 1,
            }
        };
        let Some(open_idx) = open else {
            i += 2;
            continue;
        };
        let close_idx = matching(tokens, open_idx, '{', '}').unwrap_or(tokens.len() - 1);
        for k in open_idx + 1..close_idx {
            let x = &tokens[k];
            if x.kind != TokenKind::Ident {
                continue;
            }
            let next_is = |p: char| tokens.get(k + 1).is_some_and(|t| t.is_punct(p));
            if tokens[k - 1].is_punct('.') && next_is('(') && ALLOC_METHODS.contains(&x.text.as_str())
            {
                diags.push(Diagnostic::new(
                    path,
                    x.line,
                    RULE_HOT_PATH_ALLOC,
                    &format!(
                        "`.{}()` allocates inside per-access fn `{}`; write into the \
                         reusable scratch/outcome pool instead (DESIGN.md §5f)",
                        x.text, name.text
                    ),
                ));
            } else if (x.is_ident("vec") || x.is_ident("format")) && next_is('!') {
                diags.push(Diagnostic::new(
                    path,
                    x.line,
                    RULE_HOT_PATH_ALLOC,
                    &format!(
                        "`{}!` allocates inside per-access fn `{}`; reuse a pooled \
                         buffer instead (DESIGN.md §5f)",
                        x.text, name.text
                    ),
                ));
            } else if ALLOC_TYPES.contains(&x.text.as_str())
                && next_is(':')
                && tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && tokens.get(k + 3).is_some_and(|m| {
                    m.is_ident("new") || m.is_ident("with_capacity") || m.is_ident("from")
                })
            {
                diags.push(Diagnostic::new(
                    path,
                    x.line,
                    RULE_HOT_PATH_ALLOC,
                    &format!(
                        "`{}::{}` allocates inside per-access fn `{}`; hoist the buffer \
                         into the engine and reuse it (DESIGN.md §5f)",
                        x.text,
                        tokens[k + 3].text,
                        name.text
                    ),
                ));
            }
        }
        i = close_idx + 1;
    }
}

fn unsafe_rule(path: &str, file: &LexedFile, diags: &mut Vec<Diagnostic>) {
    for t in &file.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let justified = file.comments.iter().any(|c| {
            c.style == CommentStyle::Line
                && c.text.trim().starts_with("SAFETY:")
                && c.end_line <= t.line
                && t.line <= c.end_line + 3
        });
        if !justified {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_UNSAFE,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines",
            ));
        }
    }
}

fn panic_rule(path: &str, file: &LexedFile, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let preceded_by_dot = i > 0 && tokens[i - 1].is_punct('.');
        if preceded_by_dot && t.text == "unwrap" && tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_PANIC,
                "`unwrap()` in library code; use `expect(\"invariant: …\")` or return an error",
            ));
            continue;
        }
        if preceded_by_dot && t.text == "expect" && tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            let arg = tokens.get(i + 2);
            let documented = arg.is_some_and(|a| a.kind == TokenKind::Str && a.text.len() > 2);
            if !documented {
                diags.push(Diagnostic::new(
                    path,
                    t.line,
                    RULE_PANIC,
                    "`expect` needs a string-literal message documenting the invariant",
                ));
            }
            continue;
        }
        if ["panic", "unreachable", "todo", "unimplemented"].contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|p| p.is_punct('!'))
            && !preceded_by_dot
        {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_PANIC,
                &format!("`{}!` in library code; prefer an assert with a message or an error return", t.text),
            ));
        }
    }
}

fn docs_rule(path: &str, file: &LexedFile, in_test: &[bool], diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || !t.is_ident("pub") {
            continue;
        }
        // Resolve the item keyword after `pub`, skipping `(crate)` &c.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|x| x.is_punct('(')) {
            // `pub(crate)` / `pub(super)` items are not public API.
            continue;
        }
        while tokens
            .get(j)
            .is_some_and(|x| x.is_ident("unsafe") || x.is_ident("async") || x.is_ident("extern"))
        {
            j += 1;
        }
        let Some(kw) = tokens.get(j) else { continue };
        let is_item = ITEM_KEYWORDS.contains(&kw.text.as_str());
        let is_field = kw.kind == TokenKind::Ident
            && !is_item
            && kw.text != "use"
            && tokens.get(j + 1).is_some_and(|x| x.is_punct(':'))
            && !tokens.get(j + 2).is_some_and(|x| x.is_punct(':'));
        if !is_item && !is_field {
            continue;
        }
        let what = if is_field {
            format!("field `{}`", kw.text)
        } else {
            let name = tokens
                .get(j + 1)
                .map(|x| x.text.clone())
                .unwrap_or_default();
            format!("{} `{name}`", kw.text)
        };
        // The doc comment must end directly above the item or its first
        // attribute.
        let mut first_line = t.line;
        let mut k = i;
        while k >= 2 && tokens[k - 1].is_punct(']') {
            // Walk back over an attribute `#[ … ]`.
            let mut depth = 0usize;
            let mut m = k - 1;
            loop {
                if tokens[m].is_punct(']') {
                    depth += 1;
                } else if tokens[m].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if m == 0 {
                    break;
                }
                m -= 1;
            }
            if m >= 1 && tokens[m - 1].is_punct('#') {
                first_line = tokens[m - 1].line;
                k = m - 1;
            } else {
                break;
            }
        }
        let documented = file.comments.iter().any(|c| {
            (c.style == CommentStyle::DocOuter && c.end_line + 1 >= first_line && c.line < first_line)
                || (c.style == CommentStyle::DocInner && kw.is_ident("mod"))
        });
        if !documented {
            diags.push(Diagnostic::new(
                path,
                t.line,
                RULE_DOCS,
                &format!("public {what} has no doc comment"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        check_source("x.rs", src, FileKind::Library)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(FileKind::classify("crates/cache/src/lru.rs"), FileKind::Library);
        assert_eq!(FileKind::classify("crates/cache/tests/p.rs"), FileKind::Test);
        assert_eq!(FileKind::classify("crates/bench/benches/m.rs"), FileKind::Test);
        assert_eq!(FileKind::classify("crates/bench/src/bin/fig1.rs"), FileKind::Binary);
        assert_eq!(FileKind::classify("tests/paper_goals.rs"), FileKind::Test);
        assert_eq!(FileKind::classify("src/lib.rs"), FileKind::Library);
    }

    #[test]
    fn hashmap_iteration_is_flagged() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S { fn f(&self) { for v in self.m.values() { let _ = v; } } }\n";
        let d = lint(src);
        assert_eq!(rules_of(&d), [RULE_DETERMINISM]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn bare_for_over_map_is_flagged() {
        let src = "fn f() { let m = HashMap::new(); for (k, v) in &m { let _ = (k, v); } }\n";
        let d = lint(src);
        assert_eq!(rules_of(&d), [RULE_DETERMINISM]);
    }

    #[test]
    fn deterministic_map_use_is_clean() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m.get(&1); let _ = m.len(); }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn vec_iteration_is_clean() {
        let src = "fn f(v: &Vec<u32>) -> u32 { v.iter().sum() }\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_DETERMINISM).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn clock_and_thread_rng_are_flagged() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); let _ = (t, r); }\n";
        assert_eq!(rules_of(&lint(src)), [RULE_DETERMINISM, RULE_DETERMINISM]);
    }

    #[test]
    fn environment_rng_seeding_is_flagged() {
        // The FaultyPlane determinism rule: any entropy source outside
        // the seeded scenario makes fault injection unreplayable.
        let src = "fn f() { let a = StdRng::from_entropy(); let b = StdRng::from_os_rng(); let c = OsRng; let _ = (a, b, c); }\n";
        assert_eq!(
            rules_of(&lint(src)),
            [RULE_DETERMINISM, RULE_DETERMINISM, RULE_DETERMINISM]
        );
    }

    #[test]
    fn ambient_rand_random_is_flagged() {
        let src = "fn f() -> u64 { rand::random() }\n";
        assert_eq!(rules_of(&lint(src)), [RULE_DETERMINISM]);
    }

    #[test]
    fn seeded_rng_is_clean() {
        let src = "fn f() { let r = StdRng::seed_from_u64(7); let _ = r; }\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_DETERMINISM).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src = "fn f() { let m = HashMap::new();\n// lint:allow(determinism) order-insensitive fold\nfor v in &m { let _ = v; } }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "// lint:allow(determinism)\nfn f() {}\n";
        assert_eq!(rules_of(&lint(src)), [RULE_ALLOW_SYNTAX]);
    }

    #[test]
    fn allow_unknown_rule_is_reported() {
        let src = "// lint:allow(made-up) because\nfn f() {}\n";
        assert_eq!(rules_of(&lint(src)), [RULE_ALLOW_SYNTAX]);
    }

    #[test]
    fn unsafe_without_safety_comment() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let d = lint(src);
        assert!(rules_of(&d).contains(&RULE_UNSAFE), "{d:?}");
    }

    #[test]
    fn unsafe_with_safety_comment_is_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_UNSAFE).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_and_bare_expect_are_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>, m: String) -> u8 { x.expect(&m) }\n";
        assert_eq!(rules_of(&lint(src)), [RULE_PANIC, RULE_PANIC]);
    }

    #[test]
    fn expect_with_message_is_clean() {
        let src = "fn f(x: Option<u8>) -> u8 { x.expect(\"invariant: present\") }\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_PANIC).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src = "fn f() { panic!(\"boom\") }\nfn g() { unreachable!() }\n";
        assert_eq!(rules_of(&lint(src)), [RULE_PANIC, RULE_PANIC]);
    }

    #[test]
    fn test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) -> u8 { x.unwrap() }\n    fn g() { let m = HashMap::new(); for v in &m { let _ = v; } }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn test_fn_attr_is_exempt() {
        let src = "#[test]\nfn f() { let x: Option<u8> = None; x.unwrap(); }\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_PANIC).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn undocumented_pub_items_are_flagged() {
        let src = "pub fn f() {}\npub struct S { pub x: u32 }\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_DOCS).collect();
        assert_eq!(d.len(), 3, "{d:?}"); // fn f, struct S, field x
    }

    #[test]
    fn documented_and_crate_private_items_are_clean() {
        let src = "/// Does f.\npub fn f() {}\npub(crate) fn g() {}\nfn h() {}\npub use std::fmt;\n/// S.\n#[derive(Debug)]\npub struct S {\n    /// X.\n    pub x: u32,\n}\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_DOCS).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn binary_kind_skips_panic_and_docs() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_source("src/bin/t.rs", src, FileKind::Binary).is_empty());
    }

    #[test]
    fn test_kind_still_checks_unsafe() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = check_source("tests/t.rs", src, FileKind::Test);
        assert_eq!(rules_of(&d), [RULE_UNSAFE]);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// lint:allow-file(panic) exploratory tool\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let d: Vec<_> = lint(src).into_iter().filter(|d| d.rule == RULE_PANIC).collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_path_std_map_is_flagged() {
        let src = "fn f() { let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new(); let _ = m.len(); }\n";
        let d: Vec<_> = check_source("crates/core/src/stack.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_MAP)
            .collect();
        assert_eq!(d.len(), 2, "{d:?}"); // the ascription and the constructor
    }

    #[test]
    fn hot_path_rule_skips_other_modules() {
        let src = "fn f() { let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new(); let _ = m.len(); }\n";
        let d: Vec<_> = check_source("crates/bench/src/fig6.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_MAP)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_path_fx_and_btree_maps_are_clean() {
        let src = "fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); let b: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new(); let _ = (m.len(), b.len()); }\n";
        let d: Vec<_> = check_source("crates/hierarchy/src/plane.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_MAP)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_path_allow_comment_suppresses() {
        let src = "// lint:allow(hot-path-map) retained reference representation\nfn f() { let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new(); let _ = m.len(); }\n";
        let d: Vec<_> = check_source("crates/trace/src/intern.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_MAP || d.rule == RULE_ALLOW_SYNTAX)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_path_test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let m = std::collections::HashMap::new(); let _ = m.len(); }\n}\n";
        let d: Vec<_> = check_source("crates/cache/src/lirs.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_MAP)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_alloc_clone_in_access_is_flagged() {
        let src = "fn access_into(&mut self, b: u32) { let d = self.demotions.clone(); let _ = d; }\n";
        let d: Vec<_> = check_source("crates/core/src/stack.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
            .collect();
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn hot_alloc_vec_macro_and_constructor_are_flagged() {
        let src = "fn pump(&mut self) { let a = vec![0u32; 4]; let b: Vec<u32> = Vec::new(); let _ = (a, b); }\n";
        let d: Vec<_> = check_source("crates/hierarchy/src/uni_lru.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
            .collect();
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn hot_alloc_skips_non_access_fns_and_other_modules() {
        // Constructors may allocate freely; so may per-access code in
        // modules outside the §5f contract.
        let ctor = "fn new() -> Self { Self { v: Vec::new(), w: vec![0; 8] } }\n";
        let d: Vec<_> = check_source("crates/core/src/multi.rs", ctor, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
            .collect();
        assert!(d.is_empty(), "{d:?}");
        let access = "fn access(&mut self) { let v = self.buf.to_vec(); let _ = v; }\n";
        let d: Vec<_> = check_source("crates/bench/src/fig6.rs", access, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_alloc_allow_comment_suppresses() {
        let src = "fn access(&mut self) -> Vec<u32> {\n    // lint:allow(hot-path-alloc) by-value compatibility shim; the allocation-free path is access_into\n    self.buf.to_vec()\n}\n";
        let d: Vec<_> = check_source("crates/hierarchy/src/plane.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC || d.rule == RULE_ALLOW_SYNTAX)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_alloc_trait_signature_without_body_is_clean() {
        let src = "pub trait P {\n    /// Doc.\n    fn access_into(&mut self, out: &mut Vec<u32>);\n}\n";
        let d: Vec<_> = check_source("crates/hierarchy/src/plane.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_alloc_test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn access(&mut self) { let v = vec![1, 2]; let _ = v.clone(); }\n}\n";
        let d: Vec<_> = check_source("crates/core/src/single.rs", src, FileKind::Library)
            .into_iter()
            .filter(|d| d.rule == RULE_HOT_PATH_ALLOC)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn string_contents_do_not_trip_rules() {
        let src = "fn f() -> &'static str { \"call .unwrap() and panic! on HashMap\" }\n";
        let d: Vec<_> = lint(src)
            .into_iter()
            .filter(|d| d.rule == RULE_PANIC || d.rule == RULE_DETERMINISM)
            .collect();
        assert!(d.is_empty(), "{d:?}");
    }
}
